"""Bench A2 — threshold-percentile ablation (the paper picks 99% in §4.1).

Expected shape: a monotone precision/recall trade-off in the percentile,
with the paper's 99th percentile sitting at a knee — single-digit false
alarms while keeping recall high; 99.9% collapses recall.
"""

from conftest import save_artifact

from repro.experiments.ablations import AblationConfig, run_threshold_ablation


def test_threshold_percentile_ablation(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_threshold_ablation(
            AblationConfig(), percentiles=(90.0, 95.0, 97.5, 99.0, 99.9)
        ),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_artifact(artifact_dir, "ablation_threshold.txt", text)
    print("\n" + text)
    rows = {row.label: row for row in result.rows}
    benchmark.extra_info["rows"] = {
        label: {"fp": round(row.benign_fp_rate, 4), "recall": round(row.attack_recall, 4)}
        for label, row in rows.items()
    }
    fp = [row.benign_fp_rate for row in result.rows]
    recall = [row.attack_recall for row in result.rows]
    assert fp == sorted(fp, reverse=True), "false alarms fall as the threshold rises"
    assert recall == sorted(recall, reverse=True), "recall falls as the threshold rises"
    assert rows["p99"].benign_fp_rate < 0.10
    assert rows["p99"].attack_recall > 0.8
