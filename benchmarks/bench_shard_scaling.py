"""Bench S1 — shard/worker scaling of the ingest+scoring substrate.

Sweeps SDL shard counts (inference workers track the shard count) and
records, per point, the maximum telemetry rate the substrate sustains with
zero drops and every record's capture -> verdict latency inside the 1 s
near-RT budget. A fault-injection pass kills one shard mid-run
(replication 2) and asserts zero acknowledged writes are lost.

Expected shape: sustained throughput grows monotonically with the shard
count and reaches >= 3x at 8 shards; the fault run completes every verdict.

Runs two ways:

- under pytest-benchmark (full sweep, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_shard_scaling.py
  --smoke`` (no pytest-benchmark needed), exit 1 on any violated check.
"""

import json
import sys


def _run(config):
    from repro.scale.bench import run_scale_bench

    return run_scale_bench(config)


def test_shard_scaling(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.scale.bench import ScaleBenchConfig

    config = ScaleBenchConfig()
    result = benchmark.pedantic(lambda: _run(config), rounds=1, iterations=1)
    text = result.render()
    save_artifact(artifact_dir, "shard_scaling.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "shard_scaling.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )

    benchmark.extra_info["speedup"] = round(result.speedup(), 2)
    benchmark.extra_info["points"] = {
        str(p.shards): round(p.sustained.throughput, 1) for p in result.points
    }

    violations = result.check(min_speedup=3.0)
    assert not violations, "; ".join(violations)


def main(argv=None) -> int:
    import argparse

    from repro.scale.bench import ScaleBenchConfig, smoke_config

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sweep")
    parser.add_argument("--json", help="write the machine-readable result here")
    args = parser.parse_args(argv)

    config = smoke_config() if args.smoke else ScaleBenchConfig()
    result = _run(config)
    print(result.render())
    print(f"\nspeedup: {result.speedup():.2f}x (wall {result.workload_wall_s:.1f}s)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
    violations = result.check()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
