"""Bench P1 — end-to-end control-loop timing on the live testbed.

Runs the full Figure 3 deployment (simulated network + RIC agent + near-RT
RIC + MobiWatch + LLM analyzer) with live benign traffic and three attack
instances, and reports the measured loop segments in *simulated* time:

- detection (newest telemetry entry -> MobiWatch alarm) must fit the
  near-RT RIC budget of 10 ms - 1 s (§2.1);
- explanation (alarm -> parsed LLM verdict) is seconds-scale by design —
  it is the non-real-time expert stage the nRT pre-filter shields.

Alongside the headline latency text, the run's ``repro.obs`` artifacts are
saved: the per-stage loop breakdown (capture -> indication -> SDL ->
detection -> verdict -> action) and the full metrics snapshot.
"""

import json

from conftest import save_artifact

from repro.experiments.testbed import LiveTestbedConfig, run_live_testbed


def test_pipeline_latency(benchmark, artifact_dir):
    run = benchmark.pedantic(
        lambda: run_live_testbed(LiveTestbedConfig()), rounds=1, iterations=1
    )
    latency = run.latency
    summary = run.summary
    lines = [
        "P1 — end-to-end pipeline timing (simulated seconds)",
        f"summary: {summary}",
        f"detection:   {latency['detection_s']}",
        f"explanation: {latency['explanation_s']}",
        f"response:    {latency['response_s']}",
        f"attack instances detected: {run.detected_attack_instances()}/{len(run.attacks)}",
    ]
    text = "\n".join(lines)
    save_artifact(artifact_dir, "pipeline_latency.txt", text)
    print("\n" + text)
    print("\n" + run.render_stage_breakdown())
    save_artifact(
        artifact_dir,
        "pipeline_metrics.json",
        json.dumps(
            {
                "stage_breakdown": run.stage_breakdown,
                "latency": latency,
                "summary": summary,
                "metrics": run.metrics_snapshot,
            },
            indent=2,
            sort_keys=True,
        ),
    )

    benchmark.extra_info["summary"] = summary
    benchmark.extra_info["detection_s"] = latency["detection_s"]
    benchmark.extra_info["explanation_s"] = latency["explanation_s"]

    assert summary["anomalies"] > 0
    assert summary["confirmed"] > 0
    assert run.detected_attack_instances() == len(run.attacks)
    # Near-RT budget for the detection loop.
    assert latency["detection_s"]["max"] < 1.0
    assert latency["detection_s"]["mean"] > 0.0
    # The traced breakdown must agree: the detection stage fits the budget.
    assert run.stage_breakdown["detection"]["max"] < 1.0
    # The LLM stage is intentionally outside the near-RT loop.
    assert latency["explanation_s"]["mean"] > 0.5
