"""Bench A3 — feature-set and encoding ablation (Table 1 categories).

Expected: the full sessionized, weighted encoding dominates; dropping the
identifier or state features loses entire attack classes; global
(non-sessionized) windows collapse recall — the design choices DESIGN.md
records are load-bearing.
"""

from conftest import save_artifact

from repro.experiments.ablations import AblationConfig, run_feature_ablation


def test_feature_set_ablation(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_feature_ablation(AblationConfig()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "ablation_features.txt", text)
    print("\n" + text)
    rows = {row.label: row for row in result.rows}
    benchmark.extra_info["rows"] = {
        label: {"fp": round(row.benign_fp_rate, 4), "recall": round(row.attack_recall, 4)}
        for label, row in rows.items()
    }
    full = rows["full"]
    assert full.attack_recall > 0.8
    assert rows["no-state"].attack_recall < full.attack_recall + 1e-9
    assert rows["global-windows"].attack_recall < full.attack_recall
