"""Bench V1 — the verdict-plane fast path (repro.llmfast).

Measures the three analyst-side fast lanes against their seed
equivalents on a duplicate-heavy storm workload:

- analyzer storm throughput: the full expert-referencing round every
  time vs the content-addressed verdict cache + vectorized retrieval +
  compiled prompts (floor: >= 5x);
- RAG retrieval alone: ``CellularKnowledgeBase.retrieve`` vs the
  precomputed-term-index ``VectorizedRetriever`` (floor: >= 3x);
- prompt assembly alone: ``PromptTemplate.render`` vs the
  ``CompiledPromptBuilder`` single-join path (floor: >= 2x).

Every run re-verifies the equality contracts (identical verdict
decisions, identical retrieval rankings, byte-identical prompts) and
gates against the committed perf baseline ``BENCH_llmfast.json`` at the
repo root.

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_llmfast.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_llmfast.json"


def _run(quick):
    from repro.llmfast.bench import run_bench

    return run_bench(quick=quick)


def test_llmfast(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.llmfast.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "llmfast.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "llmfast.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.llmfast.bench import load_baseline, run_bench, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if "--json" in argv:
        out = argv[argv.index("--json") + 1]
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"snapshot -> {out}")
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
