"""Bench E4 — regenerate Figure 5 (prompt template + example response).

Expected: ChatGPT-4o's response to the BTS DoS trace identifies a
signaling storm from the repeated RRC message pattern, as in the paper's
example, with the classification/explanation/attribution/remediation
structure intact.
"""

from conftest import save_artifact

from repro.experiments.figure5 import Figure5Config, run_figure5


def test_figure5_prompt_and_response(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_figure5(Figure5Config()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "figure5.txt", text)
    print("\n" + text)

    benchmark.extra_info["identifies_signaling_storm"] = result.identifies_signaling_storm
    benchmark.extra_info["top_attack"] = (
        result.response.top_attacks[0][0] if result.response.top_attacks else ""
    )

    assert "AI security analyst" in result.prompt
    assert result.response.is_anomalous
    assert result.identifies_signaling_storm
    assert result.response.top_attacks
    assert result.response.remediations
