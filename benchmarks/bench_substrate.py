"""Substrate micro-benchmarks: throughput of the hot paths.

These measure real (wall-clock) performance of the pieces a deployment
would size against: TLV codec, telemetry featurization, detector inference,
and the simulator's event throughput.
"""

import numpy as np

from repro import wire
from repro.ml import AutoencoderDetector
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector
from repro.telemetry.features import FeatureSpec
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries


def _sample_value():
    return {
        "msg": "RegistrationRequest",
        "ie": {"suci": "suci-001-01-abcdef0123456789", "caps": [2, 1, 0, 18, 17, 16]},
        "ts": 12.345678,
    }


def test_wire_encode_throughput(benchmark):
    value = _sample_value()
    benchmark(lambda: wire.encode(value))


def test_wire_decode_throughput(benchmark):
    data = wire.encode(_sample_value())
    benchmark(lambda: wire.decode(data))


def _benign_series(n_sessions=30):
    net = FiveGNetwork(NetworkConfig(seed=9))
    for i in range(4):
        ue = net.add_ue("pixel5")
        for k in range(n_sessions // 4):
            net.sim.schedule(0.2 + i * 0.8 + k * 9.0, ue.start_session)
    net.run(until=n_sessions * 2.0 + 30.0)
    return MobiFlowCollector().parse_stream(net.pcap)


def test_featurization_throughput(benchmark):
    series = _benign_series()
    spec = FeatureSpec()
    matrix = benchmark(lambda: spec.encode_series(series))
    assert matrix.shape[0] == len(series)


def test_streaming_encoder_per_record(benchmark):
    spec = FeatureSpec()
    record = MobiFlowRecord(
        timestamp=1.0, msg="RRCSetupRequest", protocol="RRC", direction="UL",
        session_id=1, rnti=0x10, establishment_cause="mo-Data",
    )
    encoder = spec.streaming_encoder()
    benchmark(lambda: encoder.push(record))


def test_autoencoder_inference_throughput(benchmark):
    spec = FeatureSpec()
    rng = np.random.default_rng(0)
    windows = rng.random((256, 6 * spec.dim))
    detector = AutoencoderDetector(window=6, feature_dim=spec.dim, seed=0)
    detector.fit(windows, epochs=2)
    scores = benchmark(lambda: detector.scores(windows))
    assert scores.shape == (256,)


def test_simulator_event_throughput(benchmark):
    def run_sessions():
        net = FiveGNetwork(NetworkConfig(seed=11))
        ue = net.add_ue("oai_ue")
        ue.start_session()
        net.run(until=30.0)
        return net.sim.events_processed

    events = benchmark(run_sessions)
    assert events > 20
