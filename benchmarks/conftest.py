"""Shared helpers for the benchmark harness.

Every artifact bench regenerates one of the paper's tables/figures at full
scale, saves the rendered text under ``benchmarks/out/``, and records the
headline numbers in the pytest-benchmark ``extra_info`` so they appear in
the benchmark report.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> pathlib.Path:
    path = directory / name
    path.write_text(text, encoding="utf-8")
    return path
