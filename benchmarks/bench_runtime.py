"""Bench R1 — process-parallel runtime (repro.runtime).

Ramps the soak workload through the single-process backend (the seed's
shape: one interpreter, inline ``[1, window*dim]`` scoring) and the
multi-process backend (N supervised scoring workers + SDL shards + the
analyzer over Unix sockets), then runs the mid-run ``kill -9`` fault
trial on the multi-process topology.

Floors are CPU-gated (see ``repro.runtime.bench``):

- >= 4 usable CPUs: multi-process must sustain >= 1.5x the
  single-process rate under the 1 s near-RT budget;
- < 4 usable CPUs: the documented serial-fallback floor (0.35x) applies
  instead — real parallelism is unavailable, so the gate becomes "the
  process topology's transport tax stays bounded".

The fault trial's checks are unconditional either way: zero acked-write
loss, the killed worker restarts, and the trial completes inside the
SLO. Gates against the committed ``BENCH_runtime.json`` at the repo
root; baseline speedup comparison only applies within the same floor
regime (``floor_applied`` in the baseline).

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_runtime.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_runtime.json"


def _run(quick):
    from repro.runtime.bench import run_runtime_bench

    return run_runtime_bench(quick=quick)


def test_runtime(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.runtime.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "runtime.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "runtime.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.runtime.bench import load_baseline, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if "--json" in argv:
        out = argv[argv.index("--json") + 1]
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"snapshot -> {out}")
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
