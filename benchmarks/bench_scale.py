"""Bench P2 — pipeline scalability over traffic load (§1 challenge).

Expected shape: detection latency stays inside the near-RT budget and the
benign alarm rate stays in single digits as traffic grows 4x; wall-clock
cost grows roughly linearly with load.

Each load point also carries a compact ``repro.obs`` metrics summary
(events, RMR messages, SDL writes, ingest latency), saved as JSON.
"""

import json

from conftest import save_artifact

from repro.experiments.scale import ScaleConfig, run_scale_experiment


def test_pipeline_scalability(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_scale_experiment(ScaleConfig()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "scale.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "scale_metrics.json",
        json.dumps(
            {f"x{p.multiplier}": p.metrics for p in result.points},
            indent=2,
            sort_keys=True,
        ),
    )

    benchmark.extra_info["points"] = {
        f"x{p.multiplier}": {
            "records": p.records,
            "alarm_rate": round(p.alarm_rate, 4),
            "det_max_s": p.detection_max_s,
        }
        for p in result.points
    }

    for point in result.points:
        assert point.records > 0
        assert point.alarm_rate < 0.10, f"x{point.multiplier} alarm rate"
        if point.detection_max_s is not None:
            assert point.detection_max_s < 1.0, f"x{point.multiplier} latency"
    # Throughput grows with load (the pipeline doesn't saturate).
    records = [p.records for p in result.points]
    assert records == sorted(records)
