"""Bench S1 — specialized LLMs: zero-shot vs. RAG vs. fine-tuned (§5).

Expected shape: retrieval augmentation never hurts and lifts every model
that has reasoning-but-not-knowledge gaps; the locally fine-tuned
cellular-domain model answers the full grid correctly.
"""

from conftest import save_artifact

from repro.experiments.rag_study import RagStudyConfig, run_rag_study


def test_rag_and_finetuning_study(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_rag_study(RagStudyConfig()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "rag_study.txt", text)
    print("\n" + text)

    total = len(result.cases)
    benchmark.extra_info["zero_shot"] = {
        model: result.correct_count("zero-shot", model)
        for model in result.config.models
    }
    benchmark.extra_info["rag"] = {
        model: result.correct_count("rag", model) for model in result.config.models
    }
    benchmark.extra_info["finetuned"] = result.correct_count(
        "finetuned", result.config.finetuned_model
    )

    for model in result.config.models:
        zero_shot = result.correct_count("zero-shot", model)
        rag = result.correct_count("rag", model)
        assert rag >= zero_shot, f"RAG must not hurt {model}"
    assert sum(
        result.correct_count("rag", m) - result.correct_count("zero-shot", m)
        for m in result.config.models
    ) >= 3, "RAG must close several knowledge gaps overall"
    assert result.correct_count("finetuned", result.config.finetuned_model) == total
