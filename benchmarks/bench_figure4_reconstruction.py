"""Bench E2 — regenerate Figure 4 (reconstruction-error patterns).

Expected shape versus the paper: every attack instance's error burst peaks
above the detection threshold, and bursts of the *same* attack type are
more similar to each other than to other types (the paper's ①/② group
anomaly observation) — quantified by the intra- vs inter-type signature
distances and the leave-one-out attack-type classification accuracy.
"""

from conftest import save_artifact

from repro.experiments.figure4 import Figure4Config, run_figure4


def test_figure4_reconstruction_errors(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_figure4(Figure4Config()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "figure4.txt", text)
    print("\n" + text)

    intra = result.intra_type_similarity()
    inter = result.inter_type_similarity()
    benchmark.extra_info["num_bursts"] = len(result.bursts)
    benchmark.extra_info["threshold"] = round(result.threshold, 4)
    benchmark.extra_info["intra_type_distance"] = {
        k: round(v, 3) for k, v in intra.items()
    }
    benchmark.extra_info["inter_type_distance"] = round(inter, 3)
    benchmark.extra_info["type_classification_accuracy"] = round(
        result.classifier_accuracy, 3
    )

    # Paper-shape checks.
    assert len(result.bursts) >= 5
    for burst in result.bursts:
        assert burst.scores.max() > result.threshold, burst.attack_name
    mean_intra = sum(intra.values()) / len(intra)
    assert mean_intra < inter, "same-type bursts must cluster (Figure 4 ①②)"
    assert result.classifier_accuracy >= 0.7
