"""Bench O1 — the observability plane's overhead (repro.slo).

Measures what full observability (SLO engine + counters + profiler hooks
+ export plane) costs the per-record inference hot path, split into:

- per-record hook overhead (inline counters, sampled profiler hook),
  measured as a paired plain/observed difference on one scorer object;
- amortized plane overhead (histogram observe + engine tick + OpenMetrics
  render per cadence interval), from micro-benchmarked per-call costs.

Gates the sum at the <= 3% ceiling and re-verifies that the observed
scorer's per-record errors are bit-identical to the plain scorer's, then
compares against the committed ``BENCH_obs.json`` at the repo root.

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_obs.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_obs.json"


def _run(quick):
    from repro.slo.bench import run_bench

    return run_bench(quick=quick)


def test_obs(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.slo.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "obs.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "obs.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.slo.bench import load_baseline, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if "--json" in argv:
        out = argv[argv.index("--json") + 1]
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"snapshot -> {out}")
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on the ceiling only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
