"""Bench M1 — megabatch per-tick scoring (repro.megabatch).

Measures one simulated RIC tick over >= 1k concurrent sessions:

- pooled per-session scoring (the repo's fleet configuration: 4 workers,
  64-window flush batches) vs one gathered matrix per tick through the
  compiled float32 kernels (floor: >= 3x windows/s);
- the int8/float16 quantized LSTM tier vs the float32 compiled tier
  (floor: >= 1.5x).

Every run re-verifies the equality contracts: the float64 megabatch mode
must be bit-identical to seed per-session scoring (it scores gathered
rows through seed-shaped ``[1, window*dim]`` calls — BLAS dispatches
different kernels per batch height, so a fused f64 GEMM cannot be
bit-exact), the f32 tier must stay within its documented tolerance, and
the quantized tier must produce finite scores. Gates against the
committed ``BENCH_megabatch.json`` at the repo root.

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_megabatch.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_megabatch.json"


def _run(quick):
    from repro.megabatch.bench import run_bench

    return run_bench(quick=quick)


def test_megabatch(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.megabatch.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "megabatch.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "megabatch.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.megabatch.bench import load_baseline, run_bench, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if "--json" in argv:
        out = argv[argv.index("--json") + 1]
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"snapshot -> {out}")
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
