"""Bench H1 — the inference hot path (repro.hotpath).

Measures the three hot-path optimizations against their seed equivalents:

- per-record LSTM scoring latency: seed full-window re-run vs incremental
  carried-state scoring (floor: >= 5x);
- detector kernel throughput: uncompiled ``scores`` vs the compiled
  float32 kernels, both detectors (floor: >= 2x);
- wire codec MB/s: reference TLV encoder vs the fast interned-key path.

Every run re-verifies the equality contracts (float64 bit-identity,
byte-identical codec) and gates against the committed perf baseline
``BENCH_hotpath.json`` at the repo root.

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_hotpath.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_hotpath.json"


def _run(quick):
    from repro.hotpath.bench import run_bench

    return run_bench(quick=quick)


def test_hotpath(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.hotpath.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "hotpath.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "hotpath.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.hotpath.bench import load_baseline, run_bench, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
