"""Bench E1 — regenerate Table 2 (detection performance) at paper scale.

Run with ``pytest benchmarks/bench_table2_detection.py --benchmark-only``.
The rendered table is written to ``benchmarks/out/table2.txt`` and the
headline metrics land in the benchmark's extra_info.

Expected shape versus the paper: both models reach 100% *event-level*
recall on the five attacks; benign false alarms stay under 10%; the
autoencoder is at least as good as the LSTM on the benign dataset.
"""

from conftest import save_artifact

from repro.experiments.table2 import Table2Config, run_table2


def test_table2_detection(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_table2(Table2Config()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "table2.txt", text)
    print("\n" + text)

    ae_benign = result.by_key("benign", "autoencoder")
    lstm_benign = result.by_key("benign", "lstm")
    ae_attack = result.by_key("attack", "autoencoder")
    lstm_attack = result.by_key("attack", "lstm")

    benchmark.extra_info["ae_benign_accuracy"] = round(ae_benign.metrics.accuracy, 4)
    benchmark.extra_info["lstm_benign_accuracy"] = round(lstm_benign.metrics.accuracy, 4)
    benchmark.extra_info["ae_attack_recall"] = round(ae_attack.metrics.recall or 0, 4)
    benchmark.extra_info["lstm_attack_recall"] = round(lstm_attack.metrics.recall or 0, 4)
    benchmark.extra_info["ae_event_recall"] = ae_attack.event_recall
    benchmark.extra_info["lstm_event_recall"] = lstm_attack.event_recall

    # Paper-shape checks.
    assert ae_attack.event_recall == 1.0, "AE must detect every attack instance"
    assert lstm_attack.event_recall == 1.0, "LSTM must detect every attack instance"
    assert ae_benign.metrics.false_positive_rate < 0.10
    assert lstm_benign.metrics.false_positive_rate < 0.10
    assert ae_benign.metrics.accuracy >= lstm_benign.metrics.accuracy
