"""Bench T1 — the training fast path (repro.trainfast).

Measures the three trainfast layers against their seed equivalents:

- trainer epoch throughput: seed ``Autoencoder.fit`` / ``LstmPredictor.fit``
  loops vs the compiled float32 kernels (floor: >= 2x, both models);
- sweep wall-clock: a serial seed window-ablation sweep vs the full fast
  stack — sweep workers + float32 kernels + content-addressed dataset
  cache (floor: >= 2.5x where the host can run the workers in parallel);
- dataset cache: building the same labeled dataset twice with one cache —
  the second build must be a pure lookup (floor: >= 5x).

Every run re-verifies the equality contracts (float64 compiled training is
bit-identical to the seed loops; a parallel float64 sweep returns exactly
the serial seed rows) and gates against the committed perf baseline
``BENCH_trainfast.json`` at the repo root.

Runs two ways:

- under pytest-benchmark (full run, artifacts under ``benchmarks/out/``);
- as a plain script for CI smoke: ``python benchmarks/bench_trainfast.py
  --quick`` (no pytest-benchmark needed), exit 1 on any violated gate.
  ``--update`` rewrites the committed baseline from a full run.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_trainfast.json"


def _run(quick):
    from repro.trainfast.bench import run_bench

    return run_bench(quick=quick)


def test_trainfast(benchmark, artifact_dir):
    from conftest import save_artifact

    from repro.trainfast.bench import load_baseline, violations

    result = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    text = result.report()
    save_artifact(artifact_dir, "trainfast.txt", text)
    print("\n" + text)
    save_artifact(
        artifact_dir,
        "trainfast.json",
        json.dumps(result.to_dict(), indent=2, sort_keys=True),
    )
    failures = violations(result, load_baseline(BASELINE))
    assert not failures, failures


def main(argv):
    from repro.trainfast.bench import load_baseline, save_result, violations

    quick = "--quick" in argv
    update = "--update" in argv
    result = _run(quick)
    print(result.report())
    if "--json" in argv:
        out = argv[argv.index("--json") + 1]
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"snapshot -> {out}")
    if update:
        if quick:
            print("refusing to update the baseline from a --quick run", file=sys.stderr)
            return 1
        save_result(result, BASELINE)
        print(f"baseline updated -> {BASELINE}")
        return 0
    baseline = load_baseline(BASELINE)
    if baseline is None:
        print(f"(no committed baseline at {BASELINE}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main(sys.argv[1:]))
