"""Bench Z1 — telemetry poisoning vs. zero-trust E2 (paper §5).

Expected shape: replayed-footprint poisoning of the training telemetry on
an *unprotected* E2 interface teaches MobiWatch that the signaling storm
is normal (BTS DoS recall collapses), while HMAC-authenticated zero-trust
E2 rejects every forged indication and preserves detection.
"""

from conftest import save_artifact

from repro.experiments.poisoning import PoisoningConfig, run_poisoning_experiment


def test_zerotrust_poisoning(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_poisoning_experiment(PoisoningConfig()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "zerotrust_poisoning.txt", text)
    print("\n" + text)

    benchmark.extra_info["unprotected_recall"] = round(
        result.unprotected.bts_dos_recall, 3
    )
    benchmark.extra_info["zero_trust_recall"] = round(
        result.zero_trust.bts_dos_recall, 3
    )
    benchmark.extra_info["forged_rejected"] = result.zero_trust.forged_indications_rejected

    assert result.unprotected.bts_dos_recall < 0.5, "poisoning must bite"
    assert result.zero_trust.bts_dos_recall > 0.8, "zero-trust must protect"
    assert result.zero_trust.forged_indications_rejected > 0
    # Every forged record was absorbed into the unprotected training set.
    assert (
        result.unprotected.records_collected - result.zero_trust.records_collected
        == result.unprotected.forged_records_injected
    )
