"""Bench A1 — window-size ablation (the N the paper leaves free in §3.2)."""

from conftest import save_artifact

from repro.experiments.ablations import AblationConfig, run_window_ablation


def test_window_size_ablation(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_window_ablation(AblationConfig(), windows=(4, 6, 8, 10)),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_artifact(artifact_dir, "ablation_window.txt", text)
    print("\n" + text)
    benchmark.extra_info["rows"] = {
        row.label: {"fp": round(row.benign_fp_rate, 4), "recall": round(row.attack_recall, 4)}
        for row in result.rows
    }
    rows = {row.label: row for row in result.rows}
    for row in result.rows:
        assert row.benign_fp_rate < 0.15, row.label
    # The mid-range window sizes are the usable operating points; very
    # short windows can't span the attack signatures (informative result).
    assert rows["N=6"].attack_recall > 0.7
    assert rows["N=8"].attack_recall > 0.7
    assert rows["N=4"].attack_recall < rows["N=6"].attack_recall
