"""Bench E3 — regenerate Table 3 (LLM classification grid).

Expected: the reproduced ✓/✗ grid matches the paper cell-for-cell —
ChatGPT-4o misses only uplink identity extraction, Claude 3 Sonnet is the
only model to catch it, Copilot only flags the signaling storm, and every
model classifies both benign sequences correctly.
"""

from conftest import save_artifact

from repro.experiments.table3 import MODEL_ORDER, Table3Config, run_table3


def test_table3_llm_grid(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: run_table3(Table3Config()), rounds=1, iterations=1
    )
    text = result.render()
    save_artifact(artifact_dir, "table3.txt", text)
    print("\n" + text)

    per_model_correct = {
        model: sum(
            1 for case in result.cases if result.grid[(case.name, model)]
        )
        for model in MODEL_ORDER
    }
    benchmark.extra_info["per_model_correct_of_7"] = per_model_correct
    benchmark.extra_info["matches_paper_grid"] = result.matches_paper()

    assert result.matches_paper(), "grid must match the paper's Table 3"
    # ChatGPT-4o performs best: misses only one trace (§4.2).
    assert per_model_correct["chatgpt-4o"] == 6
