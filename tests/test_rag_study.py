"""Tests for the RAG / fine-tuning study (§5, Specialized LLM for 6G)."""

import pytest

from repro.experiments.datasets import AttackDatasetConfig
from repro.experiments.rag_study import RagStudyConfig, run_rag_study
from repro.llm.profiles import FINETUNED_PROFILE, MODEL_PROFILES

SMALL_ATTACK = AttackDatasetConfig(
    bts_dos_instances=1,
    blind_dos_instances=1,
    uplink_id_instances=1,
    downlink_id_instances=1,
    null_cipher_instances=1,
)


@pytest.fixture(scope="module")
def result():
    return run_rag_study(RagStudyConfig(attack=SMALL_ATTACK))


class TestRagStudy:
    def test_zero_shot_matches_table3_counts(self, result):
        # ChatGPT-4o misses exactly one trace zero-shot (§4.2).
        assert result.correct_count("zero-shot", "chatgpt-4o") == 6
        assert result.correct_count("zero-shot", "copilot") == 3

    def test_rag_never_hurts(self, result):
        for model in result.config.models:
            assert result.correct_count("rag", model) >= result.correct_count(
                "zero-shot", model
            )

    def test_rag_closes_chatgpt_gap(self, result):
        # With the SUCI-scheme snippet in the prompt, ChatGPT-4o catches the
        # uplink identity extraction it misses zero-shot.
        assert result.correct_count("rag", "chatgpt-4o") == 7
        assert result.grid[("rag", "uplink_id_extraction", "chatgpt-4o")]
        assert not result.grid[("zero-shot", "uplink_id_extraction", "chatgpt-4o")]

    def test_rag_lifts_copilot(self, result):
        assert result.correct_count("rag", "copilot") > result.correct_count(
            "zero-shot", "copilot"
        )

    def test_finetuned_model_answers_everything(self, result):
        assert result.correct_count("finetuned", "xsec-ft-7b") == len(result.cases)

    def test_benign_traces_stay_correct_under_rag(self, result):
        for model in result.config.models:
            assert result.grid[("rag", "benign_1", model)]
            assert result.grid[("rag", "benign_2", model)]

    def test_render(self, result):
        text = result.render()
        assert "Zero-shot" in text
        assert "xsec-ft-7b" in text


class TestProfiles:
    def test_finetuned_profile_registered(self):
        assert "xsec-ft-7b" in MODEL_PROFILES
        # Perceives every signature in the knowledge base, including the
        # challenge-forgery extension.
        assert len(FINETUNED_PROFILE.perceives) == 6

    def test_rag_boosts_are_disjoint_from_perception(self):
        for profile in MODEL_PROFILES.values():
            assert not (profile.perceives & profile.rag_boost)

    def test_finetuned_is_fast(self):
        slowest_cloud = max(
            p.mean_latency_s for p in MODEL_PROFILES.values() if p.vendor != "local"
        )
        assert FINETUNED_PROFILE.mean_latency_s < slowest_cloud
