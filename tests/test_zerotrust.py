"""Tests for zero-trust E2 authentication and the poisoning threat."""

import pytest

from repro.oran.e2agent import RicAgent, _pdu_envelope
from repro.oran.e2ap import E2SetupRequest, RicIndication
from repro.oran.e2sm_kpm import MOBIFLOW_RAN_FUNCTION_ID, MobiFlowKpmModel
from repro.oran.ric import NearRtRic
from repro.oran.zerotrust import (
    AuthenticatedE2Endpoint,
    AuthenticatedE2Link,
    E2AuthError,
    E2Authenticator,
)
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.links import InterfaceLink
from repro.telemetry.mobiflow import MobiFlowRecord

KEY_A = b"node-key-0123456"
KEY_B = b"ric-key-76543210"


class TestAuthenticator:
    def test_seal_verify_roundtrip(self):
        sender = E2Authenticator(node_id="gnb", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        sealed = sender.seal(b"pdu-bytes")
        assert receiver.verify(sealed, {"gnb": KEY_A}) == b"pdu-bytes"

    def test_wrong_key_rejected(self):
        sender = E2Authenticator(node_id="gnb", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        sealed = sender.seal(b"pdu")
        assert receiver.verify(sealed, {"gnb": KEY_B}) is None

    def test_unknown_node_rejected(self):
        sender = E2Authenticator(node_id="ghost", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        assert receiver.verify(sender.seal(b"pdu"), {"gnb": KEY_A}) is None

    def test_tampered_payload_rejected(self):
        sender = E2Authenticator(node_id="gnb", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        sealed = bytearray(sender.seal(b"pdu-bytes"))
        sealed[-1] ^= 0x01
        assert receiver.verify(bytes(sealed), {"gnb": KEY_A}) is None

    def test_replay_rejected(self):
        sender = E2Authenticator(node_id="gnb", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        sealed = sender.seal(b"pdu")
        assert receiver.verify(sealed, {"gnb": KEY_A}) == b"pdu"
        assert receiver.verify(sealed, {"gnb": KEY_A}) is None  # replayed

    def test_garbage_rejected(self):
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        assert receiver.verify(b"\x00garbage", {"gnb": KEY_A}) is None

    def test_nonces_increase(self):
        sender = E2Authenticator(node_id="gnb", key=KEY_A)
        receiver = E2Authenticator(node_id="ric", key=KEY_B)
        first = sender.seal(b"a")
        second = sender.seal(b"b")
        # Deliver out of order: the newer nonce wins, the older is dropped.
        assert receiver.verify(second, {"gnb": KEY_A}) == b"b"
        assert receiver.verify(first, {"gnb": KEY_A}) is None


class TestEndpoint:
    def test_short_key_rejected(self):
        with pytest.raises(E2AuthError):
            AuthenticatedE2Endpoint("gnb", b"short", lambda e: None)

    def test_accept_and_reject_counters(self):
        received = []
        endpoint = AuthenticatedE2Endpoint(
            "ric", KEY_B, received.append, keyring={"gnb": KEY_A}
        )
        peer = AuthenticatedE2Endpoint("gnb", KEY_A, lambda e: None)
        sealed = peer.seal_envelope(_pdu_envelope(E2SetupRequest(e2_node_id="gnb")))
        endpoint.on_e2(sealed)
        assert endpoint.accepted == 1
        endpoint.on_e2(_pdu_envelope(E2SetupRequest()))  # unsealed injection
        assert endpoint.rejected == 1
        assert len(received) == 1


def forged_indication():
    records = [
        MobiFlowRecord(
            timestamp=1.0, msg="RRCSetupRequest", protocol="RRC", direction="UL",
            session_id=999, rnti=0x9999,
        )
    ]
    header, message = MobiFlowKpmModel.encode_indication(records)
    return RicIndication(
        ric_request_id=1,
        ran_function_id=MOBIFLOW_RAN_FUNCTION_ID,
        sequence_number=1,
        indication_header=header,
        indication_message=message,
    )


class TestAuthenticatedLink:
    def _stack(self):
        net = FiveGNetwork(NetworkConfig(seed=1))
        raw = InterfaceLink(net.sim, "E2", latency_s=0.002)
        link = AuthenticatedE2Link(raw, node_key=KEY_A, ric_key=KEY_B)
        agent = RicAgent(net, link)
        ric = NearRtRic(net.sim, link)
        link.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
        agent.start()
        ric.start()
        return net, raw, link, agent, ric

    def test_legitimate_traffic_flows(self):
        net, raw, link, agent, ric = self._stack()
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=10.0)
        assert "gnb-cu-0" in ric.e2term.connected_nodes
        assert link.rejected_at_ric == 0
        assert link.rejected_at_node == 0

    def test_raw_injection_rejected(self):
        net, raw, link, agent, ric = self._stack()
        net.run(until=1.0)
        before = ric.e2term.indications_received
        raw.send_to_b(_pdu_envelope(forged_indication()))
        net.run(until=2.0)
        assert ric.e2term.indications_received == before
        assert link.rejected_at_ric == 1

    def test_unprotected_link_accepts_injection(self):
        """The contrast case: without zero-trust, forgeries go through."""
        net = FiveGNetwork(NetworkConfig(seed=2))
        raw = InterfaceLink(net.sim, "E2", latency_s=0.002)
        agent = RicAgent(net, raw)
        ric = NearRtRic(net.sim, raw)
        raw.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
        agent.start()
        ric.start()
        net.run(until=1.0)
        raw.send_to_b(_pdu_envelope(forged_indication()))
        net.run(until=2.0)
        assert ric.e2term.indications_received == 1

    def test_send_before_connect_rejected(self):
        net = FiveGNetwork(NetworkConfig(seed=3))
        raw = InterfaceLink(net.sim, "E2")
        link = AuthenticatedE2Link(raw, node_key=KEY_A, ric_key=KEY_B)
        with pytest.raises(E2AuthError):
            link.send_to_b(_pdu_envelope(E2SetupRequest()))


class TestPoisoningExperiment:
    def test_footprint_template_is_storm_shaped(self):
        from repro.experiments.poisoning import bts_dos_footprint

        footprint = bts_dos_footprint(sessions=2)
        assert footprint
        names = {r.msg for r in footprint}
        assert "RRCSetupRequest" in names
        assert "AuthenticationResponse" not in names  # abandoned at auth

    def test_small_poisoning_run(self):
        from repro.experiments.datasets import AttackDatasetConfig
        from repro.experiments.poisoning import PoisoningConfig, run_poisoning_experiment

        config = PoisoningConfig(
            training_duration_s=90.0,
            rogue_bursts=25,
            epochs=15,
            attack=AttackDatasetConfig(
                bts_dos_instances=1,
                blind_dos_instances=0,
                uplink_id_instances=0,
                downlink_id_instances=0,
                null_cipher_instances=0,
            ),
        )
        result = run_poisoning_experiment(config)
        # Forgeries accepted only on the unprotected interface.
        assert (
            result.unprotected.records_collected
            > result.zero_trust.records_collected
        )
        assert result.zero_trust.forged_indications_rejected > 0
        # Poisoning degrades detection; zero-trust preserves it.
        assert result.recall_damage > 0.3
        assert result.zero_trust.bts_dos_recall > 0.7
