"""Tests for the TLV wire codec, including property-based roundtrips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire


SIMPLE_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    255,
    256,
    -(2**70),
    2**70,
    0.0,
    -1.5,
    math.inf,
    "",
    "hello",
    "ünïcode ✓",
    b"",
    b"\x00\xff" * 10,
    [],
    [1, "two", None],
    {},
    {"k": "v", "n": 3, "nested": {"list": [1, [2, [3]]]}},
]


class TestRoundtrip:
    @pytest.mark.parametrize("value", SIMPLE_VALUES, ids=repr)
    def test_simple_values(self, value):
        assert wire.decode(wire.encode(value)) == value

    def test_nan_roundtrip(self):
        out = wire.decode(wire.encode(float("nan")))
        assert math.isnan(out)

    def test_tuple_decodes_as_list(self):
        assert wire.decode(wire.encode((1, 2))) == [1, 2]

    def test_bytearray_decodes_as_bytes(self):
        assert wire.decode(wire.encode(bytearray(b"abc"))) == b"abc"

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(wire.decode(wire.encode(value))) == ["z", "a", "m"]

    def test_long_payload_lengths(self):
        blob = b"x" * 70000  # forces multi-byte length encoding
        assert wire.decode(wire.encode(blob)) == blob

    def test_encoding_is_deterministic(self):
        value = {"a": [1, 2.5, "s"], "b": {"c": b"\x01"}}
        assert wire.encode(value) == wire.encode(value)


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(wire.WireError):
            wire.encode(object())

    def test_non_string_dict_key(self):
        with pytest.raises(wire.WireError):
            wire.encode({1: "x"})

    def test_trailing_bytes_rejected(self):
        data = wire.encode(1) + b"\x00"
        with pytest.raises(wire.WireError):
            wire.decode(data)

    def test_truncated_payload(self):
        data = wire.encode("hello")[:-1]
        with pytest.raises(wire.WireError):
            wire.decode(data)

    def test_empty_input(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x7f")

    def test_truncated_float(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x04\x00\x00")

    def test_decode_prefix_returns_remainder(self):
        data = wire.encode(1) + wire.encode("two")
        value, rest = wire.decode_prefix(data)
        assert value == 1
        assert wire.decode(rest) == "two"


# Recursive strategy over all supported wire types.
wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=50)
    | st.binary(max_size=50),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)


class TestPropertyBased:
    @settings(max_examples=200)
    @given(wire_values)
    def test_roundtrip_any_supported_value(self, value):
        assert wire.decode(wire.encode(value)) == value

    @settings(max_examples=100)
    @given(st.integers())
    def test_int_roundtrip_any_size(self, value):
        assert wire.decode(wire.encode(value)) == value

    @settings(max_examples=100)
    @given(st.binary(max_size=200))
    def test_garbage_never_crashes_decoder(self, data):
        try:
            wire.decode(data)
        except wire.WireError:
            pass  # rejecting is fine; crashing is not
