"""Tests for the TLV wire codec, including property-based roundtrips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire


SIMPLE_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    255,
    256,
    -(2**70),
    2**70,
    0.0,
    -1.5,
    math.inf,
    "",
    "hello",
    "ünïcode ✓",
    b"",
    b"\x00\xff" * 10,
    [],
    [1, "two", None],
    {},
    {"k": "v", "n": 3, "nested": {"list": [1, [2, [3]]]}},
]


class TestRoundtrip:
    @pytest.mark.parametrize("value", SIMPLE_VALUES, ids=repr)
    def test_simple_values(self, value):
        assert wire.decode(wire.encode(value)) == value

    def test_nan_roundtrip(self):
        out = wire.decode(wire.encode(float("nan")))
        assert math.isnan(out)

    def test_tuple_decodes_as_list(self):
        assert wire.decode(wire.encode((1, 2))) == [1, 2]

    def test_bytearray_decodes_as_bytes(self):
        assert wire.decode(wire.encode(bytearray(b"abc"))) == b"abc"

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(wire.decode(wire.encode(value))) == ["z", "a", "m"]

    def test_long_payload_lengths(self):
        blob = b"x" * 70000  # forces multi-byte length encoding
        assert wire.decode(wire.encode(blob)) == blob

    def test_encoding_is_deterministic(self):
        value = {"a": [1, 2.5, "s"], "b": {"c": b"\x01"}}
        assert wire.encode(value) == wire.encode(value)


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(wire.WireError):
            wire.encode(object())

    def test_non_string_dict_key(self):
        with pytest.raises(wire.WireError):
            wire.encode({1: "x"})

    def test_trailing_bytes_rejected(self):
        data = wire.encode(1) + b"\x00"
        with pytest.raises(wire.WireError):
            wire.decode(data)

    def test_truncated_payload(self):
        data = wire.encode("hello")[:-1]
        with pytest.raises(wire.WireError):
            wire.decode(data)

    def test_empty_input(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x7f")

    def test_truncated_float(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x04\x00\x00")

    def test_decode_prefix_returns_remainder(self):
        data = wire.encode(1) + wire.encode("two")
        value, rest = wire.decode_prefix(data)
        assert value == 1
        assert wire.decode(rest) == "two"


# Recursive strategy over all supported wire types.
wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=50)
    | st.binary(max_size=50),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)


class TestPropertyBased:
    @settings(max_examples=200)
    @given(wire_values)
    def test_roundtrip_any_supported_value(self, value):
        assert wire.decode(wire.encode(value)) == value

    @settings(max_examples=100)
    @given(st.integers())
    def test_int_roundtrip_any_size(self, value):
        assert wire.decode(wire.encode(value)) == value

    @settings(max_examples=100)
    @given(st.binary(max_size=200))
    def test_garbage_never_crashes_decoder(self, data):
        try:
            wire.decode(data)
        except wire.WireError:
            pass  # rejecting is fine; crashing is not


class TestFraming:
    """Length-prefixed framing for stream transports (repro.runtime)."""

    def test_roundtrip_single_frame(self):
        payload = wire.encode({"type": "hb", "n": 3})
        framed = wire.frame(payload)
        assert framed[0] == wire.FRAME_MAGIC
        out, rest = wire.deframe(framed)
        assert out == payload
        assert rest == b""

    def test_deframe_leaves_trailing_bytes(self):
        first = wire.frame(b"one")
        out, rest = wire.deframe(first + wire.frame(b"two") + b"\xa5")
        assert out == b"one"
        out2, rest2 = wire.deframe(rest)
        assert out2 == b"two"
        assert rest2 == b"\xa5"

    def test_partial_header_is_incomplete(self):
        framed = wire.frame(b"payload")
        for cut in range(wire.FRAME_HEADER_SIZE):
            with pytest.raises(wire.IncompleteFrameError):
                wire.deframe(framed[:cut] or b"\xa5"[:cut])

    def test_partial_payload_is_incomplete(self):
        framed = wire.frame(b"payload")
        with pytest.raises(wire.IncompleteFrameError):
            wire.deframe(framed[:-1])

    def test_incomplete_is_a_wire_error_subclass(self):
        # Callers that only catch WireError still treat partials safely.
        assert issubclass(wire.IncompleteFrameError, wire.WireError)

    def test_garbage_magic_raises_plain_wire_error(self):
        with pytest.raises(wire.WireError) as excinfo:
            wire.deframe(b"\x00garbage bytes here")
        assert not isinstance(excinfo.value, wire.IncompleteFrameError)
        assert "desync" in str(excinfo.value)

    def test_garbage_first_byte_detected_before_full_header(self):
        # A desynced stream is reported even before 5 header bytes arrive.
        with pytest.raises(wire.WireError) as excinfo:
            wire.deframe(b"\x7f")
        assert not isinstance(excinfo.value, wire.IncompleteFrameError)

    def test_oversize_payload_rejected_on_frame(self):
        class FakeLen(bytes):
            def __len__(self):
                return wire.MAX_FRAME_BYTES + 1

        with pytest.raises(wire.WireError):
            wire.frame(FakeLen(b"x"))

    def test_oversize_length_rejected_on_deframe(self):
        import struct

        bogus = struct.pack(">BI", wire.FRAME_MAGIC, wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(wire.WireError) as excinfo:
            wire.deframe(bogus + b"x" * 16)
        assert not isinstance(excinfo.value, wire.IncompleteFrameError)

    def test_decoder_reassembles_byte_by_byte(self):
        payloads = [wire.encode({"i": i, "blob": b"\x00" * i}) for i in range(5)]
        stream = b"".join(wire.frame(p) for p in payloads)
        decoder = wire.FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(decoder.feed(stream[i : i + 1]))
        assert got == payloads
        assert decoder.pending_bytes == 0

    def test_decoder_many_frames_one_chunk(self):
        payloads = [b"a", b"", b"c" * 1000]
        decoder = wire.FrameDecoder()
        assert decoder.feed(b"".join(wire.frame(p) for p in payloads)) == payloads

    def test_decoder_buffers_partial_and_reports_pending(self):
        framed = wire.frame(b"abcdef")
        decoder = wire.FrameDecoder()
        assert decoder.feed(framed[:4]) == []
        assert decoder.pending_bytes == 4
        assert decoder.feed(framed[4:]) == [b"abcdef"]
        assert decoder.pending_bytes == 0

    def test_decoder_garbage_raises(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(wire.WireError):
            decoder.feed(b"\xffnot a frame")

    @settings(max_examples=100)
    @given(st.lists(st.binary(max_size=64), max_size=8), st.integers(1, 16))
    def test_decoder_chunking_never_changes_payloads(self, payloads, chunk):
        stream = b"".join(wire.frame(p) for p in payloads)
        decoder = wire.FrameDecoder()
        got = []
        for i in range(0, len(stream), chunk):
            got.extend(decoder.feed(stream[i : i + chunk]))
        assert got == payloads
