"""repro.trainfast: equality contracts, sweep determinism, cache, gates.

The training fast path trades work for speed only where the result is
provably the same, so almost every test here is an equality test:

- defaults keep the seed training path (no compiled trainers, serial
  sweeps, no dataset cache);
- the float64 compiled trainers reproduce the seed loops bit-for-bit —
  per-epoch loss trajectories *and* final weights — for both models, on
  captures from each of the five attacks' scenarios;
- the in-place FlatAdam matches the seed Adam parameter-for-parameter
  (property test over random shapes and gradient streams);
- a parallel float64 sweep returns exactly the serial seed sweep's rows;
- the dataset cache is content-addressed: identical telemetry hits,
  different telemetry/spec/window never alias.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.core import XsecConfig
from repro.core.framework import build_detector
from repro.experiments.ablations import AblationConfig, run_window_ablation
from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_benign_dataset,
)
from repro.ml.autoencoder import Autoencoder
from repro.ml.layers import Parameter
from repro.ml.lstm import LstmPredictor
from repro.ml.optim import Adam
from repro.ml.training import TrainConfig, train_autoencoder
from repro.ran.core_network import AmfConfig
from repro.ran.network import FiveGNetwork, NetworkConfig
from repro.telemetry.collector import MobiFlowCollector
from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries
from repro.trainfast import (
    DatasetCache,
    FlatAdam,
    SweepRunner,
    TrainfastSettings,
    compile_trainer,
    compiled_train_minibatch,
    derive_seed,
    series_digest,
    spec_key,
)
from repro.trainfast.bench import TrainfastBenchResult, violations
from repro.trainfast.trainer import _ParamStore


# ---------------------------------------------------------------------------
# settings


class TestTrainfastSettings:
    def test_defaults_all_off(self):
        settings_ = TrainfastSettings()
        assert not settings_.compiled_trainer
        assert not settings_.compiled_scoring
        assert settings_.sweep_workers == 0
        assert not settings_.cache
        assert not settings_.any_enabled

    def test_any_enabled_tracks_each_flag(self):
        assert TrainfastSettings(compiled_trainer=True).any_enabled
        assert TrainfastSettings(compiled_scoring=True).any_enabled
        assert TrainfastSettings(sweep_workers=2).any_enabled
        assert TrainfastSettings(cache=True).any_enabled

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError):
            TrainfastSettings(trainer_dtype="float16")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            TrainfastSettings(sweep_workers=-1)


# ---------------------------------------------------------------------------
# float64 compiled-trainer bit-identity, per attack scenario


def _uplink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=8.0)


def _downlink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=8.0)


# name -> (attack factory taking the live network, extra NetworkConfig kwargs)
ATTACK_SCENARIOS = {
    "bts_dos": (
        lambda net: BtsDosAttack(net, start_time=3.0, connections=8, interval_s=0.08),
        {},
    ),
    "blind_dos": (
        lambda net: BlindDosAttack(net, victim=net.ues[0], start_time=3.0, replays=5),
        {},
    ),
    "uplink_id_extraction": (_uplink_extraction, {}),
    "downlink_id_extraction": (_downlink_extraction, {}),
    "null_cipher": (
        lambda net: NullCipherAttack(net, start_time=3.0),
        {"amf": AmfConfig(allow_null_algorithms=True)},
    ),
}


@pytest.fixture(scope="module")
def scenario_windows():
    """Window matrices from a live capture of each attack's scenario."""
    spec = FeatureSpec()
    out = {}
    for name, (factory, net_kwargs) in ATTACK_SCENARIOS.items():
        net = FiveGNetwork(NetworkConfig(seed=77, **net_kwargs))
        for profile in ("pixel5", "oai_ue"):
            ue = net.add_ue(profile)
            net.sim.schedule(0.5, ue.start_session)
        factory(net).arm()
        net.run(until=16.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        dataset = WindowedDataset.from_series(series, spec, window=6)
        assert dataset.num_windows > 0, name
        out[name] = np.asarray(dataset.windows, dtype=np.float64)
    return out


class TestCompiledTrainerBitIdentity:
    """The acceptance contract: float64 kernels == seed loops, bitwise."""

    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_autoencoder_losses_and_weights(self, scenario_windows, scenario):
        windows = scenario_windows[scenario]
        dim = windows.shape[1]
        seed_model = Autoencoder(dim, hidden_dim=48, latent_dim=12, seed=3)
        fast_model = Autoencoder(dim, hidden_dim=48, latent_dim=12, seed=3)
        seed_report = seed_model.fit(windows, epochs=4)
        fast_report = compile_trainer(fast_model, "float64").fit(windows, epochs=4)
        assert seed_report.epoch_losses == fast_report.epoch_losses
        for a, b in zip(seed_model.model.params(), fast_model.model.params()):
            assert np.array_equal(a.value, b.value)

    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_lstm_losses_and_weights(self, scenario_windows, scenario):
        windows = scenario_windows[scenario]
        dim = windows.shape[1] // 6
        unflat = windows.reshape(len(windows), 6, dim)
        sequences, targets = unflat[:, :-1, :], unflat[:, 1:, :]
        seed_model = LstmPredictor(dim, hidden_dim=24, output_dim=dim, seed=3)
        fast_model = LstmPredictor(dim, hidden_dim=24, output_dim=dim, seed=3)
        seed_report = seed_model.fit(sequences, targets, epochs=4)
        fast_report = compile_trainer(fast_model, "float64").fit(
            sequences, targets, epochs=4
        )
        assert seed_report.epoch_losses == fast_report.epoch_losses
        for a, b in zip(seed_model.params(), fast_model.params()):
            assert np.array_equal(a.value, b.value)

    def test_float32_tracks_seed_loss(self, scenario_windows):
        windows = scenario_windows["bts_dos"]
        dim = windows.shape[1]
        seed_model = Autoencoder(dim, hidden_dim=48, latent_dim=12, seed=3)
        fast_model = Autoencoder(dim, hidden_dim=48, latent_dim=12, seed=3)
        seed_report = seed_model.fit(windows, epochs=4)
        fast_report = compile_trainer(fast_model, "float32").fit(windows, epochs=4)
        assert seed_report.epoch_losses[-1] == pytest.approx(
            fast_report.epoch_losses[-1], rel=1e-4
        )

    def test_train_minibatch_early_stopping_mirrored(self, scenario_windows):
        windows = scenario_windows["null_cipher"]
        dim = windows.shape[1]
        config = TrainConfig(
            epochs=12, lr=2e-3, validation_fraction=0.2, patience=2, seed=5
        )
        seed_model = Autoencoder(dim, hidden_dim=32, latent_dim=8, seed=5)
        fast_model = Autoencoder(dim, hidden_dim=32, latent_dim=8, seed=5)
        seed_hist = train_autoencoder(seed_model, windows, config)
        fast_hist = compiled_train_minibatch(fast_model, windows, windows, config)
        assert seed_hist.epoch_losses == fast_hist.epoch_losses
        assert seed_hist.validation_losses == fast_hist.validation_losses
        assert seed_hist.best_epoch == fast_hist.best_epoch
        assert seed_hist.stopped_early == fast_hist.stopped_early
        for a, b in zip(seed_model.model.params(), fast_model.model.params()):
            assert np.array_equal(a.value, b.value)


# ---------------------------------------------------------------------------
# FlatAdam == seed Adam (property test)


def _random_params(rng, n_params):
    shapes = [
        (int(rng.integers(1, 7)), int(rng.integers(1, 7))) for _ in range(n_params)
    ]
    return [
        [Parameter(rng.normal(size=shape)) for shape in shapes],
        [Parameter(np.zeros(shape)) for shape in shapes],
    ]


class TestFlatAdamMatchesSeedAdam:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_parameter_trajectories_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        n_params = int(rng.integers(1, 4))
        steps = int(rng.integers(1, 6))
        lr = float(rng.uniform(1e-4, 1e-2))
        params_a, params_b = _random_params(rng, n_params)
        for a, b in zip(params_a, params_b):
            b.value[...] = a.value
        seed_adam = Adam(params_a, lr=lr)
        store = _ParamStore(params_b, "float64")
        flat = FlatAdam(store, lr=lr)
        for _ in range(steps):
            grads = [rng.normal(size=p.shape) for p in params_a]
            for p, g, view in zip(params_a, grads, flat.grad_views):
                p.grad[...] = g
                view[...] = g
            seed_adam.step()
            flat.step()
            for a, b in zip(params_a, params_b):
                assert np.array_equal(a.value, b.value)

    def test_float64_views_alias_model_params(self):
        params = [Parameter(np.ones((3, 2)))]
        store = _ParamStore(params, "float64")
        assert store.views[0] is params[0].value


# ---------------------------------------------------------------------------
# detector routing


@pytest.fixture(scope="module")
def benign_windows():
    capture = generate_benign_dataset(BenignDatasetConfig(seed=11, duration_s=30.0))
    dataset = capture.labeled(FeatureSpec(), 6, "benign")
    return np.asarray(dataset.windowed.windows, dtype=np.float64)


def _detector_params(detector):
    model = detector.model  # Autoencoder wraps its Sequential; LSTM is flat
    return model.params() if hasattr(model, "params") else model.model.params()


class TestDetectorRouting:
    def test_default_config_attaches_nothing(self):
        config = XsecConfig()
        assert not config.trainfast.any_enabled
        detector = build_detector(config)
        assert detector._trainfast is None

    def test_enabled_config_attaches_settings(self):
        config = XsecConfig(
            trainfast=TrainfastSettings(compiled_trainer=True)
        )
        detector = build_detector(config)
        assert detector._trainfast is config.trainfast

    @pytest.mark.parametrize("detector_name", ["autoencoder", "lstm"])
    def test_compiled_f64_fit_equals_seed_fit(self, benign_windows, detector_name):
        seed_det = build_detector(XsecConfig(detector=detector_name, train_epochs=4))
        fast_det = build_detector(
            XsecConfig(
                detector=detector_name,
                train_epochs=4,
                trainfast=TrainfastSettings(
                    compiled_trainer=True, compiled_scoring=True
                ),
            )
        )
        assert fast_det._trainfast is not None
        seed_det.fit(benign_windows, epochs=4)
        fast_det.fit(benign_windows, epochs=4)
        # float64 end to end: weights, training scores, and the threshold
        # all land on exactly the seed's bits.
        for a, b in zip(_detector_params(seed_det), _detector_params(fast_det)):
            assert np.array_equal(a.value, b.value)
        assert np.array_equal(seed_det.training_scores, fast_det.training_scores)
        assert seed_det.threshold.threshold == fast_det.threshold.threshold
        assert fast_det.compiled is not None  # compiled_scoring snapshot

    def test_fit_without_trainfast_leaves_no_snapshot(self, benign_windows):
        detector = build_detector(XsecConfig(train_epochs=2))
        detector.fit(benign_windows, epochs=2)
        assert detector.compiled is None


# ---------------------------------------------------------------------------
# sweep runner


class TestSweepRunner:
    def test_derive_seed_deterministic_and_distinct(self):
        seeds = [derive_seed(7, i) for i in range(32)]
        assert seeds == [derive_seed(7, i) for i in range(32)]
        assert len(set(seeds)) == len(seeds)
        assert derive_seed(8, 0) != derive_seed(7, 0)

    def test_serial_map_preserves_order(self):
        runner = SweepRunner(workers=0)
        assert not runner.parallel_available
        assert runner.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        parallel = SweepRunner(workers=2)
        if not parallel.parallel_available:  # pragma: no cover - fork-less host
            pytest.skip("fork start method unavailable")
        items = list(range(8))
        assert parallel.map(lambda x: x * 3 + 1, items) == [x * 3 + 1 for x in items]

    def test_from_settings(self):
        assert SweepRunner.from_settings(None).workers == 0
        assert SweepRunner.from_settings(TrainfastSettings(sweep_workers=3)).workers == 3


class TestParallelSweepEqualsSerial:
    def test_window_ablation_rows_identical(self):
        config = AblationConfig(
            epochs=3,
            seed=9,
            benign=BenignDatasetConfig(seed=11, duration_s=25.0),
            attack=AttackDatasetConfig(
                seed=12,
                duration_s=20.0,
                bts_dos_instances=1,
                blind_dos_instances=1,
                uplink_id_instances=1,
                downlink_id_instances=1,
                null_cipher_instances=1,
            ),
        )
        windows = (4, 6)
        serial = run_window_ablation(config, windows)
        fast = run_window_ablation(
            config,
            windows,
            trainfast=TrainfastSettings(
                compiled_trainer=True,
                compiled_scoring=True,
                sweep_workers=2,
                cache=True,
            ),
        )
        assert serial.rows == fast.rows


# ---------------------------------------------------------------------------
# dataset cache


def _record(t, msg, session=1, **kwargs):
    defaults = dict(protocol="RRC", direction="UL")
    defaults.update(kwargs)
    return MobiFlowRecord(timestamp=t, msg=msg, session_id=session, **defaults)


def _series(extra_msg="RRCSetupComplete"):
    return TelemetrySeries(
        [
            _record(0.00, "RRCSetupRequest", establishment_cause="mo-Data"),
            _record(0.01, "RRCSetup", direction="DL"),
            _record(0.02, extra_msg),
            _record(0.03, "RegistrationRequest", protocol="NAS", suci="suci-001-01-x"),
            _record(0.04, "AuthenticationRequest", protocol="NAS", direction="DL"),
        ]
    )


class TestDatasetCache:
    def test_identical_content_hits_even_across_objects(self):
        cache = DatasetCache()
        spec = FeatureSpec()
        first = WindowedDataset.from_series(_series(), spec, window=3, cache=cache)
        assert cache.misses > 0 and cache.hits == 0
        # A different series object with byte-identical records is the
        # same content-address: pure hit, same dataset object.
        again = WindowedDataset.from_series(_series(), spec, window=3, cache=cache)
        assert again is first
        assert cache.hits > 0

    def test_different_window_is_a_miss_but_shares_the_encode(self):
        cache = DatasetCache()
        spec = FeatureSpec()
        three = WindowedDataset.from_series(_series(), spec, window=3, cache=cache)
        misses_before, hits_before = cache.misses, cache.hits
        two = WindowedDataset.from_series(_series(), spec, window=2, cache=cache)
        assert two is not three
        # New window = a fresh dataset, but the per-record encode (the
        # expensive level) is shared: level-1 hit, no new encode.
        assert cache.misses == misses_before
        assert cache.hits == hits_before + 1
        assert two.per_record is three.per_record

    def test_different_content_never_aliases(self):
        cache = DatasetCache()
        spec = FeatureSpec()
        a = WindowedDataset.from_series(_series(), spec, window=3, cache=cache)
        b = WindowedDataset.from_series(
            _series(extra_msg="RRCReject"), spec, window=3, cache=cache
        )
        assert a is not b
        assert series_digest(_series()) != series_digest(_series(extra_msg="RRCReject"))

    def test_digest_memoized_per_object(self):
        series = _series()
        assert series_digest(series) == series_digest(series)
        assert series_digest(series) == series_digest(_series())

    def test_spec_key_tracks_spec(self):
        assert spec_key(FeatureSpec()) == spec_key(FeatureSpec())

    def test_cached_arrays_are_read_only(self):
        cache = DatasetCache()
        dataset = WindowedDataset.from_series(_series(), FeatureSpec(), 3, cache=cache)
        with pytest.raises(ValueError):
            dataset.windows[0, 0] = 1.0
        with pytest.raises(ValueError):
            dataset.per_record[0, 0] = 1.0

    def test_cache_matches_uncached_build(self):
        cached = WindowedDataset.from_series(
            _series(), FeatureSpec(), 3, cache=DatasetCache()
        )
        plain = WindowedDataset.from_series(_series(), FeatureSpec(), 3)
        assert np.array_equal(cached.windows, plain.windows)
        assert np.array_equal(cached.per_record, plain.per_record)
        assert cached.window_records == plain.window_records

    def test_disk_layer_roundtrip(self, tmp_path):
        spec = FeatureSpec()
        writer = DatasetCache(cache_dir=str(tmp_path))
        matrix = writer.record_matrix(_series(), spec)
        reader = DatasetCache(cache_dir=str(tmp_path))
        loaded = reader.record_matrix(_series(), spec)
        assert reader.hits == 1 and reader.misses == 0
        assert np.array_equal(loaded, matrix)
        assert not loaded.flags.writeable

    def test_clear_resets_storage(self):
        cache = DatasetCache()
        WindowedDataset.from_series(_series(), FeatureSpec(), 3, cache=cache)
        cache.clear()
        assert cache.stats["matrices"] == 0
        assert cache.stats["datasets"] == 0


# ---------------------------------------------------------------------------
# bench gate logic


def _passing_result():
    return TrainfastBenchResult(
        trainers={
            "autoencoder": {"speedup": 2.6},
            "lstm": {"speedup": 2.1},
        },
        sweep={"speedup": 2.8, "floor": 2.5, "parallel_capable": True},
        scaling={"measured": True, "efficiency": 0.8},
        cache={"speedup": 100.0},
        equality={
            "trainer_f64_exact": True,
            "sweep_parallel_f64_matches_serial": True,
            "cache_hit_on_reencode": True,
        },
        meta={},
    )


class TestBenchGates:
    def test_passing_result_has_no_violations(self):
        assert violations(_passing_result()) == []

    def test_equality_breach_flagged(self):
        result = _passing_result()
        result.equality["trainer_f64_exact"] = False
        assert any("equality" in v for v in violations(result))

    def test_floor_breaches_flagged(self):
        result = _passing_result()
        result.trainers["lstm"]["speedup"] = 1.9
        result.sweep["speedup"] = 2.4
        result.cache["speedup"] = 4.0
        result.scaling["efficiency"] = 0.4
        assert len(violations(result)) == 4

    def test_quick_run_gates_trainers_at_smoke_floor(self):
        # run_bench(quick=True) stamps the slacked smoke floor into each
        # trainer entry; violations() must honor it over the full floor.
        result = _passing_result()
        result.trainers["lstm"] = {"speedup": 1.8, "floor": 1.7}
        assert violations(result) == []
        result.trainers["lstm"]["speedup"] = 1.6
        assert any("lstm" in v for v in violations(result))

    def test_serial_host_gates_at_serial_floor(self):
        result = _passing_result()
        result.sweep = {"speedup": 1.6, "floor": 1.3, "parallel_capable": False}
        result.scaling = {"measured": False}
        assert violations(result) == []
        result.sweep["speedup"] = 1.2
        assert any("sweep" in v for v in violations(result))

    def test_baseline_regression_flagged(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        baseline["sweep"]["speedup"] = 20.0  # committed run was much faster
        assert any("regressed" in v for v in violations(result, baseline))

    def test_baseline_within_slack_passes(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        assert violations(result, baseline) == []
