"""repro.scale wired through the full stack (RIC, E2 term, MobiWatch).

Checks both directions of the config flag:

- defaults keep the seed's single-node components (no sharded SDL, no
  ingest batcher, no inference pool) so behaviour is bit-identical;
- a scaled-up config routes live traffic through all three and still
  produces the same telemetry and detections.
"""

import pytest

from repro.core import SixGXSec, XsecConfig
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.oran.sdl import SharedDataLayer
from repro.ran.network import NetworkConfig
from repro.scale import ScaleSettings, ShardedSdl
from repro.scale.bench import ScaleBenchConfig, run_scale_bench


def scaled_settings():
    return ScaleSettings(
        sdl_shards=4,
        sdl_replication=2,
        ingest_flush_records=8,
        ingest_flush_interval_s=0.01,
        pool_batch_windows=4,
        pool_workers=2,
    )


@pytest.fixture(scope="module")
def benign_windows():
    config = XsecConfig()
    capture = generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )
    return capture.labeled(config.spec, config.window, "benign").windowed.windows


def run_live(config, benign_windows, seed=77):
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=seed))
    xsec.train_from_benign(benign_windows)
    for profile in ("pixel5", "oai_ue"):
        ue = xsec.net.add_ue(profile)
        xsec.net.sim.schedule(0.5, ue.start_session)
    xsec.run(until=25.0)
    return xsec


class TestDefaultsAreSeedComponents:
    def test_default_config_uses_single_node_path(self):
        xsec = SixGXSec(XsecConfig())
        assert type(xsec.ric.sdl) is SharedDataLayer
        assert xsec.ric.e2term.ingest_batcher is None
        assert xsec.mobiwatch.pool is None
        assert xsec.pipeline.scale_report() == {}


class TestScaledLivePipeline:
    @pytest.fixture(scope="class")
    def pair(self, benign_windows):
        seed_cfg = XsecConfig(train_epochs=6)
        scaled_cfg = XsecConfig(train_epochs=6, scale=scaled_settings())
        return (
            run_live(seed_cfg, benign_windows),
            run_live(scaled_cfg, benign_windows),
        )

    def test_scaled_components_instantiated(self, pair):
        _, scaled = pair
        assert isinstance(scaled.ric.sdl, ShardedSdl)
        assert scaled.ric.sdl.num_shards == 4
        assert scaled.ric.e2term.ingest_batcher is not None
        assert scaled.mobiwatch.pool is not None and scaled.mobiwatch.pool.workers == 2

    def test_same_telemetry_reaches_mobiwatch(self, pair):
        baseline, scaled = pair
        assert baseline.mobiwatch.records_seen > 20
        # Batching delays delivery (bounded by the flush interval) but must
        # not lose or duplicate records on an uncongested run.
        stats = scaled.ric.e2term.ingest_batcher.stats()
        assert stats["dropped"] == 0
        assert scaled.mobiwatch.records_seen == baseline.mobiwatch.records_seen

    def test_batcher_accounting_closed(self, pair):
        _, scaled = pair
        stats = scaled.ric.e2term.ingest_batcher.stats()
        assert stats["offered"] == stats["ingested"] + stats["dropped"] + stats["pending"]

    def test_pool_scored_every_window(self, pair):
        _, scaled = pair
        assert scaled.mobiwatch.windows_scored > 0
        assert scaled.mobiwatch.pool.windows_scored == scaled.mobiwatch.windows_scored

    def test_telemetry_lands_in_sharded_sdl(self, pair):
        _, scaled = pair
        keys = scaled.ric.sdl.keys("xsec.mobiflow")
        assert len(keys) == scaled.mobiwatch.records_seen
        per_shard = scaled.ric.sdl.health()["per_shard_writes"]
        assert sum(1 for writes in per_shard.values() if writes) >= 2

    def test_scale_report_sections(self, pair):
        _, scaled = pair
        report = scaled.pipeline.scale_report()
        assert set(report) == {"sdl", "ingest", "pool"}
        assert report["sdl"]["alive"] == 4

    def test_scored_window_counts_match_baseline(self, pair):
        baseline, scaled = pair
        # Identical traffic (same network seed): the scaled path must see
        # the same records and score the same number of windows.
        assert scaled.mobiwatch.records_seen == baseline.mobiwatch.records_seen
        assert scaled.mobiwatch.windows_scored == baseline.mobiwatch.windows_scored


class TestScaleBenchSmoke:
    def test_tiny_sweep_passes_checks(self):
        config = ScaleBenchConfig(
            shards=(1, 2),
            duration_s=0.5,
            sessions=64,
            bank_records=256,
            train_epochs=1,
            start_rate=500.0,
            max_rate=8000.0,
            fault_shards=2,
            fault_kill_at_s=0.2,
        )
        result = run_scale_bench(config)
        assert result.check() == []
        assert result.fault is not None and result.fault.lost_acknowledged == 0
        assert result.points[-1].sustained.throughput > result.points[0].sustained.throughput
