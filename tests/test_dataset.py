"""Tests for dataset labeling rules (paper §4, Dataset Labeling)."""

import numpy as np

from repro.attacks import BtsDosAttack
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import FeatureSpec, LabeledDataset, MobiFlowCollector, label_sequences
from repro.telemetry.dataset import label_records
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries


def record(t, msg, rnti=1):
    return MobiFlowRecord(timestamp=t, msg=msg, protocol="RRC", direction="UL", rnti=rnti)


class FakeAttack:
    name = "fake"

    def __init__(self, bad_rntis):
        self.bad = bad_rntis

    def is_malicious(self, r):
        return r.rnti in self.bad


class TestLabelSequences:
    def test_window_containing_malicious_entry_is_malicious(self):
        record_labels = np.array([False, False, True, False, False])
        window_labels = label_sequences(record_labels, window=2)
        # windows: (0,1) (1,2) (2,3) (3,4)
        assert list(window_labels) == [False, True, True, False]

    def test_all_benign(self):
        labels = label_sequences(np.zeros(6, dtype=bool), window=3)
        assert not labels.any()
        assert len(labels) == 4

    def test_short_series(self):
        assert len(label_sequences(np.zeros(2, dtype=bool), window=5)) == 0

    def test_paper_rule_window_span(self):
        """Malicious x_i taints exactly windows S_{i-N+1} .. S_i."""
        m, n, i = 10, 3, 5
        record_labels = np.zeros(m, dtype=bool)
        record_labels[i] = True
        window_labels = label_sequences(record_labels, n)
        tainted = {j for j in range(len(window_labels)) if window_labels[j]}
        assert tainted == {i - n + 1, i - n + 2, i}


class TestLabelRecords:
    def test_multiple_attacks_union(self):
        series = TelemetrySeries([record(0.0, "A", rnti=1), record(0.1, "B", rnti=2), record(0.2, "C", rnti=3)])
        labels = label_records(series, [FakeAttack({1}), FakeAttack({3})])
        assert list(labels) == [True, False, True]

    def test_no_attacks_all_benign(self):
        series = TelemetrySeries([record(0.0, "A")])
        assert not label_records(series, []).any()


class TestLabeledDataset:
    def test_build_from_real_attack(self):
        net = FiveGNetwork(NetworkConfig(seed=3))
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.1, ue.start_session)
        attack = BtsDosAttack(net, start_time=2.0, connections=6, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        dataset = LabeledDataset.build("attack", series, FeatureSpec(), window=4, attacks=[attack])
        # Session mode (default): every tracked record is covered by a window.
        covered = {i for idxs in dataset.windowed.window_records for i in idxs}
        tracked = {i for i, r in enumerate(series) if r.session_id != 0}
        assert covered == tracked
        assert dataset.malicious_window_count > 0
        assert dataset.malicious_window_count < dataset.num_windows
        # Window labels consistent with record labels under containment rule.
        for i in range(dataset.num_windows):
            indices = list(dataset.windowed.record_indices(i))
            assert dataset.window_labels[i] == dataset.record_labels[indices].any()

    def test_global_mode_matches_label_sequences(self):
        net = FiveGNetwork(NetworkConfig(seed=3))
        attack = BtsDosAttack(net, start_time=0.5, connections=4, interval_s=0.05)
        attack.arm()
        net.run(until=10.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        dataset = LabeledDataset.build(
            "attack", series, FeatureSpec(), window=4, attacks=[attack], mode="global"
        )
        assert dataset.num_windows == len(series) - 3
        expected = label_sequences(dataset.record_labels, 4)
        assert list(dataset.window_labels) == list(expected)

    def test_window_attack_attribution(self):
        net = FiveGNetwork(NetworkConfig(seed=3))
        attack = BtsDosAttack(net, start_time=0.5, connections=4, interval_s=0.05)
        attack.arm()
        net.run(until=10.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        dataset = LabeledDataset.build("attack", series, FeatureSpec(), window=4, attacks=[attack])
        for i in range(dataset.num_windows):
            if dataset.window_labels[i]:
                assert dataset.window_attack(i) == "bts_dos"
            else:
                assert dataset.window_attack(i) is None

    def test_benign_and_malicious_window_split(self):
        net = FiveGNetwork(NetworkConfig(seed=4))
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.1, ue.start_session)
        attack = BtsDosAttack(net, start_time=3.0, connections=5, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        dataset = LabeledDataset.build("d", series, FeatureSpec(), window=4, attacks=[attack])
        assert len(dataset.benign_windows()) + len(dataset.malicious_windows()) == dataset.num_windows
