"""Tests for repro.megabatch: per-tick batched scoring, the quantized
int8 tier, session eviction, and the hot-path scoring bugfixes.

The contracts enforced here:

- defaults are the seed path (no arena, no batching, no eviction);
- float64 megabatch scoring produces bit-identical AnomalyEvents to the
  seed per-session path on every attack scenario;
- the quantized tier's Table-2-style detection metrics stay within
  ``MegabatchSettings.quantized_metric_tol`` of the float64 path per
  attack scenario;
- a quiet short session is scored exactly once no matter how many times
  it was touched (single pending maturity check);
- per-session state is bounded: release- and idle-driven eviction drop
  every per-session structure;
- a raising score callback cannot drop other verdicts in a pool flush.
"""

import copy

import numpy as np
import pytest

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.core.mobiwatch import RRC_RELEASE_MSG, MobiWatchXApp
from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.hotpath.settings import HotpathSettings
from repro.megabatch import (
    MegabatchSettings,
    QuantizedLstmEngine,
    calibrate_windows,
)
from repro.megabatch.bench import (
    MEGABATCH_SPEEDUP_MIN,
    QUANTIZED_SPEEDUP_MIN,
    MegabatchBenchResult,
    violations,
)
from repro.ml.detector import AutoencoderDetector, LstmDetector
from repro.ml.metrics import DetectionMetrics
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.oran.e2ap import RicIndication
from repro.oran.e2sm_kpm import MOBIFLOW_RAN_FUNCTION_ID, MobiFlowKpmModel
from repro.oran.ric import NearRtRic
from repro.ran.core_network import AmfConfig
from repro.ran.links import InterfaceLink
from repro.ran.network import NetworkConfig
from repro.scale.pool import InferencePool
from repro.sim import Simulator
from repro.telemetry.mobiflow import MobiFlowRecord


# ---------------------------------------------------------------------------
# settings


class TestMegabatchSettings:
    def test_defaults_are_seed_path(self):
        settings = MegabatchSettings()
        assert not settings.enabled
        assert not settings.quantized
        assert not settings.batching_enabled
        assert not settings.eviction_enabled
        assert not settings.any_enabled
        assert XsecConfig().megabatch == settings

    def test_quantized_implies_batching(self):
        assert MegabatchSettings(quantized=True).batching_enabled
        assert MegabatchSettings(quantized=True).any_enabled

    def test_eviction_switches(self):
        assert MegabatchSettings(evict_on_release=True).eviction_enabled
        assert MegabatchSettings(evict_idle_s=3.0).eviction_enabled
        assert MegabatchSettings(evict_idle_s=3.0).any_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"state_dtype": "float64"},
            {"calibration": "kl"},
            {"calibration_percentile": 0.0},
            {"calibration_percentile": 101.0},
            {"evict_idle_s": -1.0},
            {"evict_sweep_s": 0.0},
            {"quantized_metric_tol": 0.0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MegabatchSettings(**kwargs)


# ---------------------------------------------------------------------------
# histogram bulk observation (the batched score-handling path)


class TestObserveMany:
    BUCKETS = (0.1, 0.5, 1.0, 5.0)

    def test_matches_sequential_observes(self):
        rng = np.random.default_rng(3)
        values = rng.random(500) * 6.0
        # Exercise the boundary placement explicitly: values exactly on a
        # bucket edge must land in the same bucket either way.
        values = np.concatenate([values, np.asarray(self.BUCKETS), [0.0, 7.0]])
        one = Histogram(buckets=self.BUCKETS)
        for value in values:
            one.observe(value)
        many = Histogram(buckets=self.BUCKETS)
        many.observe_many(values)
        assert many.count == one.count
        assert many.bucket_counts == one.bucket_counts
        assert many.min == one.min
        assert many.max == one.max
        # total is documented as equal up to summation order.
        assert many.total == pytest.approx(one.total, rel=1e-12)
        assert many.percentile(50) == one.percentile(50)

    def test_incremental_calls_accumulate(self):
        hist = Histogram(buckets=self.BUCKETS)
        hist.observe_many([0.05, 0.2])
        hist.observe(0.7)
        hist.observe_many([2.0])
        assert hist.count == 4
        assert hist.bucket_counts == [1, 1, 1, 1, 0]

    def test_empty_is_noop(self):
        hist = Histogram(buckets=self.BUCKETS)
        hist.observe_many([])
        assert hist.count == 0
        assert hist.min is None


# ---------------------------------------------------------------------------
# quantized engine units


def _tiny_lstm(seed=5, window=4, dim=6):
    rng = np.random.default_rng(seed)
    windows = rng.random((60, window * dim)) * 0.2
    detector = LstmDetector(window=window, feature_dim=dim, hidden_dim=8, seed=seed)
    detector.fit(windows, epochs=2)
    return detector, windows


class TestQuantizedEngine:
    def test_requires_lstm(self):
        detector = AutoencoderDetector(window=4, feature_dim=6, seed=0)
        calibration = calibrate_windows(np.random.default_rng(0).random((4, 24)))
        with pytest.raises(TypeError):
            QuantizedLstmEngine(detector, calibration)

    def test_calibration_minmax_and_percentile(self):
        windows = np.zeros((3, 8))
        windows[0, 0] = 2.54
        minmax = calibrate_windows(windows)
        assert minmax.method == "minmax"
        assert minmax.input_scale == pytest.approx(2.54 / 127.0)
        pct = calibrate_windows(
            windows, MegabatchSettings(calibration="percentile", calibration_percentile=50.0)
        )
        # The median of |x| excludes the outlier: a smaller scale.
        assert pct.input_scale < minmax.input_scale

    def test_live_steps_match_offline_replay(self):
        detector, windows = _tiny_lstm()
        calibration = calibrate_windows(windows)
        engine = QuantizedLstmEngine(detector, calibration)
        rows = windows[0].reshape(detector.window, detector.feature_dim)
        for row in rows:
            engine.megastep([9], row.reshape(1, -1))
        live = engine.window_score(9)
        offline = float(engine.record_errors_for_rows(rows).max())
        assert live == pytest.approx(offline, rel=1e-6)
        assert np.isfinite(live)

    def test_release_frees_slot(self):
        detector, windows = _tiny_lstm()
        engine = QuantizedLstmEngine(detector, calibrate_windows(windows))
        engine.megastep([1, 2], windows[:2, : detector.feature_dim])
        assert engine.session_count(1) == 1
        assert engine.release(1)
        assert not engine.release(1)
        assert engine.sessions == 1
        assert engine.session_count(1) == 0
        with pytest.raises(KeyError):
            engine.window_score(1)

    def test_fit_populates_calibration_and_threshold(self):
        detector, windows = _tiny_lstm(seed=11)
        detector.attach_megabatch(MegabatchSettings(quantized=True))
        detector.fit(windows, epochs=2)
        assert detector.calibration is not None
        assert detector.quantized_threshold is not None
        assert detector.quantized_threshold.threshold is not None


# ---------------------------------------------------------------------------
# unit harness (mirrors tests/test_core_units.py)


def make_ric(seed=0):
    sim = Simulator(seed=seed)
    e2 = InterfaceLink(sim, "E2")
    e2.connect(a_handler=lambda m: None, b_handler=lambda m: None)
    return sim, NearRtRic(sim, e2)


def record(t, msg, session=1, rnti=0x10, **kwargs):
    defaults = dict(protocol="RRC", direction="UL")
    defaults.update(kwargs)
    return MobiFlowRecord(
        timestamp=t, msg=msg, session_id=session, rnti=rnti, **defaults
    )


def indication(records, request_id=1, seq=1):
    header, message = MobiFlowKpmModel.encode_indication(records)
    return RicIndication(
        ric_request_id=request_id,
        ran_function_id=MOBIFLOW_RAN_FUNCTION_ID,
        sequence_number=seq,
        indication_header=header,
        indication_message=message,
    )


def trained_detector(config, seed=0):
    rng = np.random.default_rng(seed)
    windows = rng.random((80, config.window * config.spec.dim)) * 0.1
    detector = AutoencoderDetector(
        window=config.window, feature_dim=config.spec.dim, seed=seed
    )
    detector.fit(windows, epochs=2)
    return detector


class TestMaturityTimer:
    """Satellite bugfix: one pending maturity check per short session."""

    def test_quiet_short_session_scored_once_under_repeated_touches(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        # Four separate touches, all leaving the session short (< window).
        for i in range(4):
            watch.on_indication(
                indication([record(0.05 * i, "RRCSetupRequest")], seq=i + 1)
            )
            # The fix: every touch re-arms the same single check.
            assert len(watch._pending_maturity) == 1
        sim.run(until=5.0)
        assert watch.windows_scored == 1
        assert watch._pending_maturity == {}

    def test_multiple_records_per_indication_arm_one_check(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        batch = [record(0.0, "RRCSetupRequest"), record(0.05, "RRCSetup")]
        watch.on_indication(indication(batch))
        assert len(watch._pending_maturity) == 1
        sim.run(until=5.0)
        assert watch.windows_scored == 1

    def test_progressed_session_still_skips_stale_check(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        sim.schedule(
            0.4,
            lambda: watch.on_indication(indication([record(0.4, "RRCSetup")], seq=2)),
        )
        sim.run(until=5.0)
        assert watch.windows_scored == 1


class TestEviction:
    """Satellite bugfix: per-session state is bounded, not grow-forever."""

    @staticmethod
    def _watch(megabatch, seed=0):
        config = XsecConfig(megabatch=megabatch)
        sim, ric = make_ric(seed)
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        return sim, watch

    def test_release_scores_final_window_and_drops_state(self):
        sim, watch = self._watch(MegabatchSettings(evict_on_release=True))
        batch = [record(0.1 * i, "RRCSetup") for i in range(5)]
        batch.append(record(0.6, RRC_RELEASE_MSG))
        watch.on_indication(indication(batch))
        # 6 records = a full window: scored in the tick, then evicted.
        assert watch.windows_scored == 1
        assert watch.sessions_evicted == 1
        assert watch._session_records == {}
        assert watch._alerted_counts == {}
        assert watch._pending_maturity == {}

    def test_released_short_session_scored_immediately(self):
        sim, watch = self._watch(MegabatchSettings(evict_on_release=True))
        batch = [record(0.0, "RRCSetupRequest"), record(0.1, RRC_RELEASE_MSG)]
        watch.on_indication(indication(batch))
        # No maturity wait: the release closed the session, so its padded
        # final window was evaluated right away and the state dropped.
        assert watch.windows_scored == 1
        assert watch.sessions_evicted == 1
        assert watch._pending_maturity == {}
        assert watch._session_records == {}

    def test_idle_sweep_evicts_stale_sessions(self):
        sim, watch = self._watch(
            MegabatchSettings(evict_idle_s=1.0, evict_sweep_s=0.5)
        )
        batch = [record(0.1 * i, "RRCSetup", session=7) for i in range(6)]
        watch.on_indication(indication(batch))
        assert 7 in watch._session_records
        # Pull the sim clock past the idle horizon, then run the sweep.
        sim.schedule(2.0, lambda: None)
        sim.run(until=3.0)
        watch._evict_sweep()
        assert 7 not in watch._session_records
        assert 7 not in watch._last_touch
        assert watch.sessions_evicted == 1

    def test_evicted_counter_exported(self):
        sim, watch = self._watch(MegabatchSettings(evict_on_release=True))
        watch.on_indication(
            indication([record(0.0, "RRCSetup"), record(0.1, RRC_RELEASE_MSG)])
        )
        counter = sim.obs.metrics.counter("mobiwatch.sessions_evicted_total")
        assert int(counter.value) == 1

    def test_seed_config_never_evicts(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        batch = [record(0.1 * i, "RRCSetup") for i in range(5)]
        batch.append(record(0.6, RRC_RELEASE_MSG))
        watch.on_indication(indication(batch))
        sim.run(until=5.0)
        assert watch.sessions_evicted == 0
        assert 1 in watch._session_records


class TestPoolCallbackErrors:
    """Satellite bugfix: a raising callback cannot drop other verdicts."""

    @staticmethod
    def row_sums(matrix):
        return matrix.sum(axis=1)

    def test_all_callbacks_delivered_and_error_reraised(self):
        metrics = MetricsRegistry()
        pool = InferencePool(self.row_sums, batch_windows=100, metrics=metrics)
        seen = []

        def bad(score, done):
            raise RuntimeError("observer broke")

        pool.submit(1, np.full(2, 1.0), lambda s, t: seen.append(s))
        pool.submit(2, np.full(2, 2.0), bad)
        pool.submit(3, np.full(2, 3.0), lambda s, t: seen.append(s))
        with pytest.raises(RuntimeError, match="observer broke"):
            pool.flush()
        # The two healthy callbacks both ran despite the middle one raising.
        assert seen == [2.0, 6.0]
        assert pool.pending == 0
        assert pool.windows_scored == 3
        assert pool.callback_errors == 1
        assert pool.stats()["callback_errors"] == 1
        counter = metrics.counter("pool.callback_errors_total", labels={"pool": "pool"})
        assert int(counter.value) == 1

    def test_failure_in_one_worker_does_not_skip_others(self):
        pool = InferencePool(self.row_sums, workers=3, batch_windows=100)
        delivered = []
        for i in range(12):
            callback = (
                (lambda s, t: (_ for _ in ()).throw(RuntimeError("boom")))
                if i == 0
                else (lambda s, t: delivered.append(s))
            )
            pool.submit(i, np.full(2, float(i)), callback)
        with pytest.raises(RuntimeError):
            pool.flush()
        assert pool.windows_scored == 12
        assert len(delivered) == 11
        assert pool.callback_errors == 1


# ---------------------------------------------------------------------------
# live pipeline equality (the tentpole's float64 contract)


@pytest.fixture(scope="module")
def benign_capture():
    return generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )


@pytest.fixture(scope="module")
def benign_windows(benign_capture):
    config = XsecConfig()
    return benign_capture.labeled(config.spec, config.window, "benign").windowed.windows


@pytest.fixture(scope="module")
def trained_lstm(benign_windows):
    config = XsecConfig(detector="lstm", train_epochs=6)
    detector = build_detector(config)
    detector.fit(np.asarray(benign_windows), epochs=6, lr=config.train_lr)
    return detector


@pytest.fixture(scope="module")
def trained_autoencoder(benign_windows):
    config = XsecConfig(detector="autoencoder", train_epochs=6)
    detector = build_detector(config)
    detector.fit(np.asarray(benign_windows), epochs=6, lr=config.train_lr)
    return detector


def _uplink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


def _downlink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


# name -> (attack factory taking the live network, extra NetworkConfig kwargs)
ATTACK_SCENARIOS = {
    "bts_dos": (
        lambda net: BtsDosAttack(net, start_time=3.0, connections=8, interval_s=0.08),
        {},
    ),
    "blind_dos": (
        lambda net: BlindDosAttack(net, victim=net.ues[0], start_time=3.0, replays=5),
        {},
    ),
    "uplink_id_extraction": (_uplink_extraction, {}),
    "downlink_id_extraction": (_downlink_extraction, {}),
    "null_cipher": (
        lambda net: NullCipherAttack(net, start_time=3.0),
        {"amf": AmfConfig(allow_null_algorithms=True)},
    ),
}


def run_live(detector, megabatch=None, hotpath=None, attack=None, seed=77, until=20.0, net_kwargs=None):
    """One live pipeline run with a pre-trained detector copy deployed."""
    config = XsecConfig(
        detector=detector.name,
        train_epochs=6,
        hotpath=hotpath or HotpathSettings(),
        megabatch=megabatch or MegabatchSettings(),
    )
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=seed, **(net_kwargs or {})))
    xsec.deploy_detector(copy.deepcopy(detector))
    for profile in ("pixel5", "oai_ue"):
        ue = xsec.net.add_ue(profile)
        xsec.net.sim.schedule(0.5, ue.start_session)
    if attack is not None:
        attack(xsec.net).arm()
    xsec.run(until=until)
    return xsec


def event_tuples(xsec):
    return [
        (
            e.detected_at,
            e.session_id,
            e.rnti,
            e.s_tmsi,
            e.score,
            e.threshold,
            e.record_indices,
            e.newest_record_ts,
        )
        for e in xsec.mobiwatch.anomalies
    ]


class TestDefaultsAreSeedPath:
    def test_default_config_keeps_seed_components(self, trained_autoencoder):
        xsec = SixGXSec(XsecConfig())
        assert xsec.mobiwatch._arena is None
        xsec.deploy_detector(copy.deepcopy(trained_autoencoder))
        assert xsec.mobiwatch._quantized is None
        assert xsec.mobiwatch._mb_gather is False
        assert xsec.mobiwatch._track_touch is False
        assert xsec.mobiwatch._scoring_path == "seed"

    def test_megabatch_enables_arena_and_gather(self, trained_autoencoder):
        xsec = SixGXSec(XsecConfig(megabatch=MegabatchSettings(enabled=True)))
        assert xsec.mobiwatch._arena is not None
        xsec.deploy_detector(copy.deepcopy(trained_autoencoder))
        assert xsec.mobiwatch._mb_gather is True
        assert "megabatch" in xsec.mobiwatch._scoring_path

    def test_quantized_needs_calibrated_lstm(self, trained_lstm):
        # The fixture LSTM was fitted without megabatch attached: no
        # calibration pass ran, so the quantized tier degrades to the
        # float gather path (with a log line), never a crash.
        xsec = SixGXSec(XsecConfig(detector="lstm", megabatch=MegabatchSettings(quantized=True)))
        xsec.deploy_detector(copy.deepcopy(trained_lstm))
        assert xsec.mobiwatch._quantized is None
        assert xsec.mobiwatch._mb_gather is True


class TestMegabatchScenarioEquality:
    """The float64 contract: megabatch AnomalyEvents == seed, per attack."""

    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_megabatch_f64_bit_identical_to_seed(self, trained_lstm, scenario):
        factory, net_kwargs = ATTACK_SCENARIOS[scenario]
        seed_run = run_live(
            trained_lstm, attack=factory, net_kwargs=net_kwargs
        )
        mega = run_live(
            trained_lstm,
            megabatch=MegabatchSettings(enabled=True),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        assert mega.mobiwatch._mb_gather is True
        assert mega.mobiwatch.records_seen == seed_run.mobiwatch.records_seen
        assert mega.mobiwatch.windows_scored == seed_run.mobiwatch.windows_scored
        assert mega.mobiwatch.windows_scored > 0
        assert event_tuples(mega) == event_tuples(seed_run)

    def test_megabatch_f32_no_threshold_flips(self, trained_lstm):
        factory, net_kwargs = ATTACK_SCENARIOS["bts_dos"]
        seed_run = run_live(trained_lstm, attack=factory, net_kwargs=net_kwargs)
        f32 = run_live(
            trained_lstm,
            megabatch=MegabatchSettings(enabled=True),
            hotpath=HotpathSettings(compiled=True, dtype="float32"),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        ref_events = event_tuples(seed_run)
        f32_events = event_tuples(f32)
        # Same flagged windows in the same order, scores within the
        # documented float32 tolerance.
        assert [e[:4] + (e[6], e[7]) for e in f32_events] == [
            e[:4] + (e[6], e[7]) for e in ref_events
        ]
        settings = HotpathSettings()
        for ref, fast in zip(ref_events, f32_events):
            assert np.isclose(ref[4], fast[4], rtol=settings.float32_rtol, atol=1e-6)


class TestQuantizedLive:
    def test_quantized_tier_scores_live_traffic(self, benign_windows):
        config = XsecConfig(
            detector="lstm",
            train_epochs=6,
            megabatch=MegabatchSettings(quantized=True, evict_on_release=True),
        )
        detector = build_detector(config)
        detector.fit(np.asarray(benign_windows), epochs=6, lr=config.train_lr)
        assert detector.calibration is not None
        xsec = SixGXSec(config, network_config=NetworkConfig(seed=77))
        xsec.deploy_detector(detector)
        assert xsec.mobiwatch._quantized is not None
        assert xsec.mobiwatch._scoring_path.startswith("quantized-int8-")
        for profile in ("pixel5", "oai_ue"):
            ue = xsec.net.add_ue(profile)
            xsec.net.sim.schedule(0.5, ue.start_session)
        xsec.run(until=20.0)
        assert xsec.mobiwatch.windows_scored > 0
        assert xsec.mobiwatch.sessions_evicted > 0
        # Eviction bounded the carried state to the still-live sessions.
        engine = xsec.mobiwatch._quantized
        assert engine.sessions == len(xsec.mobiwatch._session_records)


# ---------------------------------------------------------------------------
# quantized accuracy contract (Table-2 metrics per attack scenario)


# One small capture per scenario: the benign background plus instances of
# a single attack type (the Table 2 methodology, narrowed per scenario).
SCENARIO_CAPTURES = {
    "bts_dos": dict(bts_dos_instances=2),
    "blind_dos": dict(blind_dos_instances=2),
    "uplink_id_extraction": dict(uplink_id_instances=2),
    "downlink_id_extraction": dict(downlink_id_instances=2),
    "null_cipher": dict(null_cipher_instances=2),
}


@pytest.fixture(scope="module")
def quantized_lstm(benign_capture):
    """An LSTM fitted with the megabatch calibration pass attached."""
    config = XsecConfig()
    detector = LstmDetector(
        window=config.window, feature_dim=config.spec.dim, percentile=97.5, seed=7
    )
    detector.attach_megabatch(MegabatchSettings(quantized=True))
    benign = benign_capture.labeled(config.spec, config.window, "benign")
    detector.fit_with_session_context(benign.windowed, epochs=6, lr=2e-3)
    assert detector.calibration is not None
    assert detector.quantized_threshold is not None
    return detector


def _metric_values(metrics: DetectionMetrics) -> dict:
    return {
        "accuracy": metrics.accuracy,
        "precision": metrics.precision,
        "recall": metrics.recall,
        "f1": metrics.f1,
    }


class TestQuantizedAccuracyContract:
    @pytest.mark.parametrize(
        "scenario", sorted(SCENARIO_CAPTURES), ids=sorted(SCENARIO_CAPTURES)
    )
    def test_table2_metrics_within_tolerance(self, quantized_lstm, scenario):
        settings = MegabatchSettings(quantized=True)
        config = XsecConfig()
        instances = dict(
            bts_dos_instances=0,
            blind_dos_instances=0,
            uplink_id_instances=0,
            downlink_id_instances=0,
            null_cipher_instances=0,
        )
        instances.update(SCENARIO_CAPTURES[scenario])
        capture = generate_attack_dataset(
            AttackDatasetConfig(
                duration_s=60.0,
                background_ue_mix=(("pixel5", 1), ("oai_ue", 1)),
                **instances,
            )
        )
        attack = capture.labeled(config.spec, config.window, "attack")
        labels = attack.window_labels
        assert labels.any(), "scenario capture produced no positive windows"

        detector = quantized_lstm
        f64_scores = detector.session_window_scores(attack.windowed)
        f64_preds = detector.threshold.classify(f64_scores)
        engine = QuantizedLstmEngine(detector, detector.calibration, settings)
        q_scores = engine.session_window_scores(attack.windowed)
        q_preds = detector.quantized_threshold.classify(q_scores)

        f64_metrics = _metric_values(DetectionMetrics.from_labels(labels, f64_preds))
        q_metrics = _metric_values(DetectionMetrics.from_labels(labels, q_preds))
        for name in f64_metrics:
            ref, quant = f64_metrics[name], q_metrics[name]
            if ref is None or quant is None:
                assert ref == quant, f"{scenario}/{name}: one side undefined"
                continue
            assert abs(ref - quant) <= settings.quantized_metric_tol, (
                f"{scenario}/{name}: float64 {ref:.4f} vs quantized {quant:.4f} "
                f"exceeds tol {settings.quantized_metric_tol}"
            )


# ---------------------------------------------------------------------------
# bench gating logic


def _passing_result():
    return MegabatchBenchResult(
        tiers={
            "lstm": {
                "pooled_sessions_per_s": 10_000.0,
                "megabatch_speedup": MEGABATCH_SPEEDUP_MIN + 1.0,
                "quantized_speedup": QUANTIZED_SPEEDUP_MIN + 1.0,
            },
            "autoencoder": {
                "pooled_sessions_per_s": 20_000.0,
                "megabatch_speedup": MEGABATCH_SPEEDUP_MIN + 1.0,
            },
        },
        equality={
            "megabatch_f64_exact_lstm": True,
            "megabatch_f32_close_lstm": True,
            "quantized_finite": True,
            "quantized_decision_agreement": 0.95,
        },
        meta={"sessions": 1024},
    )


class TestBenchGates:
    def test_passing_result_has_no_violations(self):
        assert violations(_passing_result()) == []

    def test_speedup_floor_enforced(self):
        result = _passing_result()
        result.tiers["lstm"]["megabatch_speedup"] = MEGABATCH_SPEEDUP_MIN - 0.5
        assert any("below floor" in v for v in violations(result))

    def test_quantized_floor_enforced(self):
        result = _passing_result()
        result.tiers["lstm"]["quantized_speedup"] = QUANTIZED_SPEEDUP_MIN - 0.5
        assert any("quantized" in v for v in violations(result))

    def test_equality_break_is_fatal(self):
        result = _passing_result()
        result.equality["megabatch_f64_exact_lstm"] = False
        assert any("equality contract" in v for v in violations(result))

    def test_agreement_ratio_is_informational_not_gated(self):
        result = _passing_result()
        result.equality["quantized_decision_agreement"] = 0.1
        assert violations(result) == []

    def test_baseline_regression_detected(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        baseline["tiers"]["lstm"]["megabatch_speedup"] = 100.0
        assert any("regressed" in v for v in violations(result, baseline))

    def test_baseline_within_slack_passes(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        assert violations(result, baseline) == []
