"""Unit tests for the MobiWatch and LLM-analyzer xApps in isolation."""

import numpy as np
import pytest

from repro.core.config import XsecConfig
from repro.core.llm_analyzer import LlmAnalyzerXApp
from repro.core.mobiwatch import XSEC_ANOMALY_MTYPE, AnomalyEvent, MobiWatchXApp
from repro.ml import AutoencoderDetector
from repro.oran.e2ap import RicIndication
from repro.oran.e2sm_kpm import MOBIFLOW_RAN_FUNCTION_ID, MobiFlowKpmModel
from repro.oran.ric import NearRtRic
from repro.ran.links import InterfaceLink
from repro.sim import Simulator
from repro.telemetry.mobiflow import MobiFlowRecord


def make_ric(seed=0):
    sim = Simulator(seed=seed)
    e2 = InterfaceLink(sim, "E2")
    e2.connect(a_handler=lambda m: None, b_handler=lambda m: None)
    return sim, NearRtRic(sim, e2)


def record(t, msg, session=1, rnti=0x10, **kwargs):
    defaults = dict(protocol="RRC", direction="UL")
    defaults.update(kwargs)
    return MobiFlowRecord(
        timestamp=t, msg=msg, session_id=session, rnti=rnti, **defaults
    )


def indication(records, request_id=1, seq=1):
    header, message = MobiFlowKpmModel.encode_indication(records)
    return RicIndication(
        ric_request_id=request_id,
        ran_function_id=MOBIFLOW_RAN_FUNCTION_ID,
        sequence_number=seq,
        indication_header=header,
        indication_message=message,
    )


def trained_detector(config, seed=0):
    rng = np.random.default_rng(seed)
    windows = rng.random((80, config.window * config.spec.dim)) * 0.1
    detector = AutoencoderDetector(
        window=config.window, feature_dim=config.spec.dim, seed=seed
    )
    detector.fit(windows, epochs=2)
    return detector


class TestMobiWatchUnit:
    def test_accumulates_without_detector(self):
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, XsecConfig())
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        assert watch.records_seen == 1
        assert watch.windows_scored == 0
        assert watch.anomalies == []

    def test_out_of_order_batches_clamped(self):
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, XsecConfig())
        watch.on_indication(indication([record(5.0, "RRCSetup")]))
        watch.on_indication(indication([record(4.0, "RRCSetupComplete")]))
        times = [r.timestamp for r in watch.series]
        assert times == sorted(times)

    def test_short_session_scored_after_maturation(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        # In-flight short sessions are not scored immediately ...
        assert watch.windows_scored == 0
        sim.run(until=2.0)
        # ... but once quiet, the padded window is evaluated.
        assert watch.windows_scored == 1

    def test_maturation_skipped_when_session_progresses(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        watch.deploy_detector(trained_detector(config))
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))

        def feed_more():
            watch.on_indication(
                indication([record(0.4, "RRCSetup")], seq=2)
            )

        sim.schedule(0.4, feed_more)
        sim.run(until=3.0)
        # The first maturity check (count=1) was invalidated by progress;
        # only the final state (count=2) was scored.
        assert watch.windows_scored == 1

    def test_one_alert_per_session_per_record_count(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        detector = trained_detector(config)
        detector.threshold.threshold = -1.0  # everything is anomalous
        watch.deploy_detector(detector)
        batch = [record(0.0, "RRCSetupRequest"), record(0.1, "RRCSetup")]
        watch.on_indication(indication(batch))
        sim.run(until=2.0)
        first = len(watch.anomalies)
        assert first == 1
        watch.on_indication(indication([record(0.2, "RRCSetupComplete")], seq=2))
        sim.run(until=4.0)
        # New evidence (a third record) re-arms exactly one more alert.
        assert len(watch.anomalies) == first + 1

    def test_sdl_record_mirror(self):
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, XsecConfig())
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        keys = ric.sdl.keys("xsec.mobiflow")
        assert len(keys) == 1
        stored = ric.sdl.get("xsec.mobiflow", keys[0])
        assert stored["msg"] == "RRCSetupRequest"

    def test_deploy_unfitted_rejected(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        with pytest.raises(ValueError):
            watch.deploy_detector(
                AutoencoderDetector(window=config.window, feature_dim=config.spec.dim)
            )

    def test_policy_without_training_scores_is_ignored(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        detector = trained_detector(config)
        detector.training_scores = None
        watch.deploy_detector(detector)
        before = detector.threshold.threshold
        watch.on_policy(20008, {"threshold_percentile": 50.0, "window_size": 6})
        assert detector.threshold.threshold == before

    def test_context_for_returns_window_plus_history(self):
        config = XsecConfig()
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        batch = [record(0.1 * i, "MeasurementReport") for i in range(10)]
        watch.on_indication(indication(batch))
        event = AnomalyEvent(
            detected_at=1.0,
            session_id=1,
            rnti=0x10,
            s_tmsi=None,
            score=1.0,
            threshold=0.5,
            record_indices=(6, 7, 8, 9),
        )
        context = watch.context_for(event, max_records=5)
        assert len(context) == 5
        assert context[-1] is watch.series[9]


class TestAnalyzerUnit:
    def _stack(self):
        config = XsecConfig(llm_session_cooldown_s=10.0)
        sim, ric = make_ric()
        watch = MobiWatchXApp(ric, config)
        analyzer = LlmAnalyzerXApp(ric, watch, config=config)
        watch.start_called = True
        analyzer.start()
        return sim, ric, watch, analyzer

    def _anomaly(self, session=1, ts=0.0):
        return AnomalyEvent(
            detected_at=ts,
            session_id=session,
            rnti=0x10,
            s_tmsi=None,
            score=1.0,
            threshold=0.5,
            record_indices=(0,),
            newest_record_ts=ts,
        )

    def test_cooldown_suppresses_repeat_queries(self):
        sim, ric, watch, analyzer = self._stack()
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        analyzer._on_anomaly(self._anomaly(session=1))
        analyzer._on_anomaly(self._anomaly(session=1))
        assert analyzer.queries_sent == 1
        assert analyzer.queries_suppressed == 1

    def test_different_sessions_not_suppressed(self):
        sim, ric, watch, analyzer = self._stack()
        watch.on_indication(
            indication(
                [record(0.0, "RRCSetupRequest", session=1), record(0.1, "RRCSetup", session=2)]
            )
        )
        analyzer._on_anomaly(self._anomaly(session=1))
        analyzer._on_anomaly(self._anomaly(session=2))
        assert analyzer.queries_sent == 2

    def test_verdict_lands_after_latency(self):
        sim, ric, watch, analyzer = self._stack()
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        analyzer._on_anomaly(self._anomaly(session=1))
        assert analyzer.verdicts == []  # the API round trip is in flight
        sim.run(until=30.0)
        assert len(analyzer.verdicts) == 1
        assert analyzer.verdicts[0].completed_at > 0.3

    def test_verdicts_mirrored_to_sdl(self):
        sim, ric, watch, analyzer = self._stack()
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        analyzer._on_anomaly(self._anomaly(session=1))
        sim.run(until=30.0)
        assert len(ric.sdl.keys("xsec.verdicts")) == 1

    def test_rmr_routing_delivers_anomaly_events(self):
        sim, ric, watch, analyzer = self._stack()
        watch.on_indication(indication([record(0.0, "RRCSetupRequest")]))
        ric.rmr.send(XSEC_ANOMALY_MTYPE, -1, self._anomaly(session=3))
        sim.run(until=30.0)
        assert analyzer.queries_sent == 1
