"""Tests for the E2 POLICY primitive: fast-path rules at the E2 node."""

import pytest

from repro.attacks import BtsDosAttack
from repro.oran import NearRtRic, RicAgent, XApp
from repro.oran.e2ap import ActionType
from repro.oran.e2sm_kpm import (
    MOBIFLOW_RAN_FUNCTION_ID,
    AccessRatePolicy,
    MobiFlowKpmModel,
)
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.links import InterfaceLink


class PolicyXApp(XApp):
    """Installs an access-rate policy at the E2 node."""

    def start(self):
        super().start()
        self.responses = []
        trigger = MobiFlowKpmModel.encode_event_trigger(
            AccessRatePolicy(max_setups=3, window_s=1.0).to_trigger()
        )
        self.policy_sub = self.subscribe(
            MOBIFLOW_RAN_FUNCTION_ID, trigger, ActionType.POLICY
        )

    def on_subscription_response(self, response):
        self.responses.append(response)


def build(seed=101):
    net = FiveGNetwork(NetworkConfig(seed=seed))
    e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
    agent = RicAgent(net, e2)
    ric = NearRtRic(net.sim, e2)
    e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
    xapp = PolicyXApp(ric, "policy-xapp")
    agent.start()
    ric.start()
    return net, agent, ric, xapp


class TestPolicyInstall:
    def test_policy_subscription_admitted_and_installed(self):
        net, agent, ric, xapp = build()
        net.run(until=1.0)
        assert xapp.responses and xapp.responses[0].admitted
        assert net.du._rate_limit == (3, 1.0)
        assert xapp.policy_sub in agent.policies

    def test_policy_enforced_without_ric_round_trip(self):
        """The whole point of the policy primitive: enforcement happens at
        the node with zero per-event E2 traffic."""
        net, agent, ric, xapp = build(seed=102)
        net.run(until=1.0)
        carried_before = net.sim.events_processed
        flood = BtsDosAttack(net, start_time=1.5, connections=15, interval_s=0.05)
        flood.arm()
        controls_before = agent.controls_executed
        net.run(until=20.0)
        assert net.du.setup_requests_rate_limited > 0
        # No control requests were needed; the rule ran locally.
        assert agent.controls_executed == controls_before

    def test_malformed_policy_rejected(self):
        net = FiveGNetwork(NetworkConfig(seed=103))
        e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
        agent = RicAgent(net, e2)
        ric = NearRtRic(net.sim, e2)
        e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)

        responses = []

        class BadPolicy(XApp):
            def start(self):
                super().start()
                trigger = MobiFlowKpmModel.encode_event_trigger({"style": "bogus"})
                self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger, ActionType.POLICY)

            def on_subscription_response(self, response):
                responses.append(response)

        BadPolicy(ric, "bad")
        agent.start()
        ric.start()
        net.run(until=1.0)
        assert responses and not responses[0].admitted
        assert net.du._rate_limit is None


class TestPolicyDelete:
    def test_delete_clears_node_side_rule(self):
        net, agent, ric, xapp = build(seed=104)
        net.run(until=1.0)
        assert net.du._rate_limit is not None
        assert ric.e2term.delete_subscription(xapp.policy_sub) is True
        net.run(until=2.0)
        assert net.du._rate_limit is None
        assert xapp.policy_sub not in agent.policies

    def test_delete_unknown_subscription_returns_false(self):
        net, agent, ric, xapp = build(seed=105)
        assert ric.e2term.delete_subscription(999) is False

    def test_report_subscription_unaffected_by_policy_delete(self):
        net, agent, ric, xapp = build(seed=106)

        received = []

        class Reporter(XApp):
            def start(self):
                super().start()
                trigger = MobiFlowKpmModel.encode_event_trigger(
                    __import__("repro.oran.e2sm_kpm", fromlist=["MobiFlowReportStyle"])
                    .MobiFlowReportStyle(0.1)
                    .to_trigger()
                )
                self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger)

            def on_indication(self, indication):
                received.append(indication)

        Reporter(ric, "reporter")
        ric.start()
        net.run(until=1.0)
        ric.e2term.delete_subscription(xapp.policy_sub)
        ue = net.add_ue("pixel5")
        net.sim.schedule(1.5, ue.start_session)
        net.run(until=20.0)
        assert received, "telemetry reporting must survive the policy delete"
