"""Tests for the control-message base machinery and RRC/NAS definitions."""

import pytest

from repro.ran import nas, rrc
from repro.ran.messages import Direction, Message, MessageError, Protocol
from repro.ran.security import CipherAlg, IntegrityAlg


def _instantiate_all_registered():
    """One default instance of every registered message class."""
    return [Message.lookup(name)() for name in Message.registered_names()]


class TestRegistry:
    def test_all_expected_messages_registered(self):
        names = Message.registered_names()
        for expected in (
            "RRCSetupRequest",
            "RRCSetup",
            "RRCSetupComplete",
            "RegistrationRequest",
            "AuthenticationRequest",
            "AuthenticationResponse",
            "IdentityRequest",
            "IdentityResponse",
            "NASSecurityModeCommand",
            "RegistrationAccept",
            "F1InitialULRRCMessageTransfer",
            "NGInitialUEMessage",
        ):
            assert expected in names

    def test_lookup_unknown_raises(self):
        with pytest.raises(MessageError):
            Message.lookup("NotAMessage")

    def test_duplicate_name_rejected(self):
        with pytest.raises(MessageError):

            class Duplicate(Message):
                NAME = "RRCSetupRequest"


class TestWireRoundtrip:
    def test_every_registered_message_roundtrips_with_defaults(self):
        for message in _instantiate_all_registered():
            decoded = Message.from_wire(message.to_wire())
            assert type(decoded) is type(message)
            assert decoded.fields() == message.fields()

    def test_enum_fields_rehydrate(self):
        original = rrc.RrcSetupRequest(
            establishment_cause=rrc.EstablishmentCause.MO_DATA,
            ue_identity=0x1234,
            identity_is_tmsi=True,
        )
        decoded = Message.from_wire(original.to_wire())
        assert decoded.establishment_cause is rrc.EstablishmentCause.MO_DATA
        assert decoded.ue_identity == 0x1234
        assert decoded.identity_is_tmsi is True

    def test_security_mode_command_algs_roundtrip(self):
        original = nas.NasSecurityModeCommand(
            cipher_alg=CipherAlg.NEA0, integrity_alg=IntegrityAlg.NIA0
        )
        decoded = Message.from_wire(original.to_wire())
        assert decoded.cipher_alg is CipherAlg.NEA0
        assert decoded.integrity_alg is IntegrityAlg.NIA0

    def test_nested_nas_pdu_roundtrip(self):
        inner = nas.RegistrationRequest(suci="suci-001-01-abc")
        outer = rrc.RrcSetupComplete(nas_pdu=inner.to_wire())
        decoded_outer = Message.from_wire(outer.to_wire())
        decoded_inner = Message.from_wire(decoded_outer.nas_pdu)
        assert isinstance(decoded_inner, nas.RegistrationRequest)
        assert decoded_inner.suci == "suci-001-01-abc"

    def test_from_wire_rejects_garbage(self):
        with pytest.raises(MessageError):
            Message.from_wire(b"\x00garbage")

    def test_from_wire_rejects_unknown_message(self):
        from repro import wire

        with pytest.raises(MessageError):
            Message.from_wire(wire.encode({"msg": "Bogus", "ie": {}}))

    def test_from_wire_rejects_missing_ie(self):
        from repro import wire

        with pytest.raises(MessageError):
            Message.from_wire(wire.encode({"msg": "RRCSetup", "ie": {}}))


class TestMetadata:
    def test_protocol_and_direction_attributes(self):
        assert rrc.RrcSetupRequest.PROTOCOL is Protocol.RRC
        assert rrc.RrcSetupRequest.DIRECTION is Direction.UPLINK
        assert nas.AuthenticationRequest.PROTOCOL is Protocol.NAS
        assert nas.AuthenticationRequest.DIRECTION is Direction.DOWNLINK

    def test_name_property(self):
        assert rrc.RrcSetup().name == "RRCSetup"
        assert nas.RegistrationAccept().name == "RegistrationAccept"

    def test_fields_converts_enums_to_values(self):
        fields = rrc.RrcSetupRequest(
            establishment_cause=rrc.EstablishmentCause.MO_SMS
        ).fields()
        assert fields["establishment_cause"] == "mo-SMS"
