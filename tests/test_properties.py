"""Property-based tests (hypothesis) over the core data paths."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.prompt import format_records, parse_data_section
from repro.oran.zerotrust import E2Authenticator
from repro.telemetry.encoder import decode_batch, decode_record, encode_batch, encode_record
from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

MESSAGE_NAMES = st.sampled_from(
    [
        "RRCSetupRequest",
        "RRCSetup",
        "RegistrationRequest",
        "AuthenticationRequest",
        "AuthenticationResponse",
        "NASSecurityModeCommand",
        "RegistrationAccept",
        "MeasurementReport",
        "RRCRelease",
        "SomethingUnknown",
    ]
)

records_strategy = st.builds(
    MobiFlowRecord,
    timestamp=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    msg=MESSAGE_NAMES,
    protocol=st.sampled_from(["RRC", "NAS"]),
    direction=st.sampled_from(["UL", "DL"]),
    session_id=st.integers(min_value=0, max_value=50),
    rnti=st.one_of(st.none(), st.integers(min_value=1, max_value=0xFFEF)),
    s_tmsi=st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
    suci=st.one_of(st.none(), st.from_regex(r"suci-[0-9a-f]{1,12}", fullmatch=True)),
    supi=st.one_of(st.none(), st.from_regex(r"imsi-[0-9]{14}", fullmatch=True)),
    cipher_alg=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    integrity_alg=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    establishment_cause=st.one_of(st.none(), st.sampled_from(["mo-Data", "mt-Access"])),
)


def sorted_series(records):
    ordered = sorted(records, key=lambda r: r.timestamp)
    return TelemetrySeries(ordered)


class TestEncoderProperties:
    @settings(max_examples=200)
    @given(records_strategy)
    def test_record_roundtrip(self, record):
        assert decode_record(encode_record(record)) == record

    @settings(max_examples=50)
    @given(st.lists(records_strategy, max_size=20))
    def test_batch_roundtrip(self, records):
        assert decode_batch(encode_batch(records)) == records


class TestFeaturizerProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(records_strategy, min_size=1, max_size=30))
    def test_dimensions_and_bounds(self, records):
        spec = FeatureSpec()
        series = sorted_series(records)
        matrix = spec.encode_series(series)
        assert matrix.shape == (len(series), spec.dim)
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= max(spec.identifier_weight, spec.state_weight, 1.0))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(records_strategy, min_size=1, max_size=30))
    def test_message_onehot_always_sums_to_one(self, records):
        spec = FeatureSpec()
        matrix = spec.encode_series(sorted_series(records))
        block = matrix[:, : len(spec.message_vocab) + 1]
        assert np.allclose(block.sum(axis=1), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records_strategy, min_size=2, max_size=20))
    def test_causality(self, records):
        """Dropping a suffix never changes the prefix encoding."""
        spec = FeatureSpec()
        series = sorted_series(records)
        full = spec.encode_series(series)
        cut = len(series) // 2
        prefix = spec.encode_series(series[:cut])
        assert np.array_equal(full[:cut], prefix)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records_strategy, min_size=1, max_size=25))
    def test_streaming_matches_batch(self, records):
        spec = FeatureSpec()
        series = sorted_series(records)
        batch = spec.encode_series(series)
        encoder = spec.streaming_encoder()
        streamed = np.stack([encoder.push(r) for r in series])
        assert np.array_equal(batch, streamed)


class TestWindowingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(records_strategy, min_size=1, max_size=40),
        st.integers(min_value=2, max_value=8),
    )
    def test_session_windows_cover_all_tracked_records(self, records, window):
        spec = FeatureSpec()
        series = sorted_series(records)
        dataset = WindowedDataset.from_series(series, spec, window, mode="session")
        covered = {i for idxs in dataset.window_records for i in idxs}
        tracked = {i for i, r in enumerate(series) if r.session_id != 0}
        assert covered == tracked

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(records_strategy, min_size=1, max_size=40),
        st.integers(min_value=2, max_value=8),
    )
    def test_windows_stay_within_one_session(self, records, window):
        spec = FeatureSpec()
        series = sorted_series(records)
        dataset = WindowedDataset.from_series(series, spec, window, mode="session")
        for indices in dataset.window_records:
            sessions = {series[i].session_id for i in indices}
            assert len(sessions) == 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(records_strategy, min_size=1, max_size=40),
        st.integers(min_value=2, max_value=8),
    )
    def test_window_vector_width(self, records, window):
        spec = FeatureSpec()
        dataset = WindowedDataset.from_series(
            sorted_series(records), spec, window, mode="session"
        )
        assert dataset.windows.shape[1] == window * spec.dim


class TestPromptProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(records_strategy, min_size=1, max_size=15))
    def test_prompt_line_count(self, records):
        text = format_records(records)
        assert len(text.splitlines()) == len(records)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(records_strategy, min_size=1, max_size=15))
    def test_identity_fields_survive_prompt_roundtrip(self, records):
        parsed = parse_data_section(format_records(records))
        assert len(parsed) == len(records)
        for original, roundtripped in zip(records, parsed):
            assert roundtripped.msg == original.msg
            assert roundtripped.rnti == original.rnti
            assert roundtripped.s_tmsi == original.s_tmsi
            assert roundtripped.supi == original.supi
            assert roundtripped.cipher_alg == original.cipher_alg


class TestZeroTrustProperties:
    @settings(max_examples=100)
    @given(st.binary(max_size=200))
    def test_seal_verify_roundtrip_any_payload(self, payload):
        sender = E2Authenticator(node_id="n", key=b"k" * 16)
        receiver = E2Authenticator(node_id="r", key=b"r" * 16)
        assert receiver.verify(sender.seal(payload), {"n": b"k" * 16}) == payload

    @settings(max_examples=100)
    @given(st.binary(max_size=200))
    def test_garbage_never_verifies_or_crashes(self, data):
        receiver = E2Authenticator(node_id="r", key=b"r" * 16)
        assert receiver.verify(data, {"n": b"k" * 16}) is None
