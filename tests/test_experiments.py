"""Tests for the experiment harness (small-scale configurations)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    AblationConfig,
    run_feature_ablation,
    run_threshold_ablation,
    run_window_ablation,
)
from repro.experiments.colosseum import ColosseumScenario, run_scenario
from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.experiments.figure4 import Figure4Config, run_figure4
from repro.experiments.figure5 import Figure5Config, run_figure5
from repro.experiments.reporting import render_score_series, render_table
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import PAPER_TABLE3, Table3Config, run_table3
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry.features import FeatureSpec

# Small/fast configurations shared by the tests.
SMALL_BENIGN = BenignDatasetConfig(
    duration_s=180.0,
    ue_mix=(("pixel5", 1), ("galaxy_a53", 1), ("oai_ue", 2)),
)
SMALL_ATTACK = AttackDatasetConfig(
    bts_dos_instances=1,
    blind_dos_instances=1,
    uplink_id_instances=1,
    downlink_id_instances=1,
    null_cipher_instances=1,
)


class TestColosseum:
    def test_scenario_generates_many_sessions(self):
        net = FiveGNetwork(NetworkConfig(seed=5))
        stats = run_scenario(
            net,
            ColosseumScenario(duration_s=60.0, mean_think_time_s=4.0),
        )
        assert stats.sessions_started > 20
        assert stats.sessions_completed > 0.8 * stats.sessions_started
        assert len(stats.ues) == sum(count for _, count in ColosseumScenario().ue_mix)

    def test_paper_scale_benign_dataset(self):
        capture = generate_benign_dataset()
        # The paper collected "over 100 UE sessions" and ~2.5 MB of pcap.
        assert capture.stats.sessions_completed > 100
        assert capture.net.pcap.byte_size() > 1_000_000


class TestAttackDataset:
    def test_all_five_attack_types_present(self):
        capture = generate_attack_dataset(SMALL_ATTACK)
        names = {attack.name for attack in capture.attacks}
        assert names == {
            "bts_dos",
            "blind_dos",
            "uplink_id_extraction",
            "downlink_id_extraction",
            "null_cipher",
        }

    def test_every_attack_left_malicious_records(self):
        capture = generate_attack_dataset(SMALL_ATTACK)
        for attack in capture.attacks:
            hits = [r for r in capture.series if attack.is_malicious(r)]
            assert hits, f"{attack.name} produced no ground-truth records"

    def test_labeling_is_mixed(self):
        capture = generate_attack_dataset(SMALL_ATTACK)
        labeled = capture.labeled(FeatureSpec(), 6, "attack")
        assert 0 < labeled.malicious_window_count < labeled.num_windows


class TestTable2Small:
    @pytest.fixture(scope="class")
    def result(self):
        config = Table2Config(
            epochs=25, cv_folds=2, benign=SMALL_BENIGN, attack=SMALL_ATTACK
        )
        return run_table2(config)

    def test_all_four_rows_present(self, result):
        keys = {(r.dataset, r.model) for r in result.results}
        assert keys == {
            ("benign", "autoencoder"),
            ("attack", "autoencoder"),
            ("benign", "lstm"),
            ("attack", "lstm"),
        }

    def test_benign_rows_have_no_positives(self, result):
        for model in ("autoencoder", "lstm"):
            row = result.by_key("benign", model)
            assert not row.metrics.has_positives
            assert row.metrics.recall is None

    def test_benign_false_alarms_under_paper_bound(self, result):
        # Paper: "a small portion of false positives (<10%)".
        for model in ("autoencoder", "lstm"):
            row = result.by_key("benign", model)
            assert row.metrics.false_positive_rate < 0.10

    def test_attack_event_recall_is_total(self, result):
        for model in ("autoencoder", "lstm"):
            row = result.by_key("attack", model)
            assert row.event_recall == 1.0

    def test_attack_window_recall_substantial(self, result):
        # Window-level recall at this reduced scale; the full-scale bench
        # reproduces the paper-shape numbers (see EXPERIMENTS.md).
        row = result.by_key("attack", "autoencoder")
        assert row.metrics.recall > 0.5

    def test_render_includes_paper_reference(self, result):
        text = result.render()
        assert "93.23%" in text
        assert "Table 2" in text


class TestFigure4Small:
    @pytest.fixture(scope="class")
    def result(self):
        config = Figure4Config(epochs=10, benign=SMALL_BENIGN, attack=SMALL_ATTACK)
        return run_figure4(config)

    def test_scores_cover_every_window(self, result):
        assert len(result.scores) == len(result.labels)

    def test_bursts_for_every_instance(self, result):
        names = {burst.attack_name for burst in result.bursts}
        assert len(names) == 5

    def test_attack_bursts_peak_above_threshold(self, result):
        for burst in result.bursts:
            assert burst.scores.max() > result.threshold, burst.attack_name

    def test_render_contains_plot_and_legend(self, result):
        text = result.render()
        assert "threshold" in text
        assert "Per-instance burst statistics" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(Table3Config(attack=SMALL_ATTACK))

    def test_grid_matches_paper(self, result):
        assert result.matches_paper()

    def test_seven_rows(self, result):
        assert len(result.cases) == 7
        names = [case.name for case in result.cases]
        assert names[-2:] == ["benign_1", "benign_2"]

    def test_benign_rows_all_correct(self, result):
        for trace in ("benign_1", "benign_2"):
            for model in result.config.models:
                assert result.grid[(trace, model)]

    def test_render_grid(self, result):
        text = result.render()
        assert "chatgpt-4o" in text
        assert "Paper row" in text

    def test_repeated_run_consistent(self, result):
        # §4.2: repeated experiments gave consistent results.
        again = run_table3(Table3Config(attack=SMALL_ATTACK))
        assert again.grid == result.grid


class TestFigure5:
    def test_prompt_and_response(self):
        result = run_figure5(Figure5Config(attack=SMALL_ATTACK))
        assert "AI security analyst" in result.prompt
        assert result.response.is_anomalous
        assert result.identifies_signaling_storm
        assert "Figure 5" in result.render()


class TestAblations:
    @pytest.fixture(scope="class")
    def config(self):
        return AblationConfig(epochs=8, benign=SMALL_BENIGN, attack=SMALL_ATTACK)

    def test_window_sweep(self, config):
        result = run_window_ablation(config, windows=(4, 6))
        assert [row.label for row in result.rows] == ["N=4", "N=6"]

    def test_threshold_sweep_monotonic(self, config):
        result = run_threshold_ablation(config, percentiles=(90.0, 99.0, 99.9))
        fp_rates = [row.benign_fp_rate for row in result.rows]
        recalls = [row.attack_recall for row in result.rows]
        # Raising the threshold cannot increase false alarms or recall.
        assert fp_rates == sorted(fp_rates, reverse=True)
        assert recalls == sorted(recalls, reverse=True)

    def test_feature_ablation_rows(self, config):
        result = run_feature_ablation(config)
        labels = [row.label for row in result.rows]
        for expected in ("full", "no-identifiers", "unweighted", "global-windows"):
            assert expected in labels
        for row in result.rows:
            assert 0.0 <= row.benign_fp_rate <= 1.0
            assert 0.0 <= row.attack_recall <= 1.0
        assert "Ablation A3" in result.render()


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["A", "Bee"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_render_score_series_empty(self):
        assert "(no data)" in render_score_series([], threshold=1.0)

    def test_render_score_series_marks_threshold(self):
        text = render_score_series([0.1, 0.9], threshold=0.5, labels=["", "bts"])
        assert "threshold = 0.5000" in text
        assert "legend" in text
