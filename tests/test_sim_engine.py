"""Tests for the discrete-event engine and RNG registry."""

import pytest

from repro.sim import Entity, RngRegistry, Simulator
from repro.sim.engine import SimulationError


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        processed = sim.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestRngRegistry:
    def test_streams_are_deterministic_per_seed(self):
        a = RngRegistry(seed=42).stream("channel")
        b = RngRegistry(seed=42).stream("channel")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_of_other_streams(self):
        reg1 = RngRegistry(seed=42)
        reg1.stream("noise").random()  # extra draws elsewhere
        value1 = reg1.stream("channel").random()

        reg2 = RngRegistry(seed=42)
        value2 = reg2.stream("channel").random()
        assert value1 == value2

    def test_different_names_differ(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("s").random()
        b = RngRegistry(seed=2).stream("s").random()
        assert a != b

    def test_reset_restores_initial_sequence(self):
        reg = RngRegistry(seed=7)
        first = [reg.stream("x").random() for _ in range(3)]
        reg.reset("x")
        again = [reg.stream("x").random() for _ in range(3)]
        assert first == again

    def test_reset_all(self):
        reg = RngRegistry(seed=7)
        first_x = reg.stream("x").random()
        first_y = reg.stream("y").random()
        reg.reset_all()
        assert reg.stream("x").random() == first_x
        assert reg.stream("y").random() == first_y


class TestEntity:
    def test_entity_schedules_and_logs(self):
        sim = Simulator()
        entity = Entity(sim, "e1")
        entity.schedule(1.0, lambda: entity.log("hello"))
        sim.run()
        assert entity.logs == [(1.0, "hello")]
        assert entity.now == 1.0


class TestEventQueueLiveCount:
    """len(queue) is an O(1) maintained count, exact under cancellation."""

    def test_len_tracks_push_pop_cancel(self):
        from repro.sim.engine import EventQueue

        queue = EventQueue()
        assert len(queue) == 0
        events = [queue.push(float(i), lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[2].cancel()
        assert len(queue) == 4
        assert queue.pop() is events[0]
        assert len(queue) == 3

    def test_cancel_then_pop_skips_without_double_count(self):
        from repro.sim.engine import EventQueue

        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(2.0, lambda: None)
        first.cancel()
        assert len(queue) == 1
        # pop() silently discards the cancelled head; the count must not
        # be decremented a second time for it.
        assert queue.pop() is second
        assert len(queue) == 0
        assert queue.pop() is None
        assert len(queue) == 0

    def test_double_cancel_counts_once(self):
        from repro.sim.engine import EventQueue

        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_touch_queue(self):
        from repro.sim.engine import EventQueue

        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # fired events can still be cancelled by callers
        assert len(queue) == 1

    def test_simulator_pending_matches_queue(self):
        sim = Simulator()
        kept = sim.schedule(1.0, lambda: None)
        dropped = sim.schedule(2.0, lambda: None)
        dropped.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert kept.cancelled is False
