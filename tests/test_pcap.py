"""Tests for the F1AP/NGAP capture stream."""

import pytest

from repro.ran.pcap import CaptureRecord, PcapError, PcapStream
from repro.ran.rrc import RrcSetup, RrcSetupRequest


class TestCapture:
    def test_capture_and_decode(self):
        stream = PcapStream()
        stream.capture(1.5, "F1AP", RrcSetupRequest(ue_identity=7))
        assert len(stream) == 1
        record = stream.records[0]
        assert record.timestamp == 1.5
        assert record.interface == "F1AP"
        decoded = record.decode()
        assert isinstance(decoded, RrcSetupRequest)
        assert decoded.ue_identity == 7

    def test_unknown_interface_rejected(self):
        with pytest.raises(PcapError):
            PcapStream().capture(0.0, "X2AP", RrcSetup())

    def test_byte_size_counts_payloads(self):
        stream = PcapStream()
        stream.capture(0.0, "F1AP", RrcSetup())
        assert stream.byte_size() == len(stream.records[0].payload)

    def test_extend_appends_records(self):
        a, b = PcapStream(), PcapStream()
        a.capture(0.0, "F1AP", RrcSetup())
        b.capture(1.0, "NGAP", RrcSetup())
        a.extend(b)
        assert [r.interface for r in a] == ["F1AP", "NGAP"]


class TestSerialization:
    def _sample(self):
        stream = PcapStream()
        stream.capture(0.25, "F1AP", RrcSetupRequest(ue_identity=1))
        stream.capture(0.50, "NGAP", RrcSetup(rrc_transaction_id=2))
        stream.capture(0.75, "F1AP", RrcSetup(rrc_transaction_id=3))
        return stream

    def test_roundtrip(self):
        stream = self._sample()
        restored = PcapStream.from_bytes(stream.to_bytes())
        assert len(restored) == len(stream)
        for original, copy in zip(stream, restored):
            assert original == copy

    def test_roundtrip_preserves_message_content(self):
        restored = PcapStream.from_bytes(self._sample().to_bytes())
        assert restored.records[0].decode().ue_identity == 1
        assert restored.records[1].decode().rrc_transaction_id == 2

    def test_empty_stream_roundtrip(self):
        assert len(PcapStream.from_bytes(PcapStream().to_bytes())) == 0

    def test_truncated_data_rejected(self):
        data = self._sample().to_bytes()
        with pytest.raises(PcapError):
            PcapStream.from_bytes(data[: len(data) - 3])

    def test_bad_magic_rejected(self):
        data = bytearray(self._sample().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(PcapError):
            PcapStream.from_bytes(bytes(data))
