"""Tests for the DU access rate limiter (dApp-style control, §5)."""

import pytest

from repro.attacks import BtsDosAttack
from repro.core import SixGXSec, XsecConfig
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.oran.e2sm_kpm import MobiFlowKpmModel, MOBIFLOW_RAN_FUNCTION_ID
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.network import NetworkConfig as NetCfg


class TestDuRateLimiter:
    def test_flood_is_capped(self):
        net = FiveGNetwork(NetworkConfig(seed=31))
        net.du.set_rate_limit(3, 1.0)
        attack = BtsDosAttack(net, start_time=0.5, connections=15, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        assert net.du.setup_requests_rate_limited > 0
        # The flood consumed far fewer RNTIs than it attempted connections.
        assert len(attack.malicious_rntis) < 15

    def test_normal_traffic_unaffected(self):
        net = FiveGNetwork(NetworkConfig(seed=32))
        net.du.set_rate_limit(3, 1.0)
        ues = [net.add_ue("pixel5"), net.add_ue("galaxy_a53")]
        for i, ue in enumerate(ues):
            net.sim.schedule(0.5 + 2.0 * i, ue.start_session)
        net.run(until=30.0)
        assert net.amf.registrations_accepted == 2
        assert net.du.setup_requests_rate_limited == 0

    def test_clear_restores_admission(self):
        net = FiveGNetwork(NetworkConfig(seed=33))
        net.du.set_rate_limit(1, 10.0)
        ue_a, ue_b = net.add_ue("pixel5"), net.add_ue("pixel6")
        outcomes = []
        net.sim.schedule(0.5, lambda: ue_a.start_session())
        net.sim.schedule(1.0, lambda: ue_b.start_session(on_end=lambda u, o: outcomes.append(o)))
        net.run(until=10.0)
        assert net.du.setup_requests_rate_limited >= 1
        assert outcomes == ["setup-failed"]  # barred at the radio
        net.du.clear_rate_limit()
        ue_b.start_session(on_end=lambda u, o: outcomes.append(o))
        net.run(until=40.0)
        assert outcomes[-1] == "completed"
        assert net.amf.registrations_accepted == 2

    def test_invalid_limit_rejected(self):
        net = FiveGNetwork(NetworkConfig(seed=34))
        with pytest.raises(ValueError):
            net.du.set_rate_limit(0, 1.0)
        with pytest.raises(ValueError):
            net.du.set_rate_limit(3, 0.0)


class TestRateLimitViaE2:
    def test_control_action_reaches_du(self):
        from repro.oran import NearRtRic, RicAgent, XApp
        from repro.ran.links import InterfaceLink

        net = FiveGNetwork(NetworkConfig(seed=35))
        e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
        agent = RicAgent(net, e2)
        ric = NearRtRic(net.sim, e2)
        e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)

        acks = []

        class Ctl(XApp):
            def on_control_ack(self, ack):
                acks.append(ack)

        ctl = Ctl(ric, "ctl")
        agent.start()
        ric.start()
        header, message = MobiFlowKpmModel.encode_control(
            "rate_limit_access", max_setups=2, window_s=0.5
        )
        ctl.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=1.0)
        assert acks and acks[0].success
        assert net.du._rate_limit == (2, 0.5)

    def test_bad_params_nack(self):
        from repro.oran import NearRtRic, RicAgent, XApp
        from repro.ran.links import InterfaceLink

        net = FiveGNetwork(NetworkConfig(seed=36))
        e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
        agent = RicAgent(net, e2)
        ric = NearRtRic(net.sim, e2)
        e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
        acks = []

        class Ctl(XApp):
            def on_control_ack(self, ack):
                acks.append(ack)

        ctl = Ctl(ric, "ctl")
        agent.start()
        ric.start()
        header, message = MobiFlowKpmModel.encode_control(
            "rate_limit_access", max_setups=0, window_s=1.0
        )
        ctl.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=1.0)
        assert acks and not acks[0].success


class TestClosedLoopRateLimit:
    def test_confirmed_storm_triggers_rate_limit(self):
        config = XsecConfig(train_epochs=8, auto_rate_limit=True)
        capture = generate_benign_dataset(
            BenignDatasetConfig(
                duration_s=120.0, ue_mix=(("pixel5", 1), ("oai_ue", 2))
            )
        )
        labeled = capture.labeled(config.spec, config.window, "benign")
        xsec = SixGXSec(config, network_config=NetCfg(seed=37))
        xsec.train_from_benign(labeled.windowed.windows)
        # A sustained flood: still running when the confirmed verdict (a
        # few seconds after the first alarm) installs the limiter.
        attack = BtsDosAttack(xsec.net, start_time=3.0, connections=80, interval_s=0.12)
        attack.arm()
        xsec.run(until=40.0)
        actions = [name for name, _ in xsec.pipeline.actions_taken]
        assert "rate_limit_access" in actions
        # The limiter bit: part of the flood was barred at the radio.
        assert xsec.net.du.setup_requests_rate_limited > 0
