"""Edge-case tests for the gNB DU/CU message handling."""

from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.f1ap import (
    F1DlRrcMessageTransfer,
    F1UeContextReleaseCommand,
    F1UlRrcMessageTransfer,
)
from repro.ran.ngap import NgDownlinkNasTransport, NgUeContextReleaseCommand
from repro.ran.rrc import RrcSetup, RrcSetupRequest


def make_net(seed=91):
    return FiveGNetwork(NetworkConfig(seed=seed))


class TestDuEdges:
    def test_uplink_on_unknown_rnti_logged_and_dropped(self):
        net = make_net()
        ue = net.add_ue("pixel5")
        net.du.on_uplink(ue, 0x7777, RrcSetup())
        net.run(until=1.0)
        assert any("unknown RNTI" in line for _, line in net.du.logs)

    def test_initial_access_with_non_setup_dropped(self):
        net = make_net()
        ue = net.add_ue("pixel5")
        net.du.on_uplink(ue, None, RrcSetup())
        net.run(until=1.0)
        assert net.du.rntis.in_use == frozenset()

    def test_dl_for_unknown_du_ue_id_dropped(self):
        net = make_net()
        net.du.on_f1(
            F1DlRrcMessageTransfer(
                gnb_du_ue_id=999, gnb_cu_ue_id=1, rrc_container=RrcSetup().to_wire()
            )
        )
        net.run(until=1.0)
        assert any("unknown du_ue_id" in line for _, line in net.du.logs)

    def test_release_unknown_context_still_acks(self):
        net = make_net()
        completes = []
        original = net.cu.on_f1

        def spy(message):
            completes.append(message.name)
            original(message)

        net.f1.connect(a_handler=net.du.on_f1, b_handler=spy)
        net.du.on_f1(F1UeContextReleaseCommand(gnb_du_ue_id=12345, gnb_cu_ue_id=0))
        net.run(until=1.0)
        assert "F1UEContextReleaseComplete" in completes


class TestCuEdges:
    def test_ul_for_unknown_du_ue_id_logged(self):
        net = make_net()
        net.cu.on_f1(
            F1UlRrcMessageTransfer(
                gnb_du_ue_id=500, gnb_cu_ue_id=0, rrc_container=RrcSetup().to_wire()
            )
        )
        assert any("unknown du_ue_id" in line for _, line in net.cu.logs)

    def test_ng_release_for_unknown_context_is_noop(self):
        net = make_net()
        net.cu.on_ng(NgUeContextReleaseCommand(ran_ue_id=404, amf_ue_id=1))
        net.run(until=1.0)
        assert net.cu.active_contexts == 0

    def test_dl_nas_for_unknown_context_logged(self):
        net = make_net()
        net.cu.on_ng(
            NgDownlinkNasTransport(ran_ue_id=404, amf_ue_id=1, nas_pdu=b"")
        )
        assert any("unknown ran_ue_id" in line for _, line in net.cu.logs)

    def test_ul_nas_before_amf_context_dropped(self):
        """A ULInformationTransfer arriving before the AMF context exists
        (e.g. from an out-of-spec UE) must not crash the CU."""
        from repro.ran.rrc import RrcUlInformationTransfer

        net = make_net(seed=92)

        class EagerUe(type(net.add_ue("pixel5"))):
            pass

        ue = net.ues[0]
        ue.start_session()
        net.run(max_events=6)  # RRC setup done, no NAS yet
        if ue.rnti is not None:
            ue.send_uplink_nas(RrcUlInformationTransfer(nas_pdu=b""))
        net.run(until=20.0)
        # Session still completes or fails cleanly; no exception.
        assert net.sim.pending >= 0


class TestRntiReuse:
    def test_released_rnti_can_be_reallocated_to_new_session(self):
        net = make_net(seed=93)
        ue = net.add_ue("oai_ue")
        ue.start_session()
        net.run(until=30.0)
        released = set()
        # All RNTIs freed after the session.
        assert net.du.rntis.in_use == frozenset()

    def test_duplicate_setup_requests_create_ghost_contexts_that_expire(self):
        from repro.ran.channel import ChannelConfig

        net = FiveGNetwork(
            NetworkConfig(seed=94, channel=ChannelConfig(duplicate_prob=1.0))
        )
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=40.0)
        # Ghost contexts from the duplicated setup requests get swept.
        assert net.cu.active_contexts == 0
        assert net.du.rntis.in_use == frozenset()
