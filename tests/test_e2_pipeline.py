"""Integration tests: RIC agent <-> E2 termination <-> xApps."""

import pytest

from repro.oran import NearRtRic, RicAgent, XApp
from repro.oran.e2ap import ActionType
from repro.oran.e2sm_kpm import (
    MOBIFLOW_RAN_FUNCTION_ID,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.links import InterfaceLink


class ProbeXApp(XApp):
    """Subscribes to MobiFlow telemetry and records what it receives."""

    def start(self):
        super().start()
        self.records = []
        self.acks = []
        trigger = MobiFlowKpmModel.encode_event_trigger(
            MobiFlowReportStyle(0.1).to_trigger()
        )
        self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger)

    def on_indication(self, indication):
        self.records.extend(
            MobiFlowKpmModel.decode_indication(
                indication.indication_header, indication.indication_message
            )
        )

    def on_control_ack(self, ack):
        self.acks.append(ack)


def build_stack(seed=1):
    net = FiveGNetwork(NetworkConfig(seed=seed))
    e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
    agent = RicAgent(net, e2)
    ric = NearRtRic(net.sim, e2)
    e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
    probe = ProbeXApp(ric, "probe")
    agent.start()
    ric.start()
    return net, agent, ric, probe


class TestE2Setup:
    def test_node_connects_and_advertises_function(self):
        net, agent, ric, probe = build_stack()
        net.run(until=1.0)
        assert "gnb-cu-0" in ric.e2term.connected_nodes
        functions = ric.e2term.connected_nodes["gnb-cu-0"]
        assert str(MOBIFLOW_RAN_FUNCTION_ID) in functions

    def test_subscription_admitted(self):
        net, agent, ric, probe = build_stack()
        net.run(until=1.0)
        subscription = ric.e2term.subscriptions[probe.subscription_ids[0]]
        assert subscription.admitted
        assert subscription.xapp_name == "probe"


class TestTelemetryReporting:
    def test_xapp_receives_all_telemetry(self):
        net, agent, ric, probe = build_stack()
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=20.0)
        assert len(probe.records) == len(agent.collector.series)
        assert len(probe.records) > 10
        names = [record.msg for record in probe.records]
        assert "RegistrationRequest" in names

    def test_reporting_batches_by_interval(self):
        net, agent, ric, probe = build_stack()
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=20.0)
        # A ~1.5s registration at 100ms report period -> several indications.
        assert agent.indications_sent >= 3
        assert ric.e2term.indications_received == agent.indications_sent

    def test_max_records_per_indication(self):
        net = FiveGNetwork(NetworkConfig(seed=2))
        e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
        agent = RicAgent(net, e2)
        ric = NearRtRic(net.sim, e2)
        e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)

        received_batches = []

        class CapProbe(XApp):
            def start(self):
                super().start()
                trigger = MobiFlowKpmModel.encode_event_trigger(
                    MobiFlowReportStyle(0.1, max_records_per_indication=3).to_trigger()
                )
                self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger)

            def on_indication(self, indication):
                received_batches.append(
                    MobiFlowKpmModel.decode_indication(
                        indication.indication_header, indication.indication_message
                    )
                )

        CapProbe(ric, "cap")
        agent.start()
        ric.start()
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=20.0)
        assert received_batches
        assert all(len(batch) <= 3 for batch in received_batches)


class TestControlActions:
    def test_blocklist_control_executes_and_acks(self):
        net, agent, ric, probe = build_stack()
        net.run(until=1.0)
        header, message = MobiFlowKpmModel.encode_control("blocklist_tmsi", tmsi=0xBEEF)
        probe.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=2.0)
        assert 0xBEEF in net.cu.tmsi_blocklist
        assert len(probe.acks) == 1
        assert probe.acks[0].success

    def test_blocklisted_tmsi_is_rejected_at_access(self):
        net, agent, ric, probe = build_stack(seed=3)
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=20.0)
        assert ue.s_tmsi is not None
        header, message = MobiFlowKpmModel.encode_control(
            "blocklist_tmsi", tmsi=ue.s_tmsi
        )
        probe.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=21.0)
        outcomes = []
        ue.start_session(on_end=lambda u, o: outcomes.append(o))
        net.run(until=40.0)
        assert outcomes == ["rejected"]
        assert net.cu.setup_requests_rejected >= 1

    def test_release_control_on_unknown_rnti_fails_gracefully(self):
        net, agent, ric, probe = build_stack()
        net.run(until=1.0)
        header, message = MobiFlowKpmModel.encode_control("release_ue", rnti=0x7777)
        probe.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=2.0)
        assert len(probe.acks) == 1
        assert not probe.acks[0].success

    def test_release_control_drops_connected_ue(self):
        net, agent, ric, probe = build_stack(seed=4)
        ue = net.add_ue("galaxy_a22")
        ue.start_session()
        net.run(until=2.0)
        ctx = net.cu.context_for_rnti(ue.rnti)
        assert ctx is not None
        header, message = MobiFlowKpmModel.encode_control("release_ue", rnti=ue.rnti)
        probe.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)
        net.run(until=10.0)
        assert probe.acks and probe.acks[0].success
        assert net.cu.context_for_rnti(ue.rnti) is None


class TestXAppRegistry:
    def test_duplicate_xapp_name_rejected(self):
        net = FiveGNetwork(NetworkConfig(seed=1))
        e2 = InterfaceLink(net.sim, "E2")
        ric = NearRtRic(net.sim, e2)
        ProbeXApp(ric, "probe")
        with pytest.raises(ValueError):
            ProbeXApp(ric, "probe")

    def test_deregister_stops_delivery(self):
        net, agent, ric, probe = build_stack()
        ric.deregister_xapp("probe")
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=10.0)
        assert probe.records == []
        assert not probe.started
