"""Tests for the radio channel: delivery, noise, and MiTM hooks."""

from repro.ran.channel import ChannelConfig, RadioChannel
from repro.ran.rrc import RrcSetup, RrcSetupRequest
from repro.sim import Simulator


class FakeDu:
    def __init__(self):
        self.received = []

    def on_uplink(self, ue, rnti, message):
        self.received.append((ue, rnti, message))


class FakeUe:
    def __init__(self):
        self.received = []

    def on_downlink(self, rnti, message):
        self.received.append((rnti, message))


def make_channel(**config_kwargs):
    sim = Simulator(seed=1)
    channel = RadioChannel(sim, ChannelConfig(**config_kwargs))
    du = FakeDu()
    channel.attach_du(du)
    return sim, channel, du


class TestDelivery:
    def test_uplink_reaches_du_after_latency(self):
        sim, channel, du = make_channel(latency_s=0.01, jitter_s=0.0)
        ue = FakeUe()
        channel.uplink(ue, None, RrcSetupRequest())
        assert du.received == []
        sim.run()
        assert len(du.received) == 1
        assert sim.now >= 0.01

    def test_downlink_reaches_bound_ue(self):
        sim, channel, du = make_channel()
        ue = FakeUe()
        channel.bind_rnti(0x10, ue)
        channel.downlink(0x10, RrcSetup())
        sim.run()
        assert len(ue.received) == 1
        assert ue.received[0][0] == 0x10

    def test_downlink_to_unbound_rnti_dropped(self):
        sim, channel, du = make_channel()
        channel.downlink(0x99, RrcSetup())
        sim.run()
        assert channel.frames_dropped == 1

    def test_unbind_stops_delivery(self):
        sim, channel, du = make_channel()
        ue = FakeUe()
        channel.bind_rnti(0x10, ue)
        channel.unbind_rnti(0x10)
        channel.downlink(0x10, RrcSetup())
        sim.run()
        assert ue.received == []

    def test_ue_for_rnti(self):
        sim, channel, du = make_channel()
        ue = FakeUe()
        channel.bind_rnti(0x22, ue)
        assert channel.ue_for_rnti(0x22) is ue
        assert channel.ue_for_rnti(0x23) is None


class TestNoise:
    def test_duplicate_prob_one_duplicates_every_frame(self):
        sim, channel, du = make_channel(duplicate_prob=1.0)
        ue = FakeUe()
        channel.uplink(ue, 5, RrcSetupRequest())
        sim.run()
        assert len(du.received) == 2
        assert channel.frames_duplicated == 1

    def test_setup_loss_prob_one_drops_setup_requests(self):
        sim, channel, du = make_channel(setup_loss_prob=1.0)
        ue = FakeUe()
        channel.uplink(ue, None, RrcSetupRequest())
        sim.run()
        assert du.received == []
        assert channel.frames_dropped == 1

    def test_setup_loss_does_not_affect_other_messages(self):
        sim, channel, du = make_channel(setup_loss_prob=1.0)
        ue = FakeUe()
        channel.uplink(ue, 5, RrcSetup())
        sim.run()
        assert len(du.received) == 1


class TestMitmHooks:
    def test_uplink_interceptor_can_replace(self):
        sim, channel, du = make_channel()
        replacement = RrcSetupRequest(ue_identity=0xBAD)
        channel.add_uplink_interceptor(lambda ue, rnti, msg: replacement)
        channel.uplink(FakeUe(), None, RrcSetupRequest(ue_identity=1))
        sim.run()
        assert du.received[0][2].ue_identity == 0xBAD

    def test_uplink_interceptor_can_drop(self):
        sim, channel, du = make_channel()
        channel.add_uplink_interceptor(lambda ue, rnti, msg: None)
        channel.uplink(FakeUe(), None, RrcSetupRequest())
        sim.run()
        assert du.received == []
        assert channel.frames_dropped == 1

    def test_downlink_interceptor_can_replace(self):
        sim, channel, du = make_channel()
        ue = FakeUe()
        channel.bind_rnti(0x10, ue)
        channel.add_downlink_interceptor(lambda rnti, msg: RrcSetup(rrc_transaction_id=9))
        channel.downlink(0x10, RrcSetup(rrc_transaction_id=0))
        sim.run()
        assert ue.received[0][1].rrc_transaction_id == 9

    def test_interceptor_removal(self):
        sim, channel, du = make_channel()
        interceptor = lambda ue, rnti, msg: None
        channel.add_uplink_interceptor(interceptor)
        channel.remove_uplink_interceptor(interceptor)
        channel.uplink(FakeUe(), None, RrcSetupRequest())
        sim.run()
        assert len(du.received) == 1

    def test_inject_uplink_bypasses_interceptors(self):
        sim, channel, du = make_channel()
        channel.add_uplink_interceptor(lambda ue, rnti, msg: None)
        victim = FakeUe()
        channel.inject_uplink(victim, 5, RrcSetupRequest())
        sim.run()
        assert len(du.received) == 1

    def test_bind_listener_sees_bindings(self):
        sim, channel, du = make_channel()
        seen = []
        channel.add_bind_listener(lambda rnti, ue: seen.append(rnti))
        channel.bind_rnti(0x42, FakeUe())
        assert seen == [0x42]
