"""Tests for repro.scale: hash ring, batcher, sharded SDL, inference pool.

Covers the invariants the scaling substrate is built on: consistent-hash
relocation bounds, bounded-queue accounting (``offered == ingested +
dropped + pending``), acknowledged-write durability across shard kills,
and batched-vs-inline score equivalence.
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.oran.sdl import SdlError, SharedDataLayer
from repro.scale import (
    BoundedBatcher,
    ConsistentHashRing,
    DROP_NEWEST,
    DROP_OLDEST,
    HashRingError,
    InferencePool,
    ScaleSettings,
    ShardedSdl,
    ShardUnavailableError,
    stable_hash,
)
from repro.sim import Simulator


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("ue-42") == stable_hash("ue-42")

    def test_64_bit_range(self):
        value = stable_hash("rnti/17002")
        assert 0 <= value < 2**64

    def test_spreads_nearby_keys(self):
        points = {stable_hash(f"session-{i}") for i in range(100)}
        assert len(points) == 100


class TestHashRing:
    def test_lookup_deterministic_across_instances(self):
        keys = [f"ue-{i}" for i in range(200)]
        a = ConsistentHashRing(["s0", "s1", "s2"], vnodes=64)
        b = ConsistentHashRing(["s2", "s0", "s1"], vnodes=64)  # order-free
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_empty_ring_rejected(self):
        with pytest.raises(HashRingError):
            ConsistentHashRing().lookup("key")

    def test_duplicate_and_unknown_nodes_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(HashRingError):
            ring.add_node("a")
        with pytest.raises(HashRingError):
            ring.remove_node("zz")

    def test_lookup_n_distinct_primary_first(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(5)], vnodes=64)
        owners = ring.lookup_n("ue-7", 3)
        assert len(owners) == len(set(owners)) == 3
        assert owners[0] == ring.lookup("ue-7")

    def test_lookup_n_clamped_to_ring_size(self):
        ring = ConsistentHashRing(["a", "b"])
        assert sorted(ring.lookup_n("k", 10)) == ["a", "b"]

    def test_add_node_relocates_about_k_over_n(self):
        keys = [f"ue-{i}" for i in range(2000)]
        ring = ConsistentHashRing([f"s{i}" for i in range(4)], vnodes=128)
        before = {k: ring.lookup(k) for k in keys}
        ring.add_node("s4")
        moved = [k for k in keys if ring.lookup(k) != before[k]]
        # Ideal relocation is K/N = 400; allow generous variance, but far
        # below the ~K(N-1)/N a naive mod-N rehash would move.
        assert len(moved) < 2 * len(keys) / 5
        # Every relocated key moved *to* the new node, never between old ones.
        assert all(ring.lookup(k) == "s4" for k in moved)

    def test_remove_node_relocates_only_its_keys(self):
        keys = [f"sess-{i}" for i in range(2000)]
        ring = ConsistentHashRing([f"s{i}" for i in range(5)], vnodes=128)
        before = {k: ring.lookup(k) for k in keys}
        victims = [k for k in keys if before[k] == "s2"]
        ring.remove_node("s2")
        for k in keys:
            if k in victims:
                assert ring.lookup(k) != "s2"
            else:
                assert ring.lookup(k) == before[k]

    def test_distribution_roughly_balanced(self):
        keys = [f"ue-{i}" for i in range(4000)]
        ring = ConsistentHashRing([f"s{i}" for i in range(4)], vnodes=128)
        counts = ring.distribution(keys)
        assert sum(counts.values()) == len(keys)
        for count in counts.values():
            assert 0.5 * 1000 < count < 2.0 * 1000


class TestBatcher:
    def collector(self):
        batches = []
        return batches, batches.append

    def test_flushes_on_size(self):
        batches, sink = self.collector()
        batcher = BoundedBatcher(sink, flush_records=4)
        for i in range(10):
            batcher.offer(i)
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert batcher.pending == 2
        assert batcher.close() == 2
        assert batches[-1] == [8, 9]

    def test_queue_never_exceeds_capacity(self):
        batches, sink = self.collector()
        batcher = BoundedBatcher(sink, capacity=8, flush_records=100)
        peak = 0
        for i in range(50):
            batcher.offer(i)
            peak = max(peak, batcher.pending)
        assert peak <= 8
        assert batcher.dropped == 42

    def test_accounting_invariant_drop_oldest(self):
        batches, sink = self.collector()
        batcher = BoundedBatcher(
            sink, capacity=8, flush_records=100, drop_policy=DROP_OLDEST
        )
        for i in range(50):
            batcher.offer(i)
        assert batcher.offered == batcher.ingested + batcher.dropped + batcher.pending
        batcher.close()
        # Oldest were shed: the survivors are the newest 8 offers.
        assert batches == [[42, 43, 44, 45, 46, 47, 48, 49]]
        assert batcher.offered == batcher.ingested + batcher.dropped

    def test_accounting_invariant_drop_newest(self):
        batches, sink = self.collector()
        batcher = BoundedBatcher(
            sink, capacity=8, flush_records=100, drop_policy=DROP_NEWEST
        )
        accepted = [batcher.offer(i) for i in range(50)]
        assert accepted[:8] == [True] * 8 and not any(accepted[8:])
        assert batcher.offered == batcher.ingested + batcher.dropped + batcher.pending
        batcher.close()
        # Newest were shed: the survivors are the first 8 offers.
        assert batches == [[0, 1, 2, 3, 4, 5, 6, 7]]

    def test_drops_match_offered_minus_ingested(self):
        batches, sink = self.collector()
        batcher = BoundedBatcher(sink, capacity=16, flush_records=5)
        offered = 137
        for i in range(offered):
            batcher.offer(i)
        batcher.close()
        assert batcher.offered == offered
        assert batcher.dropped == offered - batcher.ingested
        assert sum(len(b) for b in batches) == batcher.ingested

    def test_interval_flush_via_simulator(self):
        sim = Simulator()
        batches, sink = self.collector()
        batcher = BoundedBatcher(
            sink,
            flush_records=100,
            flush_interval_s=0.05,
            scheduler=sim.schedule,
            clock=lambda: sim.now,
        )
        sim.schedule_at(0.0, lambda: [batcher.offer(i) for i in range(3)])
        sim.run()
        assert batches == [[0, 1, 2]]

    def test_closed_batcher_rejects_offers(self):
        batcher = BoundedBatcher(lambda batch: None)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.offer(1)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            BoundedBatcher(lambda b: None, capacity=0)
        with pytest.raises(ValueError):
            BoundedBatcher(lambda b: None, flush_records=0)
        with pytest.raises(ValueError):
            BoundedBatcher(lambda b: None, drop_policy="random")


class TestShardedSdl:
    def test_contract_parity_with_shared_data_layer(self):
        sdl = ShardedSdl(shards=4)
        sdl.set("ns", "key", {"a": 1, "b": [1, 2]})
        assert sdl.get("ns", "key") == {"a": 1, "b": [1, 2]}
        assert sdl.get("ns", "missing", default=42) == 42
        with pytest.raises(SdlError):
            sdl.require("ns", "missing")
        assert sdl.delete("ns", "key") is True
        assert sdl.delete("ns", "key") is False

    def test_values_stored_by_value(self):
        sdl = ShardedSdl(shards=3)
        value = {"list": [1]}
        sdl.set("ns", "k", value)
        value["list"].append(2)
        assert sdl.get("ns", "k") == {"list": [1]}

    def test_keys_union_across_shards(self):
        sdl = ShardedSdl(shards=4)
        for i in range(40):
            sdl.set("ns", f"k{i:02d}", i)
        assert sdl.keys("ns") == [f"k{i:02d}" for i in range(40)]
        assert sdl.namespaces() == ["ns"]

    def test_shard_key_pins_placement(self):
        sdl = ShardedSdl(shards=4, replication=2)
        replicas = sdl.replicas_for("ue-7")
        sdl.set("ns", "a", 1, shard_key="ue-7")
        sdl.set("ns", "b", 2, shard_key="ue-7")
        for name in replicas:
            shard = sdl._shards[name]
            assert set(shard.data["ns"]) == {"a", "b"}

    def test_kill_shard_loses_nothing_with_replication(self):
        sdl = ShardedSdl(shards=4, replication=2)
        keys = [f"k{i}" for i in range(200)]
        for key in keys:
            sdl.set("ns", key, {"v": key})
        sdl.kill_shard(0)
        for key in keys:
            assert sdl.get("ns", key) == {"v": key}
        assert sdl.shards_alive() == 3
        assert sdl.health()["failovers"] > 0

    def test_unreplicated_kill_is_visible_not_silent(self):
        sdl = ShardedSdl(shards=2, replication=1)
        for i in range(50):
            sdl.set("ns", f"k{i}", i)
        held = {name: dict(shard.data.get("ns", {})) for name, shard in sdl._shards.items()}
        sdl.kill_shard("shard-0")
        for i in range(50):
            expected = None if f"k{i}" in held["shard-0"] else i
            assert sdl.get("ns", f"k{i}") == expected

    def test_write_with_all_replicas_dead_not_acknowledged(self):
        sdl = ShardedSdl(shards=2, replication=1)
        # Find a key owned by shard-0, kill it, and try to write.
        key = next(
            f"k{i}" for i in range(100) if sdl.replicas_for(f"ns/k{i}")[0] == "shard-0"
        )
        sdl.kill_shard(0)
        with pytest.raises(ShardUnavailableError):
            sdl.set("ns", key, 1)
        sdl.revive_shard(0)
        assert sdl.get("ns", key) is None  # never stored anywhere

    def test_read_repair_after_revive(self):
        metrics = MetricsRegistry()
        sdl = ShardedSdl(shards=3, replication=2, metrics=metrics)
        key = next(
            f"k{i}" for i in range(200) if sdl.replicas_for(f"ns/k{i}")[0] == "shard-0"
        )
        sdl.kill_shard(0)
        sdl.set("ns", key, {"v": 1})  # acked by the surviving replica
        sdl.revive_shard(0)
        assert sdl.get("ns", key) == {"v": 1}
        assert sdl.health()["read_repairs"] >= 1
        # The healed replica now serves the key directly.
        assert sdl._shards["shard-0"].data["ns"][key]

    def test_watch_fires_once_per_write_and_isolates_errors(self):
        sdl = ShardedSdl(shards=4, replication=2)
        seen = []

        def bad(ns, key, value):
            raise RuntimeError("boom")

        sdl.watch("ns", bad)
        sdl.watch("ns", lambda ns, key, value: seen.append((key, value)))
        sdl.set("ns", "k", 7)
        assert seen == [("k", 7)]  # once, despite two replicas
        assert sdl.get("ns", "k") == 7
        assert int(sdl._watch_errors.value) == 1

    def test_invalid_topologies_rejected(self):
        with pytest.raises(ValueError):
            ShardedSdl(shards=0)
        with pytest.raises(ValueError):
            ShardedSdl(shards=2, replication=3)
        with pytest.raises(KeyError):
            ShardedSdl(shards=2).kill_shard("shard-9")

    def test_service_time_model_advances_completion(self):
        sim = Simulator()
        sdl = ShardedSdl(
            shards=1, service_time_s=0.01, clock=lambda: sim.now
        )
        first = sdl.set("ns", "a", 1)
        second = sdl.set("ns", "b", 2)
        assert first == pytest.approx(0.01)
        assert second == pytest.approx(0.02)  # queued behind the first


class TestSdlWatchIsolation:
    """Satellite fix: a raising watcher must not abort the write loop."""

    def test_later_watchers_still_notified(self):
        metrics = MetricsRegistry()
        sdl = SharedDataLayer(metrics=metrics)
        seen = []

        def bad(ns, key, value):
            raise RuntimeError("watcher bug")

        sdl.watch("ns", bad)
        sdl.watch("ns", lambda ns, key, value: seen.append(key))
        before = metrics.histogram("sdl.write_wall_s").count
        sdl.set("ns", "k", 1)  # must not raise
        assert seen == ["k"]
        assert sdl.get("ns", "k") == 1
        assert int(metrics.counter("sdl.watch_errors_total").value) == 1
        # The wall-clock observation still lands even when a watcher raises.
        assert metrics.histogram("sdl.write_wall_s").count == before + 1


class TestInferencePool:
    @staticmethod
    def row_sums(matrix):
        return matrix.sum(axis=1)

    def test_batched_scores_match_individual(self):
        pool = InferencePool(self.row_sums, batch_windows=100)
        vectors = [np.full(4, float(i)) for i in range(7)]
        scores = {}
        for i, vector in enumerate(vectors):
            pool.submit(i, vector, lambda s, done, i=i: scores.__setitem__(i, s))
        assert pool.pending == 7
        pool.flush()
        assert scores == {i: pytest.approx(4.0 * i) for i in range(7)}
        assert pool.batches == 1

    def test_auto_flush_at_batch_windows(self):
        pool = InferencePool(self.row_sums, batch_windows=3)
        done = []
        for i in range(3):
            pool.submit(i, np.ones(2), lambda s, t: done.append(s))
        assert pool.pending == 0 and len(done) == 3

    def test_worker_assignment_deterministic_and_sticky(self):
        pool = InferencePool(self.row_sums, workers=4)
        twin = InferencePool(self.row_sums, workers=4)
        for session in range(50):
            assert pool.worker_for(session) == twin.worker_for(session)

    def test_multi_worker_covers_all_submissions(self):
        pool = InferencePool(self.row_sums, workers=3, batch_windows=1000)
        results = []
        for i in range(60):
            pool.submit(i % 12, np.full(3, float(i)), lambda s, t: results.append(s))
        pool.flush()
        assert sorted(results) == sorted(3.0 * i for i in range(60))
        assert pool.batches <= 3  # one vectorized call per worker
        assert pool.windows_scored == 60

    def test_service_time_model_per_worker(self):
        pool = InferencePool(
            self.row_sums, workers=1, batch_windows=100, service_time_per_window_s=0.01
        )
        completions = []
        for i in range(4):
            pool.submit(0, np.ones(2), lambda s, done: completions.append(done))
        pool.flush()
        # One worker scored 4 windows serially from t=0.
        assert completions == [pytest.approx(0.04)] * 4

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            InferencePool(self.row_sums, workers=0)
        with pytest.raises(ValueError):
            InferencePool(self.row_sums, batch_windows=0)

    def test_close_delivers_pending_then_refuses_submits(self):
        pool = InferencePool(self.row_sums, batch_windows=100)
        scores = []
        for i in range(5):
            pool.submit(i, np.full(2, float(i)), lambda s, t: scores.append(s))
        assert pool.close() == 5
        assert sorted(scores) == [pytest.approx(2.0 * i) for i in range(5)]
        assert pool.closed
        assert pool.stats()["closed"] is True
        with pytest.raises(RuntimeError):
            pool.submit(9, np.ones(2), lambda s, t: None)

    def test_close_is_idempotent(self):
        pool = InferencePool(self.row_sums, batch_windows=100)
        pool.submit(0, np.ones(2), lambda s, t: None)
        assert pool.close() == 1
        assert pool.close() == 0
        assert pool.close() == 0

    def test_context_manager_closes_on_exit(self):
        scores = []
        with InferencePool(self.row_sums, batch_windows=100) as pool:
            pool.submit(0, np.full(3, 2.0), lambda s, t: scores.append(s))
        assert pool.closed
        assert scores == [pytest.approx(6.0)]

    def test_context_manager_closes_on_error(self):
        pool = InferencePool(self.row_sums, batch_windows=100)
        with pytest.raises(RuntimeError, match="boom"):
            with pool:
                pool.submit(0, np.ones(2), lambda s, t: None)
                raise RuntimeError("boom")
        assert pool.closed


class TestScaleSettings:
    def test_defaults_keep_seed_paths_off(self):
        settings = ScaleSettings()
        assert not settings.sharding_enabled
        assert not settings.batching_enabled
        assert not settings.pooling_enabled

    def test_flags_flip_with_knobs(self):
        settings = ScaleSettings(
            sdl_shards=4, ingest_flush_records=64, pool_batch_windows=32
        )
        assert settings.sharding_enabled
        assert settings.batching_enabled
        assert settings.pooling_enabled
