"""Tests for the challenge-forgery attack and its specialized-LLM story."""

import pytest

from repro.attacks import ChallengeForgeryAttack
from repro.llm import AnalysisEngine, ExpertAnalyst, LlmClient, SimulatedLlmServer
from repro.llm.knowledge import SIG_AUTH_FORGERY
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector


@pytest.fixture(scope="module")
def capture():
    net = FiveGNetwork(NetworkConfig(seed=95))
    for i in range(3):
        ue = net.add_ue("pixel5" if i % 2 == 0 else "galaxy_a53")
        net.sim.schedule(0.3 + 1.5 * i, ue.start_session)
    attack = ChallengeForgeryAttack(net, start_time=0.2, duration_s=8.0)
    attack.arm()
    net.run(until=30.0)
    series = MobiFlowCollector().parse_stream(net.pcap)
    return net, attack, series


class TestAttackMechanics:
    def test_forgeries_provoke_mac_failures(self, capture):
        net, attack, series = capture
        assert attack.challenges_forged >= 2
        failures = [r for r in series if r.msg == "AuthenticationFailure"]
        assert len(failures) >= 2

    def test_ground_truth_marks_the_failures(self, capture):
        net, attack, series = capture
        malicious = [r for r in series if attack.is_malicious(r)]
        assert malicious
        assert all(r.msg == "AuthenticationFailure" for r in malicious)

    def test_registrations_blocked_during_window(self, capture):
        net, attack, series = capture
        accepts_in_window = [
            r
            for r in series
            if r.msg == "RegistrationAccept" and attack.in_window(r.timestamp)
        ]
        assert not accepts_in_window


class TestDetectionStory:
    def test_engine_names_the_forgery(self, capture):
        net, attack, series = capture
        window = [r for r in series if attack.in_window(r.timestamp)]
        signatures = {m.signature for m in AnalysisEngine().analyze(window)}
        assert SIG_AUTH_FORGERY in signatures

    def test_zero_shot_cloud_models_miss_it(self, capture):
        net, attack, series = capture
        window = [r for r in series if attack.in_window(r.timestamp)]
        server = SimulatedLlmServer()
        for model in ("chatgpt-4o", "gemini", "copilot", "llama3", "claude-3-sonnet"):
            analyst = ExpertAnalyst(client=LlmClient(server=server, model=model))
            verdict = analyst.analyze(window, detector_flagged=True)
            top = (
                verdict.response.top_attacks[0][0].lower()
                if verdict.response.top_attacks
                else ""
            )
            assert "forgery" not in top, model

    def test_finetuned_model_names_it(self, capture):
        net, attack, series = capture
        window = [r for r in series if attack.in_window(r.timestamp)]
        analyst = ExpertAnalyst(
            client=LlmClient(server=SimulatedLlmServer(), model="xsec-ft-7b")
        )
        verdict = analyst.analyze(window, detector_flagged=True)
        assert verdict.response.is_anomalous
        assert "forgery" in verdict.response.top_attacks[0][0].lower()

    def test_benign_failure_free_traffic_does_not_match(self):
        net = FiveGNetwork(NetworkConfig(seed=96))
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=30.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        signatures = {m.signature for m in AnalysisEngine().analyze(series.records)}
        assert SIG_AUTH_FORGERY not in signatures
