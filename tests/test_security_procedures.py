"""Tests for the UE-side security checks: AUTN verification, SQN freshness,
and security-mode rejection (hardened-UE counter to bidding down)."""

from dataclasses import replace

import pytest

from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.messages import Message
from repro.ran.nas import AuthenticationRequest
from repro.ran.rrc import RrcDlInformationTransfer
from repro.ran.ue import PROFILES
from repro.telemetry import MobiFlowCollector


class TestAutnVerification:
    def test_benign_registration_passes_autn_check(self):
        net = FiveGNetwork(NetworkConfig(seed=81))
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=30.0)
        assert ue.auth_failures_sent == 0
        assert net.amf.registrations_accepted == 1

    def test_forged_challenge_triggers_mac_failure(self):
        """A MiTM without the subscriber key forges the challenge."""
        net = FiveGNetwork(NetworkConfig(seed=82))
        ue = net.add_ue("pixel5")

        def forge(rnti, message):
            if isinstance(message, RrcDlInformationTransfer):
                nas = Message.from_wire(message.nas_pdu)
                if isinstance(nas, AuthenticationRequest):
                    forged = AuthenticationRequest(
                        rand=b"\x00" * 16, autn=b"\x00" * 16, sqn=nas.sqn
                    )
                    return RrcDlInformationTransfer(nas_pdu=forged.to_wire())
            return message

        net.channel.add_downlink_interceptor(forge)
        ue.start_session()
        net.run(until=30.0)
        assert ue.auth_failures_sent > 0
        assert net.amf.registrations_accepted == 0
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "AuthenticationFailure" in names

    def test_replayed_challenge_triggers_sync_failure(self):
        """Replaying a stale (previously accepted) challenge must fail."""
        net = FiveGNetwork(NetworkConfig(seed=83))
        ue = net.add_ue("pixel5")
        captured = []

        def capture_then_replay(rnti, message):
            if isinstance(message, RrcDlInformationTransfer):
                nas = Message.from_wire(message.nas_pdu)
                if isinstance(nas, AuthenticationRequest):
                    captured.append(message)
            return message

        net.channel.add_downlink_interceptor(capture_then_replay)
        ue.start_session()
        net.run(until=30.0)
        assert captured
        assert ue.auth_failures_sent == 0
        before = ue.auth_failures_sent
        # Replay the stale challenge straight at the UE (over-the-air MiTM).
        ue.rnti = ue.rnti  # UE is idle now; deliver on its last context
        ue._on_nas_AuthenticationRequest(
            Message.from_wire(captured[0].nas_pdu)
        )
        assert ue.auth_failures_sent == before + 1

    def test_amf_rechallenges_once_then_rejects(self):
        net = FiveGNetwork(NetworkConfig(seed=84))
        ue = net.add_ue("pixel5")

        def always_forge(rnti, message):
            if isinstance(message, RrcDlInformationTransfer):
                nas = Message.from_wire(message.nas_pdu)
                if isinstance(nas, AuthenticationRequest):
                    forged = AuthenticationRequest(
                        rand=b"\x11" * 16, autn=b"\x22" * 16, sqn=nas.sqn
                    )
                    return RrcDlInformationTransfer(nas_pdu=forged.to_wire())
            return message

        net.channel.add_downlink_interceptor(always_forge)
        ue.start_session()
        net.run(until=30.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        names = series.message_names()
        assert names.count("AuthenticationRequest") == 2  # one re-challenge
        assert "AuthenticationReject" in names
        assert net.amf.registrations_rejected >= 1


class TestHardenedUe:
    def test_hardened_ue_rejects_null_security(self):
        from repro.ran.core_network import AmfConfig
        from repro.ran.security import CipherAlg, IntegrityAlg

        net = FiveGNetwork(
            NetworkConfig(seed=85, amf=AmfConfig(allow_null_algorithms=True))
        )
        hardened = replace(
            PROFILES["pixel5"],
            name="hardened",
            cipher_caps=(CipherAlg.NEA0,),
            integrity_caps=(IntegrityAlg.NIA0,),
            reject_null_security=True,
        )
        ue = net.add_ue(hardened)
        ue.start_session()
        net.run(until=30.0)
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "NASSecurityModeReject" in names
        assert net.amf.security_mode_rejections == 1
        assert ue.guti is None

    def test_default_ue_accepts_network_choice(self):
        net = FiveGNetwork(NetworkConfig(seed=86))
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=30.0)
        assert net.amf.security_mode_rejections == 0
        assert ue.guti is not None
