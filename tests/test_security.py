"""Tests for the 5G security algorithm model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ran.security import (
    AuthVector,
    CipherAlg,
    IntegrityAlg,
    SecurityContext,
    UsimCredential,
    derive_kamf,
    select_algorithms,
)

K = bytes(range(16))


class TestAlgorithms:
    def test_null_detection(self):
        assert CipherAlg.NEA0.is_null
        assert not CipherAlg.NEA2.is_null
        assert IntegrityAlg.NIA0.is_null
        assert not IntegrityAlg.NIA2.is_null

    def test_identifier_values_match_spec(self):
        assert int(CipherAlg.NEA0) == 0
        assert int(CipherAlg.NEA3) == 3
        assert int(IntegrityAlg.NIA1) == 1


class TestUsimCredential:
    def test_key_must_be_128_bits(self):
        with pytest.raises(ValueError):
            UsimCredential("imsi-00101123456789", b"short")

    def test_res_matches_xres(self):
        cred = UsimCredential("imsi-00101123456789", K)
        rand = b"\x01" * 16
        vector = cred.generate_vector(rand, sqn=1)
        assert cred.compute_res(rand) == vector.xres_star

    def test_res_differs_for_different_rand(self):
        cred = UsimCredential("imsi-00101123456789", K)
        assert cred.compute_res(b"\x01" * 16) != cred.compute_res(b"\x02" * 16)

    def test_wrong_key_fails_res_check(self):
        cred = UsimCredential("imsi-00101123456789", K)
        other = UsimCredential("imsi-00101123456789", bytes(16))
        rand = b"\x03" * 16
        assert cred.compute_res(rand) != other.compute_res(rand)

    def test_autn_verification(self):
        cred = UsimCredential("imsi-00101123456789", K)
        rand = b"\x04" * 16
        vector = cred.generate_vector(rand, sqn=7)
        assert cred.verify_autn(rand, vector.autn, sqn=7)
        assert not cred.verify_autn(rand, vector.autn, sqn=8)

    def test_kamf_depends_on_supi(self):
        cred = UsimCredential("imsi-00101123456789", K)
        rand = b"\x05" * 16
        vector = cred.generate_vector(rand, sqn=1)
        assert derive_kamf(vector.kausf, "imsi-a") != derive_kamf(vector.kausf, "imsi-b")


class TestSecurityContext:
    def _ctx(self, cipher=CipherAlg.NEA2, integrity=IntegrityAlg.NIA2):
        return SecurityContext(kamf=b"\xaa" * 32, cipher_alg=cipher, integrity_alg=integrity)

    def test_protect_unprotect_roundtrip(self):
        ctx = self._ctx()
        payload = b"nas message payload"
        assert ctx.unprotect(ctx.protect(payload)) == payload

    def test_null_cipher_is_identity(self):
        ctx = self._ctx(cipher=CipherAlg.NEA0)
        assert ctx.protect(b"plaintext") == b"plaintext"

    def test_non_null_cipher_changes_payload(self):
        ctx = self._ctx()
        assert ctx.protect(b"plaintext") != b"plaintext"

    def test_different_algorithms_produce_different_ciphertext(self):
        a = self._ctx(cipher=CipherAlg.NEA1).protect(b"payload-bytes")
        b = self._ctx(cipher=CipherAlg.NEA2).protect(b"payload-bytes")
        assert a != b

    def test_mac_verify(self):
        ctx = self._ctx()
        mac = ctx.mac(b"message")
        assert ctx.verify(b"message", mac)
        assert not ctx.verify(b"tampered", mac)

    def test_null_integrity_mac_is_zero(self):
        ctx = self._ctx(integrity=IntegrityAlg.NIA0)
        assert ctx.mac(b"anything") == b"\x00\x00\x00\x00"

    def test_kgnb_is_stable(self):
        ctx = self._ctx()
        assert ctx.kgnb() == ctx.kgnb()

    @given(st.binary(max_size=300))
    def test_protect_preserves_length(self, payload):
        ctx = SecurityContext(
            kamf=b"\xbb" * 32, cipher_alg=CipherAlg.NEA2, integrity_alg=IntegrityAlg.NIA2
        )
        assert len(ctx.protect(payload)) == len(payload)


class TestAlgorithmSelection:
    def test_picks_network_preference_order(self):
        cipher, integrity = select_algorithms(
            [CipherAlg.NEA1, CipherAlg.NEA2],
            [IntegrityAlg.NIA1, IntegrityAlg.NIA2],
            [CipherAlg.NEA2, CipherAlg.NEA1],
            [IntegrityAlg.NIA2, IntegrityAlg.NIA1],
        )
        assert cipher is CipherAlg.NEA2
        assert integrity is IntegrityAlg.NIA2

    def test_null_only_ue_with_permissive_network(self):
        cipher, integrity = select_algorithms(
            [CipherAlg.NEA0],
            [IntegrityAlg.NIA0],
            [CipherAlg.NEA2, CipherAlg.NEA0],
            [IntegrityAlg.NIA2, IntegrityAlg.NIA0],
        )
        assert cipher.is_null
        assert integrity.is_null

    def test_no_common_algorithm_raises(self):
        with pytest.raises(ValueError):
            select_algorithms(
                [CipherAlg.NEA0],
                [IntegrityAlg.NIA0],
                [CipherAlg.NEA2],
                [IntegrityAlg.NIA2],
            )
