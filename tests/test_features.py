"""Tests for featurization: one-hot encoding, flags, sliding windows."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.features import (
    DEFAULT_MESSAGE_VOCAB,
    FeatureSpec,
    WindowedDataset,
    sliding_windows,
)
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries


def record(t, msg, session=1, **kwargs):
    defaults = dict(protocol="RRC", direction="UL")
    defaults.update(kwargs)
    return MobiFlowRecord(timestamp=t, msg=msg, session_id=session, **defaults)


def simple_series():
    return TelemetrySeries(
        [
            record(0.00, "RRCSetupRequest", establishment_cause="mo-Data"),
            record(0.01, "RRCSetup", direction="DL"),
            record(0.02, "RRCSetupComplete"),
            record(0.03, "RegistrationRequest", protocol="NAS", suci="suci-001-01-x"),
            record(0.04, "AuthenticationRequest", protocol="NAS", direction="DL"),
        ]
    )


class TestFeatureSpec:
    def test_dim_matches_names(self):
        spec = FeatureSpec()
        assert len(spec.feature_names()) == spec.dim

    def test_subset_specs_have_smaller_dims(self):
        full = FeatureSpec()
        no_state = FeatureSpec(include_state=False)
        no_ids = FeatureSpec(include_identifiers=False)
        no_timing = FeatureSpec(include_timing=False)
        assert no_state.dim < full.dim
        assert no_ids.dim < full.dim
        assert no_timing.dim < full.dim
        assert len(no_state.feature_names()) == no_state.dim

    def test_encode_shape(self):
        spec = FeatureSpec()
        matrix = spec.encode_series(simple_series())
        assert matrix.shape == (5, spec.dim)
        assert matrix.dtype == np.float32

    def test_message_one_hot_sums_to_one(self):
        spec = FeatureSpec()
        matrix = spec.encode_series(simple_series())
        msg_block = matrix[:, : len(spec.message_vocab) + 1]
        assert np.all(msg_block.sum(axis=1) == 1.0)

    def test_unknown_message_falls_into_other_bucket(self):
        spec = FeatureSpec()
        series = TelemetrySeries([record(0.0, "SomethingNew")])
        matrix = spec.encode_series(series)
        other_col = len(spec.message_vocab)
        assert matrix[0, other_col] == 1.0

    def test_direction_encoding(self):
        spec = FeatureSpec()
        names = spec.feature_names()
        ul_col = names.index("dir=UL")
        dl_col = names.index("dir=DL")
        matrix = spec.encode_series(simple_series())
        assert matrix[0, ul_col] == 1.0 and matrix[0, dl_col] == 0.0
        assert matrix[1, dl_col] == 1.0 and matrix[1, ul_col] == 0.0

    def test_new_session_flag(self):
        spec = FeatureSpec()
        col = spec.feature_names().index("new_session")
        series = TelemetrySeries(
            [record(0.0, "A", session=1), record(0.1, "B", session=1), record(0.2, "C", session=2)]
        )
        matrix = spec.encode_series(series)
        assert list(matrix[:, col]) == [1.0, 0.0, 1.0]

    def test_tmsi_reuse_fires_on_third_usage_episode(self):
        spec = FeatureSpec(identifier_weight=1.0)
        col = spec.feature_names().index("tmsi_reused")
        series = TelemetrySeries(
            [
                record(0.0, "A", session=1, s_tmsi=0xAA),  # episode 1
                record(0.3, "B", session=1, s_tmsi=0xAA),  # same episode
                record(5.0, "C", session=2, s_tmsi=0xAA),  # episode 2 (benign re-reg)
                record(10.0, "D", session=3, s_tmsi=0xAA),  # episode 3: reuse!
                record(15.0, "E", session=4, s_tmsi=0xBB),  # fresh tmsi
            ]
        )
        matrix = spec.encode_series(series)
        assert list(matrix[:, col]) == [0.0, 0.0, 0.0, 1.0, 0.0]

    def test_tmsi_retries_merge_into_one_episode(self):
        """Duplicates/T300 retries within the horizon must not count as reuse."""
        spec = FeatureSpec(identifier_weight=1.0)
        col = spec.feature_names().index("tmsi_reused")
        series = TelemetrySeries(
            [
                record(0.0, "A", session=1, s_tmsi=0xAA),
                record(4.0, "B", session=2, s_tmsi=0xAA),  # episode 2
                record(4.4, "B", session=3, s_tmsi=0xAA),  # retry: same episode
                record(4.8, "B", session=4, s_tmsi=0xAA),  # retry: same episode
            ]
        )
        matrix = spec.encode_series(series)
        assert list(matrix[:, col]) == [0.0, 0.0, 0.0, 0.0]

    def test_identity_exposed_flag(self):
        spec = FeatureSpec(identifier_weight=1.0)
        col = spec.feature_names().index("identity_exposed")
        series = TelemetrySeries(
            [
                record(0.0, "A", suci="suci-001-01-xyz"),
                record(0.1, "B", suci="suci-null-001-01-123456789"),
                record(0.2, "C", supi="imsi-00101123456789"),
            ]
        )
        matrix = spec.encode_series(series)
        assert list(matrix[:, col]) == [0.0, 1.0, 1.0]

    def test_repeated_message_flag(self):
        spec = FeatureSpec()
        col = spec.feature_names().index("repeated_msg")
        series = TelemetrySeries([record(0.0, "A"), record(0.1, "A"), record(0.2, "B")])
        matrix = spec.encode_series(series)
        assert list(matrix[:, col]) == [0.0, 1.0, 0.0]

    def test_iat_buckets(self):
        spec = FeatureSpec(iat_buckets=(0.01, 0.1))
        names = spec.feature_names()
        fast = names.index("iat<0.01")
        mid = names.index("iat<0.1")
        slow = names.index("iat>=last")
        series = TelemetrySeries([record(0.0, "A"), record(0.005, "B"), record(1.0, "C")])
        matrix = spec.encode_series(series)
        assert matrix[0, fast] == 1.0  # first record: iat 0
        assert matrix[1, fast] == 1.0
        assert matrix[2, slow] == 1.0
        assert matrix[2, mid] == 0.0

    def test_encoding_is_causal(self):
        """Features of entry i must not depend on entries after i."""
        spec = FeatureSpec()
        series_full = TelemetrySeries(
            [record(0.0, "A", session=1, s_tmsi=1), record(0.1, "B", session=2, s_tmsi=1)]
        )
        series_prefix = TelemetrySeries([record(0.0, "A", session=1, s_tmsi=1)])
        full = spec.encode_series(series_full)
        prefix = spec.encode_series(series_prefix)
        assert np.array_equal(full[0], prefix[0])


class TestSlidingWindows:
    def test_window_count_and_shape(self):
        matrix = np.arange(20, dtype=np.float32).reshape(5, 4)
        windows = sliding_windows(matrix, 3)
        assert windows.shape == (3, 12)

    def test_window_content(self):
        matrix = np.arange(6, dtype=np.float32).reshape(3, 2)
        windows = sliding_windows(matrix, 2)
        assert list(windows[0]) == [0, 1, 2, 3]
        assert list(windows[1]) == [2, 3, 4, 5]

    def test_too_short_series_gives_empty(self):
        matrix = np.zeros((2, 4), dtype=np.float32)
        assert sliding_windows(matrix, 3).shape == (0, 12)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((3, 2)), 0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=12))
    def test_window_count_property(self, window, rows):
        matrix = np.zeros((rows, 3), dtype=np.float32)
        windows = sliding_windows(matrix, window)
        expected = max(0, rows - window + 1)
        assert windows.shape == (expected, window * 3)


class TestWindowedDataset:
    def test_from_series(self):
        spec = FeatureSpec()
        dataset = WindowedDataset.from_series(simple_series(), spec, window=3)
        assert dataset.num_windows == 3
        assert dataset.windows.shape == (3, 3 * spec.dim)
        assert dataset.per_record.shape == (5, spec.dim)

    def test_record_range(self):
        spec = FeatureSpec()
        dataset = WindowedDataset.from_series(simple_series(), spec, window=3)
        assert dataset.record_range(0) == (0, 3)
        assert dataset.record_range(2) == (2, 5)
        with pytest.raises(IndexError):
            dataset.record_range(3)
