"""Tests for the repro.llmfast verdict-plane fast path (PR 10).

Unit coverage for the settings, the vectorized retriever (seed-ranking
identical), the compiled prompt builder (byte-identical), the verdict
cache and trace signatures, the storm dispatcher, and the analyzer
xApp's cache/coalesce/shed ledger — plus the five-scenario live
decision-identity contract against the seed analyzer path.
"""

import copy

import numpy as np
import pytest

from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.core.llm_analyzer import SDL_VERDICT_NS, LlmAnalyzerXApp
from repro.core.mobiwatch import AnomalyEvent, MobiWatchXApp
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.llm.analyst import ExpertAnalyst
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.llm.knowledge import CellularKnowledgeBase
from repro.llm.prompt import PromptTemplate
from repro.llmfast import (
    CompiledPromptBuilder,
    LlmfastSettings,
    StormDispatcher,
    VectorizedRetriever,
    VerdictCache,
)
from repro.llmfast.cache import CachedVerdict, trace_signature
from repro.llmfast.workload import (
    benign_trace,
    decision_tuple,
    distinct_traces,
    duplicate_heavy,
    null_cipher_trace,
    storm_trace,
)
from repro.megabatch import MegabatchSettings
from repro.oran.ric import NearRtRic
from repro.ran.links import InterfaceLink
from repro.ran.network import NetworkConfig
from repro.sim import Simulator
from repro.telemetry.mobiflow import MobiFlowRecord

from tests.test_megabatch import ATTACK_SCENARIOS


# ---------------------------------------------------------------------------
# settings


class TestSettings:
    def test_defaults_are_seed_path(self):
        settings = LlmfastSettings()
        assert not settings.any_enabled
        assert not settings.fast_submit_enabled

    def test_fast_submit_needs_an_xapp_flag(self):
        assert not LlmfastSettings(vectorized_rag=True).fast_submit_enabled
        assert not LlmfastSettings(compiled_prompts=True).fast_submit_enabled
        assert LlmfastSettings(verdict_cache=True).fast_submit_enabled
        assert LlmfastSettings(coalesce=True).fast_submit_enabled
        assert LlmfastSettings(dispatch=True).fast_submit_enabled

    def test_all_on(self):
        settings = LlmfastSettings.all_on()
        assert settings.any_enabled and settings.fast_submit_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_capacity": 0},
            {"prompt_cache_capacity": 0},
            {"max_inflight": 0},
            {"queue_capacity": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LlmfastSettings(**kwargs)

    def test_default_config_keeps_seed_analyzer(self):
        config = XsecConfig()
        assert not config.llmfast.any_enabled
        sim = Simulator(seed=0)
        e2 = InterfaceLink(sim, "E2")
        e2.connect(a_handler=lambda m: None, b_handler=lambda m: None)
        ric = NearRtRic(sim, e2)
        watch = MobiWatchXApp(ric, config)
        analyzer = LlmAnalyzerXApp(ric, watch, config=config)
        assert analyzer._fast is None
        assert analyzer._dispatcher is None
        assert analyzer.analyst.llmfast is None


# ---------------------------------------------------------------------------
# vectorized retrieval


class TestVectorizedRetrieval:
    def test_rankings_identical_to_seed(self):
        knowledge = CellularKnowledgeBase()
        retriever = VectorizedRetriever(knowledge)
        for records in distinct_traces(16):
            for top_k in (1, 2, 4, 10):
                assert retriever.retrieve(records, top_k=top_k) == knowledge.retrieve(
                    records, top_k=top_k
                )

    def test_empty_and_unknown_traces(self):
        knowledge = CellularKnowledgeBase()
        retriever = VectorizedRetriever(knowledge)
        assert retriever.retrieve([]) == knowledge.retrieve([])
        unknown = [
            MobiFlowRecord(
                timestamp=0.0, msg="TotallyUnknownMessage", protocol="RRC", direction="UL"
            )
        ]
        assert retriever.retrieve(unknown) == knowledge.retrieve(unknown)

    def test_result_memo_hits_on_duplicates(self):
        retriever = VectorizedRetriever(CellularKnowledgeBase())
        trace = storm_trace()
        first = retriever.retrieve(trace)
        again = retriever.retrieve(list(trace))  # same content, new list
        assert first == again
        assert retriever.queries == 2
        assert retriever.memo_hits == 1


# ---------------------------------------------------------------------------
# compiled prompt assembly


class TestCompiledPrompts:
    def test_byte_identical_without_snippets(self):
        builder = CompiledPromptBuilder()
        for records in distinct_traces(16):
            assert builder.render(records) == PromptTemplate().render(records)

    def test_byte_identical_with_snippets(self):
        knowledge = CellularKnowledgeBase()
        builder = CompiledPromptBuilder()
        for records in distinct_traces(16):
            snippets = knowledge.retrieve(records)
            if not snippets:
                continue
            template = PromptTemplate()
            template.retrieved_snippets = list(snippets)
            assert builder.render(records, snippets) == template.render(records)

    def test_line_cache_hits_on_duplicates(self):
        builder = CompiledPromptBuilder()
        trace = benign_trace()
        builder.render(trace)
        hits_before = builder.line_cache_hits
        builder.render(trace)
        assert builder.line_cache_hits - hits_before == len(trace)

    def test_tiny_line_cache_never_wrong(self):
        builder = CompiledPromptBuilder(line_cache_capacity=2)
        for records in distinct_traces(6):
            assert builder.render(records) == PromptTemplate().render(records)


# ---------------------------------------------------------------------------
# trace signatures and the verdict cache


def _signature(records, model="chatgpt-4o", use_rag=False):
    from repro.llm.knowledge import AnalysisEngine

    engine = AnalysisEngine(CellularKnowledgeBase())
    snippets = ()
    if use_rag:
        snippets = tuple(CellularKnowledgeBase().retrieve(records))
    return trace_signature(
        records, engine.analyze(records), model=model, use_rag=use_rag, snippets=snippets
    )


class TestTraceSignatures:
    def test_identical_content_same_signature(self):
        assert _signature(storm_trace()) == _signature(storm_trace())

    def test_msg_sequence_discriminates(self):
        assert _signature(storm_trace()) != _signature(benign_trace())
        assert _signature(benign_trace()) != _signature(benign_trace(pad=1))

    def test_model_and_rag_discriminate(self):
        trace = storm_trace()
        assert _signature(trace, model="chatgpt-4o") != _signature(trace, model="copilot")
        assert _signature(trace, use_rag=False) != _signature(trace, use_rag=True)

    def test_sessions_and_timestamps_do_not_discriminate(self):
        # The decision is a pure function of msgs + matches + model + RAG;
        # near-duplicates (same shapes, shifted time/session) share one
        # signature and one provider round trip.
        assert _signature(benign_trace(session=1, t0=0.0)) == _signature(
            benign_trace(session=9, t0=50.0)
        )


class TestVerdictCache:
    def _entry(self, tag="x"):
        from repro.llm.response import AnalysisResponse

        return CachedVerdict(
            response=AnalysisResponse(verdict="benign", explanation=tag),
            prompt=tag,
            model="chatgpt-4o",
        )

    def test_hit_miss_and_lru_eviction(self):
        cache = VerdictCache(capacity=2)
        sig_a, sig_b, sig_c = (
            _signature(benign_trace(pad=i)) for i in range(3)
        )
        cache.put(sig_a, self._entry("a"))
        cache.put(sig_b, self._entry("b"))
        assert cache.get(sig_a).prompt == "a"  # refreshes a's recency
        cache.put(sig_c, self._entry("c"))  # evicts b (LRU)
        assert cache.get(sig_b) is None
        assert cache.get(sig_a) is not None
        assert cache.get(sig_c) is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert stats["hits"] == 3 and stats["misses"] == 1


# ---------------------------------------------------------------------------
# the fast analyst


class TestAnalystFastPath:
    def _analysts(self, use_rag=True, model="chatgpt-4o"):
        server = SimulatedLlmServer()
        seed = ExpertAnalyst(
            client=LlmClient(server=server, model=model), use_rag=use_rag
        )
        fast = ExpertAnalyst(
            client=LlmClient(server=server, model=model),
            use_rag=use_rag,
            llmfast=LlmfastSettings(
                verdict_cache=True, vectorized_rag=True, compiled_prompts=True
            ),
        )
        return seed, fast

    def test_decisions_identical_on_duplicate_heavy_workload(self):
        seed, fast = self._analysts()
        workload = duplicate_heavy(distinct_traces(8), 64)
        for records in workload:
            assert decision_tuple(seed.analyze(records).response) == decision_tuple(
                fast.analyze(records).response
            )
        assert fast.analyses_run == 8  # one provider round per distinct trace
        assert fast.cache_hits == 64 - 8
        assert fast.analyze(workload[0]).from_cache is True

    def test_seed_analyst_never_caches(self):
        seed, _ = self._analysts()
        trace = storm_trace()
        seed.analyze(trace)
        seed.analyze(trace)
        assert seed.analyses_run == 2
        assert seed.cache_hits == 0
        assert seed.cache_stats == {}


# ---------------------------------------------------------------------------
# the storm dispatcher


class TestStormDispatcher:
    def test_dispatches_until_inflight_full_then_queues(self):
        d = StormDispatcher(max_inflight=2, queue_capacity=4)
        assert d.submit(1.0, "a") == ("dispatch", "a")
        assert d.submit(5.0, "b") == ("dispatch", "b")
        assert d.submit(9.0, "c") == ("queued", None)
        assert d.inflight == 2 and d.backlog == 1

    def test_complete_fires_highest_priority_first(self):
        d = StormDispatcher(max_inflight=1, queue_capacity=8)
        d.submit(1.0, "first")
        d.submit(2.0, "low")
        d.submit(7.0, "high")
        d.submit(7.0, "high-later")
        assert d.complete() == "high"  # severity order
        assert d.complete() == "high-later"  # FIFO within ties
        assert d.complete() == "low"
        assert d.complete() is None  # backlog drained, slot released
        assert d.inflight == 0

    def test_sheds_lowest_priority_newcomer(self):
        d = StormDispatcher(max_inflight=1, queue_capacity=1)
        d.submit(5.0, "inflight")
        d.submit(4.0, "queued")
        outcome, victim = d.submit(1.0, "weak")  # weakest: shed itself
        assert (outcome, victim) == ("shed", "weak")
        assert d.backlog == 1

    def test_sheds_displaced_queued_victim(self):
        d = StormDispatcher(max_inflight=1, queue_capacity=1)
        d.submit(5.0, "inflight")
        d.submit(1.0, "weak-queued")
        outcome, victim = d.submit(9.0, "strong")
        assert (outcome, victim) == ("shed", "weak-queued")
        assert d.complete() == "strong"
        assert d.shed == 1 and d.dispatched == 2

    def test_unmatched_complete_raises(self):
        with pytest.raises(RuntimeError):
            StormDispatcher().complete()


# ---------------------------------------------------------------------------
# the analyzer xApp fast path (unit level)


def make_stack(llmfast=None, megabatch=None, model="chatgpt-4o", cooldown=10.0):
    config = XsecConfig(
        llm_session_cooldown_s=cooldown,
        llm_model=model,
        llmfast=llmfast or LlmfastSettings(),
        megabatch=megabatch or MegabatchSettings(),
    )
    sim = Simulator(seed=0)
    e2 = InterfaceLink(sim, "E2")
    e2.connect(a_handler=lambda m: None, b_handler=lambda m: None)
    ric = NearRtRic(sim, e2)
    watch = MobiWatchXApp(ric, config)
    analyzer = LlmAnalyzerXApp(ric, watch, config=config)
    watch.start_called = True
    analyzer.start()
    return sim, ric, watch, analyzer


def feed(watch, records):
    from tests.test_core_units import indication

    watch.on_indication(indication(records))


def anomaly(session=1, ts=0.0, indices=(0,), score=1.0):
    return AnomalyEvent(
        detected_at=ts,
        session_id=session,
        rnti=0x10,
        s_tmsi=None,
        score=score,
        threshold=0.5,
        record_indices=indices,
        newest_record_ts=ts,
    )


def assert_ledger_invariant(analyzer):
    led = analyzer.ledger()
    assert led["offered"] == (
        led["analyzed"]
        + led["coalesced"]
        + led["cache_hits"]
        + led["shed"]
        + led["pending"]
    ), led


class TestAnalyzerFastPath:
    def test_cache_hit_skips_provider_round_trip(self):
        sim, ric, watch, analyzer = make_stack(
            llmfast=LlmfastSettings(verdict_cache=True)
        )
        feed(watch, storm_trace())
        analyzer._on_anomaly(anomaly(session=1, ts=0.0, indices=(0,)))
        sim.run(until=15.0)
        assert len(analyzer.verdicts) == 1
        # A different session raising the same trace hits the cache: no
        # second query, verdict delivered without the provider latency.
        analyzer._on_anomaly(anomaly(session=2, ts=15.0, indices=(0,)))
        sim.run(until=15.1)
        assert analyzer.queries_sent == 1
        assert analyzer.cache_hits == 1
        assert len(analyzer.verdicts) == 2
        assert analyzer.verdicts[1].verdict.from_cache is True
        assert decision_tuple(analyzer.verdicts[0].verdict.response) == decision_tuple(
            analyzer.verdicts[1].verdict.response
        )
        assert_ledger_invariant(analyzer)
        assert analyzer.pending == 0

    def test_concurrent_identical_queries_coalesce(self):
        sim, ric, watch, analyzer = make_stack(
            llmfast=LlmfastSettings(verdict_cache=True, coalesce=True)
        )
        feed(watch, storm_trace())
        for session in (1, 2, 3):
            analyzer._on_anomaly(anomaly(session=session, indices=(0,)))
        assert analyzer.queries_sent == 1  # one in-flight request, two waiters
        assert analyzer.coalesced == 2
        sim.run(until=15.0)
        assert len(analyzer.verdicts) == 3  # the verdict fanned out
        sessions = sorted(v.anomaly.session_id for v in analyzer.verdicts)
        assert sessions == [1, 2, 3]
        decisions = {
            decision_tuple(v.verdict.response) for v in analyzer.verdicts
        }
        assert len(decisions) == 1
        assert_ledger_invariant(analyzer)
        assert analyzer.pending == 0

    def test_dispatch_bounds_inflight_and_sheds_counted(self):
        sim, ric, watch, analyzer = make_stack(
            llmfast=LlmfastSettings(dispatch=True, max_inflight=1, queue_capacity=1)
        )
        records = storm_trace() + benign_trace(session=30) + null_cipher_trace(session=31)
        feed(watch, records)
        # Three distinct-context anomalies in one burst: one fires, one
        # queues, the weakest is shed — counted, never silent.
        analyzer._on_anomaly(anomaly(session=1, indices=(0,), score=5.0))
        analyzer._on_anomaly(anomaly(session=2, indices=(1,), score=4.0))
        analyzer._on_anomaly(anomaly(session=3, indices=(2,), score=0.6))
        assert analyzer.queries_sent == 1
        assert analyzer.shed == 1
        assert analyzer.pending == 2
        assert_ledger_invariant(analyzer)
        sim.run(until=60.0)
        assert len(analyzer.verdicts) == 2
        assert analyzer.queries_sent == 2  # the queued one fired on completion
        assert analyzer.pending == 0
        assert_ledger_invariant(analyzer)

    def test_dispatch_persists_fanout_in_one_batched_write(self):
        sim, ric, watch, analyzer = make_stack(llmfast=LlmfastSettings.all_on())
        feed(watch, storm_trace())
        writes_before = ric.sdl.writes
        for session in (1, 2):
            analyzer._on_anomaly(anomaly(session=session, indices=(0,)))
        sim.run(until=15.0)
        assert len(analyzer.verdicts) == 2
        assert len(ric.sdl.keys(SDL_VERDICT_NS)) == 2
        # Primary + coalesced waiter persisted as ONE acked write.
        assert ric.sdl.writes == writes_before + 1

    def test_cooldown_suppression_precedes_the_ledger(self):
        sim, ric, watch, analyzer = make_stack(llmfast=LlmfastSettings.all_on())
        feed(watch, storm_trace())
        analyzer._on_anomaly(anomaly(session=1, ts=0.0, indices=(0,)))
        analyzer._on_anomaly(anomaly(session=1, ts=1.0, indices=(0,)))
        assert analyzer.queries_suppressed == 1
        assert analyzer.offered == 1  # suppressed queries never enter the ledger
        sim.run(until=15.0)
        assert_ledger_invariant(analyzer)

    def test_human_review_escalation_on_fast_path(self):
        # copilot only perceives signaling storms: a null-cipher trace
        # comes back benign, contradicting the detector -> human review.
        sim, ric, watch, analyzer = make_stack(
            llmfast=LlmfastSettings.all_on(), model="copilot"
        )
        trace = null_cipher_trace(session=1)
        feed(watch, trace)
        # indices anchor context_for at the end of the trace so the
        # analyst sees the whole null-cipher sequence.
        analyzer._on_anomaly(anomaly(session=1, indices=(len(trace) - 1,)))
        sim.run(until=15.0)
        assert len(analyzer.verdicts) == 1
        assert analyzer.verdicts[0].needs_human_review
        assert len(analyzer.human_review_queue) == 1
        # The cached repeat escalates identically.
        analyzer._on_anomaly(anomaly(session=2, ts=14.0, indices=(len(trace) - 1,)))
        sim.run(until=15.5)
        assert analyzer.cache_hits == 1
        assert len(analyzer.human_review_queue) == 2


class TestVerdictKeys:
    def test_sdl_keys_are_monotonic_and_wide(self):
        sim, ric, watch, analyzer = make_stack()
        feed(watch, storm_trace() + benign_trace(session=30))
        analyzer._on_anomaly(anomaly(session=1, indices=(0,)))
        analyzer._on_anomaly(anomaly(session=2, indices=(1,)))
        sim.run(until=30.0)
        keys = ric.sdl.keys(SDL_VERDICT_NS)
        assert keys == ["000000000001", "000000000002"]
        # The counter is decoupled from len(self.verdicts): past the old
        # 6-digit pad width the keys keep sorting (and never collide).
        analyzer._verdict_seq = 999_999
        analyzer._on_anomaly(anomaly(session=3, ts=40.0, indices=(0,)))
        sim.run(until=80.0)
        keys = ric.sdl.keys(SDL_VERDICT_NS)
        assert len(keys) == 3
        assert keys[-1] == "000001000000"
        assert keys == sorted(keys)


class TestSessionEvictionPruning:
    def test_eviction_prunes_cooldown_state(self):
        sim, ric, watch, analyzer = make_stack(
            llmfast=LlmfastSettings.all_on(),
            megabatch=MegabatchSettings(evict_on_release=True),
        )
        trace = benign_trace(session=1)
        feed(watch, trace[:-1])  # hold back the RRCRelease for now
        analyzer._on_anomaly(anomaly(session=1, ts=0.0, indices=(0,)))
        assert 1 in analyzer._session_last_query
        feed(watch, trace[-1:])  # the release drives the eviction
        assert 1 not in analyzer._session_last_query
        assert analyzer.sessions_evicted == 1
        # The evicted session re-appearing starts from a clean slate:
        # its next anomaly is not cooldown-suppressed.
        sim.run(until=15.0)
        analyzer._on_anomaly(anomaly(session=1, ts=1.0, indices=(0,)))
        assert analyzer.queries_suppressed == 0
        assert_ledger_invariant(analyzer)

    def test_seed_path_prunes_too(self):
        # The unbounded _session_last_query growth was a seed bug; the
        # pruning hook is active regardless of llmfast flags.
        sim, ric, watch, analyzer = make_stack(
            megabatch=MegabatchSettings(evict_on_release=True)
        )
        trace = benign_trace(session=1)
        feed(watch, trace[:-1])
        analyzer._on_anomaly(anomaly(session=1, indices=(0,)))
        feed(watch, trace[-1:])
        assert analyzer._session_last_query == {}
        assert analyzer.sessions_evicted == 1


# ---------------------------------------------------------------------------
# live five-scenario decision identity (seed vs all-flags-on)


@pytest.fixture(scope="module")
def storm_detector():
    capture = generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )
    config = XsecConfig()
    windows = capture.labeled(config.spec, config.window, "benign").windowed.windows
    det_config = XsecConfig(detector="lstm", train_epochs=6)
    detector = build_detector(det_config)
    detector.fit(np.asarray(windows), epochs=6, lr=det_config.train_lr)
    # Lower operating point so every scenario produces verdict traffic
    # (identically for the seed and fast runs under comparison).
    detector.threshold.threshold *= 0.45
    return detector


def run_live(detector, llmfast, attack=None, net_kwargs=None, until=20.0):
    config = XsecConfig(
        detector=detector.name,
        train_epochs=6,
        llmfast=llmfast,
        llm_session_cooldown_s=1.0,
    )
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=77, **(net_kwargs or {})))
    xsec.deploy_detector(copy.deepcopy(detector))
    for profile in ("pixel5", "oai_ue"):
        ue = xsec.net.add_ue(profile)
        xsec.net.sim.schedule(0.5, ue.start_session)
    if attack is not None:
        attack(xsec.net).arm()
    xsec.run(until=until)
    return xsec


def verdict_decisions(xsec):
    """The per-verdict decision set, excluding completed_at (cache hits
    land earlier than provider round trips — by design)."""
    return sorted(
        (
            v.anomaly.detected_at,
            v.anomaly.session_id,
            v.confirmed,
            v.verdict.response.top_attacks[0][0]
            if v.verdict.response.top_attacks
            else "",
            v.needs_human_review,
        )
        for v in xsec.analyzer.verdicts
    )


class TestLiveScenarioDecisionIdentity:
    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_all_flags_on_decisions_identical_to_seed(self, storm_detector, scenario):
        factory, net_kwargs = ATTACK_SCENARIOS[scenario]
        seed_run = run_live(
            storm_detector, LlmfastSettings(), attack=factory, net_kwargs=net_kwargs
        )
        fast_run = run_live(
            storm_detector,
            LlmfastSettings.all_on(),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        assert len(seed_run.analyzer.verdicts) > 0
        assert verdict_decisions(fast_run) == verdict_decisions(seed_run)
        assert (
            fast_run.analyzer.queries_suppressed == seed_run.analyzer.queries_suppressed
        )
        assert_ledger_invariant(fast_run.analyzer)
        assert fast_run.analyzer.pending == 0
        # The fast run never issues more provider queries than the seed.
        assert fast_run.analyzer.queries_sent <= seed_run.analyzer.queries_sent
