"""Integration tests: full 5G procedures over the assembled network."""

import pytest

from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.channel import ChannelConfig
from repro.ran.nas import FiveGmmState
from repro.ran.rrc import RrcState
from repro.ran.security import CipherAlg, IntegrityAlg
from repro.telemetry import MobiFlowCollector


def run_session(net, ue, until=30.0):
    outcomes = []
    ue.start_session(on_end=lambda u, o: outcomes.append(o))
    net.run(until=until)
    return outcomes


class TestRegistration:
    def test_initial_registration_completes(self):
        net = FiveGNetwork(NetworkConfig(seed=1))
        ue = net.add_ue("pixel5")
        outcomes = run_session(net, ue)
        assert outcomes == ["completed"]
        assert net.amf.registrations_accepted == 1
        assert ue.guti is not None
        assert ue.s_tmsi is not None
        assert ue.rrc_state is RrcState.IDLE

    def test_message_sequence_matches_procedure(self):
        net = FiveGNetwork(NetworkConfig(seed=1))
        ue = net.add_ue("pixel5")
        run_session(net, ue)
        series = MobiFlowCollector().parse_stream(net.pcap)
        names = series.message_names()
        # Relative ordering of the registration procedure.
        for earlier, later in [
            ("RRCSetupRequest", "RRCSetup"),
            ("RRCSetup", "RRCSetupComplete"),
            ("RRCSetupComplete", "RegistrationRequest"),
            ("RegistrationRequest", "AuthenticationRequest"),
            ("AuthenticationRequest", "AuthenticationResponse"),
            ("AuthenticationResponse", "NASSecurityModeCommand"),
            ("NASSecurityModeCommand", "NASSecurityModeComplete"),
            ("NASSecurityModeComplete", "RegistrationAccept"),
            ("RegistrationAccept", "RegistrationComplete"),
        ]:
            assert names.index(earlier) < names.index(later), (earlier, later)

    def test_negotiated_algorithms_are_non_null_for_normal_ue(self):
        net = FiveGNetwork(NetworkConfig(seed=2))
        ue = net.add_ue("pixel6")
        run_session(net, ue)
        assert ue.last_cipher is CipherAlg.NEA2
        assert ue.last_integrity is IntegrityAlg.NIA2

    def test_reregistration_uses_guti(self):
        net = FiveGNetwork(NetworkConfig(seed=3))
        ue = net.add_ue("pixel5")
        run_session(net, ue)
        first_guti = ue.guti
        run_session(net, ue, until=60.0)
        assert ue.guti is not None and ue.guti != first_guti
        series = MobiFlowCollector().parse_stream(net.pcap)
        reg_requests = [r for r in series if r.msg == "RegistrationRequest"]
        assert len(reg_requests) == 2
        # Second registration identifies by TMSI, not SUCI.
        assert reg_requests[0].suci is not None
        assert reg_requests[1].suci is None
        assert reg_requests[1].s_tmsi is not None

    def test_concurrent_ues_all_register(self):
        net = FiveGNetwork(NetworkConfig(seed=4))
        ues = [net.add_ue(p) for p in ("pixel5", "pixel6", "galaxy_a22", "galaxy_a53")]
        for i, ue in enumerate(ues):
            net.sim.schedule(0.05 * i, ue.start_session)
        net.run(until=30.0)
        assert net.amf.registrations_accepted == 4
        assert all(ue.guti is not None for ue in ues)

    def test_unknown_subscriber_rejected(self):
        net = FiveGNetwork(NetworkConfig(seed=5))
        ue = net.add_ue("pixel5")
        # Corrupt the UE's identity so deconcealment fails.
        ue.make_suci = lambda: "suci-001-01-unknownunknown"
        ue.start_session()
        net.run(until=10.0)
        assert net.amf.registrations_rejected == 1
        assert net.amf.registrations_accepted == 0


class TestRelease:
    def test_quiet_ue_released_by_inactivity_timer(self):
        net = FiveGNetwork(NetworkConfig(seed=6))
        # deregister_prob=0 profile variant: clone pixel5 but never deregister
        from dataclasses import replace

        from repro.ran.ue import PROFILES

        lazy = replace(PROFILES["pixel5"], deregister_prob=0.0, name="lazy")
        ue = net.add_ue(lazy)
        outcomes = run_session(net, ue, until=60.0)
        assert outcomes == ["completed"]
        assert ue.rrc_state is RrcState.IDLE
        series = MobiFlowCollector().parse_stream(net.pcap)
        names = series.message_names()
        assert "RRCRelease" in names
        assert "DeregistrationRequest" not in names

    def test_deregistration_flow(self):
        from dataclasses import replace

        from repro.ran.ue import PROFILES

        net = FiveGNetwork(NetworkConfig(seed=7))
        eager = replace(PROFILES["pixel5"], deregister_prob=1.0, name="eager")
        ue = net.add_ue(eager)
        run_session(net, ue)
        assert ue.fivegmm_state is FiveGmmState.DEREGISTERED
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "DeregistrationRequest" in names
        assert "DeregistrationAccept" in names
        assert "RRCRelease" in names

    def test_cu_context_count_returns_to_zero(self):
        net = FiveGNetwork(NetworkConfig(seed=8))
        ue = net.add_ue("oai_ue")
        run_session(net, ue, until=60.0)
        assert net.cu.active_contexts == 0


class TestNoiseResilience:
    def test_sessions_complete_despite_setup_loss(self):
        config = NetworkConfig(seed=9, channel=ChannelConfig(setup_loss_prob=0.5))
        net = FiveGNetwork(config)
        ue = net.add_ue("pixel5")
        outcomes = run_session(net, ue, until=60.0)
        # T300 retries recover from losses (0.5^4 residual failure odds,
        # and seed 9 is a passing draw).
        assert outcomes == ["completed"]

    def test_duplicates_do_not_break_sessions(self):
        config = NetworkConfig(seed=10, channel=ChannelConfig(duplicate_prob=0.2))
        net = FiveGNetwork(config)
        ues = [net.add_ue("pixel5"), net.add_ue("galaxy_a53")]
        for i, ue in enumerate(ues):
            net.sim.schedule(0.3 * i, ue.start_session)
        net.run(until=60.0)
        assert net.amf.registrations_accepted >= 2

    def test_simulation_is_deterministic(self):
        def capture_bytes(seed):
            net = FiveGNetwork(NetworkConfig(seed=seed))
            ue = net.add_ue("pixel5")
            ue.start_session()
            net.run(until=30.0)
            return net.pcap.to_bytes()

        assert capture_bytes(11) == capture_bytes(11)
        assert capture_bytes(11) != capture_bytes(12)


class TestPagingAndServiceRequest:
    def _registered_idle_ue(self, seed=20):
        from dataclasses import replace

        from repro.ran.ue import PROFILES

        net = FiveGNetwork(NetworkConfig(seed=seed))
        lazy = replace(PROFILES["pixel5"], deregister_prob=0.0, name="lazy")
        ue = net.add_ue(lazy)
        ue.start_session()
        net.run(until=30.0)
        assert ue.fivegmm_state is FiveGmmState.REGISTERED
        assert ue.rrc_state is RrcState.IDLE
        return net, ue

    def test_paged_ue_answers_with_service_request(self):
        net, ue = self._registered_idle_ue()
        assert net.amf.page_supi(str(ue.supi)) is True
        net.run(until=60.0)
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "Paging" in names
        assert "ServiceRequest" in names
        assert "ServiceAccept" in names
        assert names.count("RegistrationRequest") == 1  # only the first attach
        assert net.amf.service_requests_accepted == 1

    def test_mt_session_uses_mt_access_cause(self):
        net, ue = self._registered_idle_ue(seed=21)
        net.amf.page_supi(str(ue.supi))
        net.run(until=60.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        setups = [r for r in series if r.msg == "RRCSetupRequest"]
        assert setups[-1].establishment_cause == "mt-Access"

    def test_guti_refreshed_after_service(self):
        net, ue = self._registered_idle_ue(seed=22)
        old_guti = ue.guti
        old_tmsi = ue.s_tmsi
        net.amf.page_supi(str(ue.supi))
        net.run(until=60.0)
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "ConfigurationUpdateCommand" in names
        assert ue.guti != old_guti
        assert ue.s_tmsi != old_tmsi

    def test_paging_deregistered_ue_fails(self):
        net = FiveGNetwork(NetworkConfig(seed=23))
        from dataclasses import replace

        from repro.ran.ue import PROFILES

        eager = replace(PROFILES["pixel5"], deregister_prob=1.0, name="eager")
        ue = net.add_ue(eager)
        ue.start_session()
        net.run(until=30.0)
        assert ue.fivegmm_state is FiveGmmState.DEREGISTERED
        assert net.amf.page_supi(str(ue.supi)) is False

    def test_paging_connected_ue_fails(self):
        net = FiveGNetwork(NetworkConfig(seed=24))
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=1.5)  # mid-session
        assert net.amf.page_supi(str(ue.supi)) is False

    def test_unknown_supi_page_fails(self):
        net = FiveGNetwork(NetworkConfig(seed=25))
        assert net.amf.page_supi("imsi-00101999999999") is False

    def test_paged_session_completes_and_ue_remains_registered(self):
        net, ue = self._registered_idle_ue(seed=26)
        net.amf.page_supi(str(ue.supi))
        net.run(until=80.0)
        assert ue.rrc_state is RrcState.IDLE
        assert ue.fivegmm_state is FiveGmmState.REGISTERED
        # And pageable again with the refreshed identity.
        assert net.amf.page_supi(str(ue.supi)) is True

    def test_scenario_generates_mt_sessions(self):
        from repro.experiments.colosseum import ColosseumScenario, run_scenario

        net = FiveGNetwork(NetworkConfig(seed=27))
        stats = run_scenario(
            net,
            ColosseumScenario(
                duration_s=120.0, mean_think_time_s=4.0, mt_session_fraction=0.5
            ),
        )
        assert stats.mt_sessions_paged > 0
        names = MobiFlowCollector().parse_stream(net.pcap).message_names()
        assert "ServiceAccept" in names


class TestProvisioning:
    def test_unknown_profile_rejected(self):
        net = FiveGNetwork()
        with pytest.raises(ValueError, match="unknown profile"):
            net.add_ue("iphone99")

    def test_supis_are_unique(self):
        net = FiveGNetwork()
        supis = {str(net.add_ue("pixel5").supi) for _ in range(10)}
        assert len(supis) == 10
