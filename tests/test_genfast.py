"""repro.genfast: equality contracts, columnar wire, sim fast lane, gates.

The generation/ingest fast lane trades representation for speed only where
the result is provably the same, so most tests here are equality tests:

- defaults keep the seed path (all genfast flags off, seed components);
- the one-pass vectorized featurizer is bit-identical (float64 arithmetic,
  float32 storage) to the seed ``StreamingEncoder`` on captures from each
  of the five attacks' scenarios plus a benign mix;
- the columnar TLV wire decodes to the exact per-record stream whose
  per-record encoding is byte-identical to the seed batch payload;
- a live pipeline with every genfast flag on produces the bit-identical
  ``AnomalyEvent`` stream and SDL telemetry contents;
- the golden-vector fixture freezes the feature column layout itself.

Plus the satellite regressions: the event-queue tombstone compaction bound,
and the GUTI-parse-error counter.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.core.mobiwatch import SDL_TELEMETRY_NS
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.genfast.bench import (
    BASELINE_SLACK,
    END_TO_END_SINGLE_CORE_MIN,
    END_TO_END_SPEEDUP_MIN,
    FEATURIZATION_SPEEDUP_MIN,
    GenfastBenchResult,
    violations,
)
from repro.genfast.settings import GenfastSettings
from repro.genfast.workload import (
    GenfastWorkloadConfig,
    field_stream,
    lanes_equal,
    run_fast_lane,
    run_seed_lane,
)
from repro.obs.metrics import MetricsRegistry
from repro.oran.sdl import SharedDataLayer
from repro.ran import nas as nas_messages
from repro.ran import ngap
from repro.ran.core_network import AmfConfig
from repro.ran.messages import MessageError
from repro.ran.network import FiveGNetwork, NetworkConfig
from repro.ran.rrc import RrcSetupRequest
from repro.ran.templates import MessageTemplate
from repro.scale.batcher import BoundedBatcher
from repro.scale.sharded_sdl import ShardedSdl
from repro.sim.engine import EventQueue, SimulationError, Simulator
from repro.sim.fastlane import FleetTicker
from repro.telemetry import encoder as telemetry_encoder
from repro.telemetry.batch import MobiFlowBatch, MobiFlowBatchBuilder
from repro.telemetry.collector import MobiFlowCollector
from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.mobiflow import MobiFlowRecord
from repro.telemetry.vectorized import encode_batch, windowed_from_batch
from repro import wire

FIXTURES = Path(__file__).parent / "fixtures"


# ---------------------------------------------------------------------------
# settings


class TestGenfastSettings:
    def test_defaults_all_off(self):
        settings = GenfastSettings()
        assert not settings.columnar_batches
        assert not settings.batched_sdl_writes
        assert not settings.vectorized_features
        assert not settings.sim_fastlane
        assert not settings.any_enabled

    def test_any_enabled_tracks_each_flag(self):
        assert GenfastSettings(columnar_batches=True).any_enabled
        assert GenfastSettings(batched_sdl_writes=True).any_enabled
        assert GenfastSettings(vectorized_features=True).any_enabled
        assert GenfastSettings(sim_fastlane=True).any_enabled

    def test_all_on(self):
        settings = GenfastSettings.all_on()
        assert settings.columnar_batches
        assert settings.batched_sdl_writes
        assert settings.vectorized_features
        assert settings.sim_fastlane

    def test_default_config_keeps_seed_flags(self):
        assert not XsecConfig().genfast.any_enabled


# ---------------------------------------------------------------------------
# attack-scenario captures (shared by the featurization and wire tests)


def _uplink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=8.0)


def _downlink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=8.0)


# name -> (attack factory taking the live network, extra NetworkConfig kwargs)
ATTACK_SCENARIOS = {
    "bts_dos": (
        lambda net: BtsDosAttack(net, start_time=3.0, connections=8, interval_s=0.08),
        {},
    ),
    "blind_dos": (
        lambda net: BlindDosAttack(net, victim=net.ues[0], start_time=3.0, replays=5),
        {},
    ),
    "uplink_id_extraction": (_uplink_extraction, {}),
    "downlink_id_extraction": (_downlink_extraction, {}),
    "null_cipher": (
        lambda net: NullCipherAttack(net, start_time=3.0),
        {"amf": AmfConfig(allow_null_algorithms=True)},
    ),
}


@pytest.fixture(scope="module")
def scenario_series():
    """Telemetry series from a live capture of each attack's scenario."""
    out = {}
    for name, (factory, net_kwargs) in ATTACK_SCENARIOS.items():
        net = FiveGNetwork(NetworkConfig(seed=77, **net_kwargs))
        for profile in ("pixel5", "oai_ue"):
            ue = net.add_ue(profile)
            net.sim.schedule(0.5, ue.start_session)
        factory(net).arm()
        net.run(until=16.0)
        series = MobiFlowCollector().parse_stream(net.pcap)
        assert len(series.records) > 0, name
        out[name] = series
    return out


@pytest.fixture(scope="module")
def benign_series():
    capture = generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )
    return capture.series


# ---------------------------------------------------------------------------
# vectorized featurization bit-identity (the acceptance contract)


class TestVectorizedFeaturizationBitIdentity:
    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_attack_captures_bit_identical(self, scenario_series, scenario):
        series = scenario_series[scenario]
        spec = FeatureSpec()
        seed_rows = spec.encode_series(series)
        fast_rows = spec.encode_series(series, vectorized=True)
        # np.array_equal, not allclose: float64 arithmetic, float32 storage,
        # bit for bit.
        assert np.array_equal(seed_rows, fast_rows)

    def test_benign_capture_bit_identical(self, benign_series):
        spec = FeatureSpec()
        assert np.array_equal(
            spec.encode_series(benign_series),
            spec.encode_series(benign_series, vectorized=True),
        )

    def test_windowed_from_batch_matches_from_series(self, scenario_series):
        series = scenario_series["bts_dos"]
        spec = FeatureSpec()
        seed = WindowedDataset.from_series(series, spec, window=6, mode="session")
        fast = windowed_from_batch(
            MobiFlowBatch.from_records(series.records), spec, window=6
        )
        assert np.array_equal(seed.windows, fast.windows)
        assert seed.window_records == fast.window_records

    def test_from_series_vectorized_flag_identical(self, scenario_series):
        series = scenario_series["null_cipher"]
        spec = FeatureSpec()
        seed = WindowedDataset.from_series(series, spec, window=6)
        fast = WindowedDataset.from_series(series, spec, window=6, vectorized=True)
        assert np.array_equal(seed.windows, fast.windows)
        assert seed.window_records == fast.window_records

    def test_unordered_batch_rejected(self):
        records = [
            MobiFlowRecord(
                timestamp=t, msg="RRCSetupRequest", protocol="RRC", direction="UL",
                session_id=1,
            )
            for t in (1.0, 0.5)
        ]
        batch = MobiFlowBatch.from_records(records)
        with pytest.raises(ValueError):
            encode_batch(FeatureSpec(), batch)


# ---------------------------------------------------------------------------
# golden-vector fixture: freezes the one-hot column layout


class TestGoldenFeatureLayout:
    """Any change to the feature columns (order, vocab, bucket bounds,
    weights) breaks this test — update the fixture deliberately."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(FIXTURES / "features_golden.json", "r", encoding="utf-8") as fh:
            return json.load(fh)

    def _records(self, golden):
        return [MobiFlowRecord(**fields) for fields in golden["records"]]

    def test_feature_names_frozen(self, golden):
        assert FeatureSpec().feature_names() == golden["feature_names"]

    def test_dim_frozen(self, golden):
        assert FeatureSpec().dim == len(golden["feature_names"])

    def test_streaming_rows_frozen(self, golden):
        spec = FeatureSpec()
        encoder = spec.streaming_encoder()
        rows = np.stack([encoder.push(r) for r in self._records(golden)])
        # float32 values are exactly representable in JSON's float64.
        assert np.array_equal(rows, np.asarray(golden["rows"], dtype=np.float32))

    def test_vectorized_rows_frozen(self, golden):
        spec = FeatureSpec()
        batch = MobiFlowBatch.from_records(self._records(golden))
        assert np.array_equal(
            encode_batch(spec, batch), np.asarray(golden["rows"], dtype=np.float32)
        )


# ---------------------------------------------------------------------------
# columnar batches and the columnar wire


def _stream_records(records=300, sessions=12):
    config = GenfastWorkloadConfig(records=records, sessions=sessions)
    return [MobiFlowRecord(**fields) for fields in field_stream(config)]


class TestMobiFlowBatch:
    def test_roundtrip_exact(self, scenario_series):
        records = scenario_series["uplink_id_extraction"].records
        assert MobiFlowBatch.from_records(records).to_records() == records

    def test_builder_matches_from_records(self):
        records = _stream_records()
        builder = MobiFlowBatchBuilder()
        for record in records:
            builder.append(record)
        assert builder.build().to_records() == records

    def test_append_fields_matches_records(self):
        config = GenfastWorkloadConfig(records=200, sessions=8)
        builder = MobiFlowBatchBuilder()
        for fields in field_stream(config):
            builder.append_fields(**fields)
        records = [MobiFlowRecord(**fields) for fields in field_stream(config)]
        assert builder.build().to_records() == records

    def test_flush_resets_builder(self):
        builder = MobiFlowBatchBuilder()
        for record in _stream_records(records=10, sessions=2):
            builder.append(record)
        batch = builder.flush()
        assert len(batch) == 10
        assert len(builder) == 0
        assert len(builder.flush()) == 0

    def test_concat_matches_single_batch(self):
        records = _stream_records()
        # Uneven splits so the vocabularies of later chunks need remapping.
        chunks = [records[:70], records[70:71], records[71:250], records[250:]]
        batches = [MobiFlowBatch.from_records(chunk) for chunk in chunks]
        merged = MobiFlowBatch.concat(batches)
        assert merged.to_records() == records
        # Feature rows from the merged batch match the one-shot batch.
        spec = FeatureSpec()
        assert np.array_equal(
            encode_batch(spec, merged),
            encode_batch(spec, MobiFlowBatch.from_records(records)),
        )

    def test_concat_empty(self):
        assert len(MobiFlowBatch.concat([])) == 0


class TestColumnarWire:
    def test_decodes_byte_identical_to_seed_stream(self, scenario_series):
        """The acceptance contract: the columnar payload decodes to the
        exact record stream whose per-record encoding is the seed bytes."""
        for name, series in scenario_series.items():
            records = series.records
            blob = telemetry_encoder.encode_batch_columnar(
                MobiFlowBatch.from_records(records)
            )
            decoded = telemetry_encoder.decode_batch_columnar(blob)
            assert decoded.to_records() == records, name
            assert telemetry_encoder.encode_batch(
                decoded.to_records()
            ) == telemetry_encoder.encode_batch(records), name

    def test_blob_roundtrip_stable(self):
        batch = MobiFlowBatch.from_records(_stream_records())
        blob = telemetry_encoder.encode_batch_columnar(batch)
        decoded = telemetry_encoder.decode_batch_columnar(blob)
        assert telemetry_encoder.encode_batch_columnar(decoded) == blob

    def test_empty_batch_roundtrip(self):
        blob = telemetry_encoder.encode_batch_columnar(
            MobiFlowBatch.from_records([])
        )
        assert len(telemetry_encoder.decode_batch_columnar(blob)) == 0

    def test_columnar_payload_smaller_than_seed(self):
        records = _stream_records()
        blob = telemetry_encoder.encode_batch_columnar(
            MobiFlowBatch.from_records(records)
        )
        assert len(blob) < len(telemetry_encoder.encode_batch(records))

    def test_decode_rejects_non_columnar(self):
        with pytest.raises(wire.WireError):
            wire.decode_columnar(wire.encode({"schema": "nope"}))

    def test_ragged_list_columns_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_columnar({"a": [1, 2, 3], "b": [1, 2]})

    def test_all_packed_carries_explicit_n(self):
        packed = np.arange(4, dtype="<i8").tobytes()
        # Packed buffers are opaque to the wire: without an explicit n the
        # batch length cannot be inferred and falls back to 0.
        assert wire.decode_columnar(wire.encode_columnar({"a": packed}))[2] == 0
        blob = wire.encode_columnar({"a": packed}, n=4)
        columns, _, n = wire.decode_columnar(blob)
        assert n == 4
        assert np.array_equal(
            np.frombuffer(columns["a"], dtype="<i8"), np.arange(4)
        )

    def test_wrong_length_list_column_rejected_on_decode(self):
        blob = wire.encode_columnar({"a": [1, 2, 3]}, n=3)
        columns, meta, n = wire.decode_columnar(blob)
        with pytest.raises(ValueError):
            MobiFlowBatch.from_columns({"suci": [None, None]}, {}, 3)


# ---------------------------------------------------------------------------
# workload lanes (what the bench times must stay equal)


class TestWorkloadLanes:
    def test_lanes_equal_on_default_stream(self):
        config = GenfastWorkloadConfig(records=400, sessions=16, batch_records=32)
        spec = FeatureSpec()
        checks = lanes_equal(run_seed_lane(config, spec), run_fast_lane(config, spec))
        assert all(checks.values()), checks

    def test_fast_lane_one_write_per_batch(self):
        config = GenfastWorkloadConfig(records=256, sessions=8, batch_records=64)
        fast = run_fast_lane(config, FeatureSpec())
        # 256 records / 64 per batch = 4 acked writes, not 256.
        assert fast.sdl.writes == 4


# ---------------------------------------------------------------------------
# live pipeline: genfast all-on is bit-identical to the seed run


def event_tuples(xsec):
    return [
        (
            e.detected_at,
            e.session_id,
            e.rnti,
            e.s_tmsi,
            e.score,
            e.threshold,
            e.record_indices,
            e.newest_record_ts,
        )
        for e in xsec.mobiwatch.anomalies
    ]


@pytest.fixture(scope="module")
def trained_autoencoder(benign_series):
    config = XsecConfig(detector="autoencoder", train_epochs=6)
    dataset = WindowedDataset.from_series(benign_series, config.spec, config.window)
    detector = build_detector(config)
    detector.fit(np.asarray(dataset.windows), epochs=6, lr=config.train_lr)
    return detector


def _run_live(detector, genfast, seed=77, until=20.0):
    import copy

    config = XsecConfig(detector=detector.name, train_epochs=6, genfast=genfast)
    xsec = SixGXSec(
        config,
        network_config=NetworkConfig(seed=seed, amf=AmfConfig(allow_null_algorithms=True)),
    )
    xsec.deploy_detector(copy.deepcopy(detector))
    # Drop the operating threshold so the scenario provably emits events —
    # an empty-vs-empty event comparison would not prove bit-identity.
    xsec.mobiwatch.on_policy(1, {"threshold_percentile": 80.0})
    for profile in ("pixel5", "oai_ue"):
        ue = xsec.net.add_ue(profile)
        xsec.net.sim.schedule(0.5, ue.start_session)
    BtsDosAttack(xsec.net, start_time=3.0, connections=8, interval_s=0.08).arm()
    xsec.run(until=until)
    return xsec


class TestLiveSeedEquivalence:
    """Every genfast flag on: bit-identical events, identical SDL contents."""

    @pytest.fixture(scope="class")
    def seed_run(self, trained_autoencoder):
        return _run_live(trained_autoencoder, GenfastSettings())

    @pytest.fixture(scope="class")
    def fast_run(self, trained_autoencoder):
        return _run_live(trained_autoencoder, GenfastSettings.all_on())

    def test_telemetry_stream_identical(self, seed_run, fast_run):
        assert fast_run.mobiwatch.records_seen == seed_run.mobiwatch.records_seen
        assert fast_run.mobiwatch.series.records == seed_run.mobiwatch.series.records

    def test_anomaly_events_bit_identical(self, seed_run, fast_run):
        assert seed_run.mobiwatch.anomalies, "scenario produced no events"
        assert event_tuples(fast_run) == event_tuples(seed_run)
        assert fast_run.mobiwatch.windows_scored == seed_run.mobiwatch.windows_scored

    def test_sdl_telemetry_contents_identical(self, seed_run, fast_run):
        seed_ns = seed_run.ric.sdl._data.get(SDL_TELEMETRY_NS)
        fast_ns = fast_run.ric.sdl._data.get(SDL_TELEMETRY_NS)
        assert seed_ns == fast_ns
        assert seed_ns, "no telemetry stored"


# ---------------------------------------------------------------------------
# event queue: tombstone compaction (satellite bugfix regression)


class TestEventQueueCompaction:
    def test_cancel_churn_keeps_heap_bounded(self):
        """The seed leaked every cancelled event until its deadline; a
        cancel-and-reschedule workload (timers pushed out on every
        activity, like the UE inactivity timers) grew the heap without
        bound. Compaction keeps tombstones under half the heap."""
        queue = EventQueue()
        live = 50
        events = [queue.push(1000.0 + i, lambda: None) for i in range(live)]
        for round_index in range(200):
            for i in range(live):
                events[i].cancel()
                events[i] = queue.push(2000.0 + round_index, lambda: None)
        assert len(queue) == live
        # Bounded: never more than ~2x the live events (+ the pre-compact
        # threshold), not the 10k cancelled this churn produced.
        assert queue.heap_size <= max(2 * live, EventQueue.COMPACT_MIN_HEAP + live)

    def test_compact_drops_only_cancelled(self):
        queue = EventQueue()
        keep = [queue.push(float(i), lambda: None, name=f"k{i}") for i in range(10)]
        drop = [queue.push(float(i) + 0.5, lambda: None) for i in range(10)]
        for event in drop:
            event.cancel()
        assert queue.compact() == 10
        assert queue.heap_size == 10
        assert len(queue) == 10
        popped = [queue.pop() for _ in range(10)]
        assert popped == keep
        assert queue.pop() is None

    def test_no_compaction_below_min_heap(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        # Tiny heaps keep their tombstones (pop discards them lazily).
        assert queue.heap_size == 10
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.heap_size == 0

    def test_pop_and_peek_account_for_discarded_tombstones(self):
        queue = EventQueue()
        cancelled = queue.push(1.0, lambda: None)
        kept = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert queue.peek_time() == 2.0  # discards the tombstone
        assert queue.heap_size == 1
        assert queue.pop() is kept
        assert queue.compact() == 0


class TestScheduleBatch:
    def test_single_heap_entry_fires_in_order(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule_batch(1.0, [lambda: fired.append("a"), lambda: fired.append("b")])
        assert sim.pending == 1
        sim.run()
        assert fired == ["a", "b"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(seed=1).schedule_batch(-0.1, [lambda: None])

    def test_cancel_suppresses_all_callbacks(self):
        sim = Simulator(seed=1)
        fired = []
        event = sim.schedule_batch(1.0, [lambda: fired.append(1), lambda: fired.append(2)])
        event.cancel()
        sim.run()
        assert fired == []

    def test_snapshot_of_callbacks(self):
        sim = Simulator(seed=1)
        fired = []
        callbacks = [lambda: fired.append(1)]
        sim.schedule_batch(1.0, callbacks)
        callbacks.append(lambda: fired.append(2))  # after scheduling: ignored
        sim.run()
        assert fired == [1]


class TestFleetTicker:
    def test_members_tick_every_period(self):
        sim = Simulator(seed=1)
        ticker = FleetTicker(sim, period_s=1.0)
        counts = [0, 0]
        ticker.add(lambda: counts.__setitem__(0, counts[0] + 1))
        ticker.add(lambda: counts.__setitem__(1, counts[1] + 1))
        assert len(ticker) == 2
        ticker.start()
        sim.run(until=5.5)
        assert counts == [5, 5]
        assert ticker.ticks_fired == 5

    def test_member_added_mid_run_joins_next_tick(self):
        sim = Simulator(seed=1)
        ticker = FleetTicker(sim, period_s=1.0)
        late_count = [0]
        ticker.add(lambda: None)

        def join_late():
            ticker.add(lambda: late_count.__setitem__(0, late_count[0] + 1))

        sim.schedule(2.5, join_late)
        ticker.start()
        sim.run(until=5.5)
        # Joined at t=2.5: ticks at 3, 4, 5.
        assert late_count[0] == 3

    def test_remove_and_stop(self):
        sim = Simulator(seed=1)
        ticker = FleetTicker(sim, period_s=1.0)
        count = [0]
        member = lambda: count.__setitem__(0, count[0] + 1)
        ticker.add(member)
        ticker.start()
        sim.schedule(2.5, lambda: ticker.remove(member))
        sim.schedule(4.5, ticker.stop)
        sim.run(until=10.0)
        assert count[0] == 2  # ticks at 1, 2 only
        assert ticker.ticks_fired == 4  # stopped after the t=4 tick
        assert not ticker.remove(member)  # already gone

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            FleetTicker(Simulator(seed=1), period_s=0.0)

    def test_start_idempotent(self):
        sim = Simulator(seed=1)
        ticker = FleetTicker(sim, period_s=1.0)
        count = [0]
        ticker.add(lambda: count.__setitem__(0, count[0] + 1))
        ticker.start()
        ticker.start()
        sim.run(until=2.5)
        assert count[0] == 2


# ---------------------------------------------------------------------------
# collector: GUTI parse errors are counted (satellite bugfix regression)


class TestCollectorGutiErrors:
    def _deliver_accept(self, collector, guti):
        nas_pdu = nas_messages.RegistrationAccept(guti=guti).to_wire()
        collector.on_capture(
            0.0, "NGAP", ngap.NgDownlinkNasTransport(ran_ue_id=1, nas_pdu=nas_pdu)
        )

    def test_malformed_guti_counted(self):
        metrics = MetricsRegistry()
        collector = MobiFlowCollector(metrics)
        counter = metrics.counter("collector.guti_parse_errors_total")
        self._deliver_accept(collector, "not-a-guti")
        assert counter.value == 1
        # The record still lands — only the TMSI identity feature is lost.
        assert collector.series[-1].msg == "RegistrationAccept"
        assert collector.series[-1].s_tmsi is None

    def test_wellformed_guti_not_counted(self):
        metrics = MetricsRegistry()
        collector = MobiFlowCollector(metrics)
        counter = metrics.counter("collector.guti_parse_errors_total")
        self._deliver_accept(collector, "999-70-0-00c000ff")
        assert counter.value == 0
        assert collector.series[-1].s_tmsi == 0x00C000FF


class TestCollectorBatchMode:
    def test_flush_batch_matches_series(self, scenario_series):
        net = FiveGNetwork(NetworkConfig(seed=5))
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.2, ue.start_session)
        net.run(until=12.0)
        collector = MobiFlowCollector()
        received = []
        collector.subscribe_batches(received.append)
        series = collector.parse_stream(net.pcap)
        assert collector.pending_batch_records == len(series.records)
        batch = collector.flush_batch()
        assert batch.to_records() == series.records
        assert received == [batch]
        assert collector.flush_batch() is None  # drained

    def test_batch_mode_off_by_default(self):
        collector = MobiFlowCollector()
        assert collector.pending_batch_records == 0
        assert collector.flush_batch() is None


# ---------------------------------------------------------------------------
# batched SDL writes


class TestSdlSetMany:
    def test_matches_sequential_sets(self):
        a, b = SharedDataLayer(), SharedDataLayer()
        pairs = [(f"k{i}", {"v": i}) for i in range(5)]
        for key, value in pairs:
            a.set("ns", key, value)
        b.set_many("ns", pairs)
        assert a._data == b._data
        assert b.get("ns", "k3") == {"v": 3}

    def test_one_acked_write_per_batch(self):
        sdl = SharedDataLayer()
        sdl.set_many("ns", [(f"k{i}", i) for i in range(10)])
        assert sdl.writes == 1

    def test_watchers_notified_per_pair(self):
        sdl = SharedDataLayer()
        seen = []
        sdl.watch("ns", lambda ns, key, value: seen.append((key, value)))
        sdl.set_many("ns", [("a", 1), ("b", 2)])
        assert seen == [("a", 1), ("b", 2)]

    def test_empty_batch_noop(self):
        sdl = SharedDataLayer()
        sdl.set_many("ns", [])
        assert sdl.writes == 0

    def test_sharded_set_many_matches_sets(self):
        a = ShardedSdl(shards=3, replication=2)
        b = ShardedSdl(shards=3, replication=2)
        pairs = [(f"k{i}", i) for i in range(8)]
        for key, value in pairs:
            a.set("ns", key, value, shard_key="session-7")
        b.set_many("ns", pairs, shard_key="session-7")
        for key, value in pairs:
            assert b.get("ns", key, shard_key="session-7") == value
        assert b.writes == 1
        assert a.keys("ns") == b.keys("ns")


class TestBatcherOfferMany:
    def test_matches_repeated_offer(self):
        flushed_a, flushed_b = [], []
        a = BoundedBatcher(flushed_a.append, flush_records=16)
        b = BoundedBatcher(flushed_b.append, flush_records=16)
        items = list(range(40))
        for item in items:
            a.offer(item)
        assert b.offer_many(items) == 40
        assert flushed_a == flushed_b
        assert a.pending == b.pending

    def test_drop_policy_applied_per_item(self):
        flushed = []
        batcher = BoundedBatcher(
            flushed.append, capacity=4, flush_records=100, drop_policy="newest"
        )
        assert batcher.offer_many(list(range(10))) == 4
        assert batcher.dropped == 6
        assert batcher.pending == 4


# ---------------------------------------------------------------------------
# message templates


class TestMessageTemplate:
    def test_build_equals_constructor(self):
        template = MessageTemplate(RrcSetupRequest, ue_identity=7)
        assert template.build() == RrcSetupRequest(ue_identity=7)
        assert isinstance(template.build(), RrcSetupRequest)

    def test_overrides_applied(self):
        template = MessageTemplate(RrcSetupRequest)
        message = template.build(ue_identity=99, identity_is_tmsi=True)
        assert message == RrcSetupRequest(ue_identity=99, identity_is_tmsi=True)

    def test_wire_bytes_byte_identical(self):
        template = MessageTemplate(RrcSetupRequest, ue_identity=7)
        assert template.wire_bytes() == RrcSetupRequest(ue_identity=7).to_wire()
        assert template.build().to_wire() == template.wire_bytes()
        assert (
            template.build(ue_identity=8).to_wire()
            == RrcSetupRequest(ue_identity=8).to_wire()
        )

    def test_unknown_override_rejected(self):
        template = MessageTemplate(RrcSetupRequest)
        with pytest.raises(MessageError):
            template.build(bogus_field=1)

    def test_non_message_rejected(self):
        with pytest.raises(MessageError):
            MessageTemplate(dict)

    def test_instances_independent(self):
        template = MessageTemplate(RrcSetupRequest, ue_identity=7)
        first, second = template.build(), template.build(ue_identity=8)
        assert first.ue_identity == 7
        assert second.ue_identity == 8


# ---------------------------------------------------------------------------
# bench gates


def _passing_result():
    result = GenfastBenchResult(cpus=4)
    result.end_to_end = {"speedup": 4.0, "seed_rps": 1e4, "fast_rps": 4e4}
    result.featurization = {"speedup": 10.0, "seed_rps": 1e5, "fast_rps": 1e6}
    result.sim = {"speedup": 5.0, "per_member_tps": 1e5, "batched_tps": 5e5}
    result.equality = {
        "windows_identical": True,
        "window_records_identical": True,
        "columnar_decodes_byte_identical": True,
        "vectorized_rows_identical": True,
    }
    return result


class TestBenchGates:
    def test_passing_result_clears(self):
        assert violations(_passing_result()) == []

    def test_equality_break_is_violation(self):
        result = _passing_result()
        result.equality["windows_identical"] = False
        assert any("windows_identical" in v for v in violations(result))

    def test_end_to_end_floor_multi_core(self):
        result = _passing_result()
        result.end_to_end["speedup"] = END_TO_END_SPEEDUP_MIN - 0.1
        assert any("end-to-end" in v for v in violations(result))

    def test_end_to_end_floor_single_core(self):
        result = _passing_result()
        result.cpus = 1
        result.end_to_end["speedup"] = END_TO_END_SINGLE_CORE_MIN - 0.1
        assert any("single-core" in v for v in violations(result))
        result.end_to_end["speedup"] = END_TO_END_SINGLE_CORE_MIN + 0.1
        assert violations(result) == []

    def test_featurization_floor(self):
        result = _passing_result()
        result.featurization["speedup"] = FEATURIZATION_SPEEDUP_MIN - 0.5
        assert any("featurization" in v for v in violations(result))

    def test_baseline_regression_detected(self):
        result = _passing_result()
        baseline = {
            "floor_applied": "multi-core",
            "end_to_end": {"speedup": result.end_to_end["speedup"] / BASELINE_SLACK * 2},
            "featurization": {"speedup": 1.0},
        }
        assert any("regressed" in v for v in violations(result, baseline))

    def test_cross_regime_baseline_ignored(self):
        result = _passing_result()
        baseline = {
            "floor_applied": "single-core",
            "end_to_end": {"speedup": 100.0},
            "featurization": {"speedup": 100.0},
        }
        assert violations(result, baseline) == []

    def test_to_dict_schema(self):
        snapshot = _passing_result().to_dict()
        assert snapshot["schema"] == 1
        assert snapshot["floor_applied"] == "multi-core"
        assert snapshot["cpus"] == 4
