"""Tests for the LLM expert-referencing stack."""

import pytest

from repro.llm import (
    AnalysisEngine,
    CellularKnowledgeBase,
    ExpertAnalyst,
    LlmClient,
    LlmServerError,
    MODEL_PROFILES,
    PromptTemplate,
    SimulatedLlmServer,
    build_default_backends,
    format_records,
    parse_data_section,
    parse_response,
)
from repro.llm.knowledge import (
    SIG_NULL_CIPHER,
    SIG_OUT_OF_ORDER_IDENTITY,
    SIG_PLAINTEXT_SUCI,
    SIG_SIGNALING_STORM,
    SIG_TMSI_REPLAY,
)
from repro.llm.response import ResponseParseError
from repro.telemetry.mobiflow import MobiFlowRecord


def rec(t, msg, session=1, **kwargs):
    defaults = dict(protocol="RRC", direction="UL", rnti=0x100 + session)
    defaults.update(kwargs)
    return MobiFlowRecord(timestamp=t, msg=msg, session_id=session, **defaults)


def benign_session(session=1, t0=0.0):
    seq = [
        ("RRCSetupRequest", dict(establishment_cause="mo-Signalling")),
        ("RRCSetup", dict(direction="DL")),
        ("RRCSetupComplete", {}),
        ("RegistrationRequest", dict(suci="suci-001-01-abcdef")),
        ("AuthenticationRequest", dict(direction="DL")),
        ("AuthenticationResponse", {}),
        ("NASSecurityModeCommand", dict(direction="DL", cipher_alg=2, integrity_alg=2)),
        ("NASSecurityModeComplete", {}),
        ("RegistrationAccept", dict(direction="DL", s_tmsi=0xAB00 + session)),
        ("RegistrationComplete", {}),
        ("RRCRelease", dict(direction="DL")),
    ]
    return [
        rec(t0 + 0.05 * i, msg, session=session, **kw) for i, (msg, kw) in enumerate(seq)
    ]


def storm_trace():
    records = []
    for i in range(6):
        t0 = i * 0.15
        session = 10 + i
        records += [
            rec(t0, "RRCSetupRequest", session=session),
            rec(t0 + 0.01, "RRCSetup", session=session, direction="DL"),
            rec(t0 + 0.03, "RRCSetupComplete", session=session),
            rec(t0 + 0.04, "RegistrationRequest", session=session, suci=f"suci-001-01-{i}"),
            rec(t0 + 0.06, "AuthenticationRequest", session=session, direction="DL"),
        ]
    return sorted(records, key=lambda r: r.timestamp)


def replay_trace():
    records = []
    for i in range(4):
        t0 = i * 2.0
        session = 20 + i
        records += [
            rec(t0, "RRCSetupRequest", session=session, s_tmsi=0xDEAD),
            rec(t0 + 0.01, "RRCSetup", session=session, direction="DL"),
            rec(t0 + 0.03, "ServiceRequest", session=session, s_tmsi=0xDEAD, protocol="NAS"),
            rec(t0 + 0.05, "AuthenticationRequest", session=session, direction="DL"),
        ]
    return records


def null_cipher_trace():
    records = benign_session(session=30)
    return [
        MobiFlowRecord(
            **{
                **r.to_dict(),
                "cipher_alg": 0 if r.msg == "NASSecurityModeCommand" else r.cipher_alg,
                "integrity_alg": 0 if r.msg == "NASSecurityModeCommand" else r.integrity_alg,
            }
        )
        for r in records
    ]


def downlink_extraction_trace():
    records = benign_session(session=40)
    # Insert IdentityResponse right after AuthenticationRequest.
    out = []
    for r in records:
        out.append(r)
        if r.msg == "AuthenticationRequest":
            out.append(
                rec(
                    r.timestamp + 0.02,
                    "IdentityResponse",
                    session=40,
                    protocol="NAS",
                    supi="imsi-00101123456789",
                )
            )
    return out


def uplink_extraction_trace():
    records = benign_session(session=50)
    return [
        MobiFlowRecord(
            **{
                **r.to_dict(),
                "suci": "suci-null-001-01-123456789"
                if r.msg == "RegistrationRequest"
                else r.suci,
            }
        )
        for r in records
    ]


class TestPromptRoundtrip:
    def test_render_contains_template_text(self):
        prompt = PromptTemplate().render(benign_session())
        assert "AI security analyst" in prompt
        assert "anomalous or benign" in prompt
        assert "top 3 most possible attacks" in prompt

    def test_records_roundtrip_through_prompt(self):
        records = benign_session()
        parsed = parse_data_section(PromptTemplate().render(records))
        assert len(parsed) == len(records)
        for original, roundtripped in zip(records, parsed):
            assert roundtripped.msg == original.msg
            assert roundtripped.session_id == original.session_id
            assert roundtripped.rnti == original.rnti
            assert roundtripped.s_tmsi == original.s_tmsi
            assert roundtripped.suci == original.suci
            assert roundtripped.cipher_alg == original.cipher_alg

    def test_rag_snippets_appended(self):
        template = PromptTemplate(retrieved_snippets=["TS 33.501 says X"])
        prompt = template.render(benign_session())
        assert "TS 33.501 says X" in prompt

    def test_format_records_one_line_each(self):
        text = format_records(benign_session())
        assert len(text.splitlines()) == len(benign_session())


class TestAnalysisEngine:
    def setup_method(self):
        self.engine = AnalysisEngine()

    def _signatures(self, records):
        return {m.signature for m in self.engine.analyze(records)}

    def test_benign_trace_matches_nothing(self):
        assert self._signatures(benign_session()) == set()

    def test_storm_detected(self):
        assert SIG_SIGNALING_STORM in self._signatures(storm_trace())

    def test_replay_detected(self):
        assert SIG_TMSI_REPLAY in self._signatures(replay_trace())

    def test_null_cipher_detected(self):
        assert SIG_NULL_CIPHER in self._signatures(null_cipher_trace())

    def test_downlink_extraction_detected(self):
        assert SIG_OUT_OF_ORDER_IDENTITY in self._signatures(downlink_extraction_trace())

    def test_uplink_extraction_detected(self):
        assert SIG_PLAINTEXT_SUCI in self._signatures(uplink_extraction_trace())

    def test_busy_but_healthy_cell_not_a_storm(self):
        records = []
        for i in range(6):
            records += benign_session(session=60 + i, t0=i * 0.3)
        records.sort(key=lambda r: r.timestamp)
        assert SIG_SIGNALING_STORM not in self._signatures(records)

    def test_matches_sorted_by_confidence(self):
        trace = storm_trace() + null_cipher_trace()
        trace.sort(key=lambda r: r.timestamp)
        matches = self.engine.analyze(trace)
        confidences = [m.confidence for m in matches]
        assert confidences == sorted(confidences, reverse=True)


class TestKnowledgeRetrieval:
    def test_retrieves_relevant_snippets(self):
        kb = CellularKnowledgeBase()
        snippets = kb.retrieve(null_cipher_trace(), top_k=2)
        assert any("null" in s.lower() for s in snippets)

    def test_top_k_respected(self):
        kb = CellularKnowledgeBase()
        assert len(kb.retrieve(storm_trace(), top_k=1)) <= 1


class TestBackends:
    def setup_method(self):
        self.backends = build_default_backends()

    def test_all_profiles_have_backends(self):
        assert set(self.backends) == set(MODEL_PROFILES)

    def test_deterministic_responses(self):
        prompt = PromptTemplate().render(storm_trace())
        backend = self.backends["chatgpt-4o"]
        assert backend.complete(prompt) == backend.complete(prompt)

    def test_perceived_attack_produces_anomalous_verdict(self):
        prompt = PromptTemplate().render(storm_trace())
        response = parse_response(self.backends["chatgpt-4o"].complete(prompt))
        assert response.is_anomalous
        assert response.top_attacks
        assert response.remediations

    def test_blind_spot_produces_benign_verdict(self):
        # Claude's profile does not perceive signaling storms (Table 3).
        prompt = PromptTemplate().render(storm_trace())
        response = parse_response(self.backends["claude-3-sonnet"].complete(prompt))
        assert not response.is_anomalous

    def test_empty_prompt_is_benign(self):
        response = parse_response(self.backends["gemini"].complete("no data here"))
        assert not response.is_anomalous


class TestResponseParser:
    def test_parse_full_response(self):
        text = (
            "Verdict: anomalous\n"
            "Explanation: something bad.\n"
            "Top attacks:\n"
            "1. Attack A — impact a\n"
            "2. Attack B — impact b\n"
            "Attribution: a rogue UE\n"
            "Remediation:\n- step one\n- step two"
        )
        response = parse_response(text)
        assert response.is_anomalous
        assert response.top_attacks == [("Attack A", "impact a"), ("Attack B", "impact b")]
        assert response.attribution == "a rogue UE"
        assert response.remediations == ["step one", "step two"]

    def test_missing_verdict_raises(self):
        with pytest.raises(ResponseParseError):
            parse_response("Explanation: whatever")

    def test_unknown_verdict_raises(self):
        with pytest.raises(ResponseParseError):
            parse_response("Verdict: maybe?")


class TestClientServer:
    def test_complete_roundtrip(self):
        server = SimulatedLlmServer()
        client = LlmClient(server=server, model="chatgpt-4o")
        text = client.complete(PromptTemplate().render(storm_trace()))
        assert "Verdict:" in text
        assert server.requests_served == 1
        assert client.requests_sent == 1

    def test_unknown_model_rejected(self):
        server = SimulatedLlmServer()
        with pytest.raises(LlmServerError):
            LlmClient(server=server, model="gpt-99").complete("hi")

    def test_malformed_request_rejected(self):
        server = SimulatedLlmServer()
        with pytest.raises(LlmServerError):
            server.post({"model": "gemini", "messages": []})
        with pytest.raises(LlmServerError):
            server.post({"model": "gemini", "messages": [{"role": "user"}]})

    def test_latency_is_deterministic_and_positive(self):
        server = SimulatedLlmServer()
        a = server.latency_for("gemini", "prompt")
        b = server.latency_for("gemini", "prompt")
        assert a == b
        assert a > 0


class TestExpertAnalyst:
    def test_agreement_and_escalation(self):
        server = SimulatedLlmServer()
        analyst = ExpertAnalyst(client=LlmClient(server=server, model="chatgpt-4o"))
        verdict = analyst.analyze(storm_trace(), detector_flagged=True)
        assert verdict.agrees_with_detector
        assert not verdict.needs_human_review
        # A model blind to the attack contradicts the detector -> escalate.
        blind = ExpertAnalyst(client=LlmClient(server=server, model="claude-3-sonnet"))
        contradicted = blind.analyze(storm_trace(), detector_flagged=True)
        assert contradicted.needs_human_review
        assert blind.escalations == 1

    def test_rag_augments_prompt(self):
        server = SimulatedLlmServer()
        analyst = ExpertAnalyst(
            client=LlmClient(server=server, model="chatgpt-4o"), use_rag=True
        )
        verdict = analyst.analyze(null_cipher_trace())
        assert "3GPP protocol knowledge" in verdict.prompt
