"""Tests for repro.runtime: the process-parallel RIC service runtime.

The contracts enforced here:

- defaults are the seed path: no worker processes, no sockets, MobiWatch
  scores in-process and ``XsecConfig().runtime`` is all-off;
- the TLV socket transport round-trips messages (including float64
  score matrices, bit-for-bit) and surfaces EOF/garbage as errors;
- supervisor semantics: a worker crash mid-batch leads to a restart with
  no acked result lost and no result duplicated; a crash-looping worker
  hits the bounded-backoff ceiling and is marked failed instead of
  restarting forever; graceful drain delivers every pending score before
  the workers exit;
- ``ProcessScoringPool`` scores are bit-identical to calling the
  detector in-process, and the pool's close is idempotent;
- the process backend survives a mid-trial ``kill -9`` with zero acked
  loss and an intact offered == scored + dropped + pending invariant;
- with ``runtime.score_in_processes`` on, the live pipeline's
  AnomalyEvent stream is bit-identical to the seed on every attack
  scenario.
"""

import copy
import os
import time

import numpy as np
import pytest

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.ml.detector import AutoencoderDetector
from repro.runtime import (
    ProcessBackend,
    ProcessScoringPool,
    RuntimeSettings,
    Supervisor,
    WorkerSpec,
)
from repro.runtime import messages
from repro.runtime.settings import default_start_method
from repro.runtime.soak import SoakConfig, build_soak_workload
from repro.runtime.supervisor import FAILED, STOPPED, UP
from repro.runtime.transport import Listener, MsgConnection, TransportError
from repro.runtime.workers import synthetic_worker_main
from repro.ran.core_network import AmfConfig
from repro.ran.network import NetworkConfig


# ---------------------------------------------------------------------------
# settings


class TestRuntimeSettings:
    def test_defaults_are_seed_path(self):
        settings = RuntimeSettings()
        assert not settings.score_in_processes
        assert not settings.any_enabled
        assert XsecConfig().runtime == settings

    def test_score_in_processes_enables(self):
        assert RuntimeSettings(score_in_processes=True).any_enabled

    def test_resolved_start_method(self):
        import multiprocessing

        assert RuntimeSettings().resolved_start_method() == default_start_method()
        assert (
            RuntimeSettings().resolved_start_method()
            in multiprocessing.get_all_start_methods()
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"sdl_shards": 0},
            {"sdl_replication": 0},
            {"sdl_replication": 3, "sdl_shards": 2},
            {"queue_capacity": 0},
            {"dispatch_records": 0},
            {"drop_policy": "random"},
            {"max_restarts": -1},
            {"backoff_base_s": 0.0},
            {"backoff_base_s": 3.0, "backoff_max_s": 1.0},
            {"heartbeat_interval_s": 0.0},
            {"heartbeat_interval_s": 2.0, "heartbeat_timeout_s": 1.0},
            {"start_method": "threads"},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeSettings(**kwargs)


# ---------------------------------------------------------------------------
# messages


class TestMessages:
    def test_score_batch_roundtrip_is_bitwise(self):
        from repro import wire

        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((7, 12))
        msg = messages.score_batch(3, ["a", "b", "c", "d", "e", "f", "g"], matrix)
        decoded = wire.decode(wire.encode_fast(msg))
        batch_id, sessions, out = messages.unpack_score_batch(decoded)
        assert batch_id == 3
        assert sessions == ["a", "b", "c", "d", "e", "f", "g"]
        assert out.dtype == np.float64
        assert out.shape == matrix.shape
        assert np.array_equal(
            out.view(np.uint64), np.asarray(matrix, dtype=np.float64).view(np.uint64)
        )

    def test_score_result_carries_plain_floats(self):
        msg = messages.score_result("w0", 9, np.asarray([1.5, 2.5]))
        assert msg["scores"] == [1.5, 2.5]
        assert all(isinstance(s, float) for s in msg["scores"])


# ---------------------------------------------------------------------------
# transport


class TestTransport:
    def test_listener_roundtrip(self):
        with Listener() as listener:
            client = MsgConnection.connect(listener.path, name="client")
            try:
                server = listener.accept()
                client.send_msg(messages.hello("client", os.getpid()))
                msgs = _recv_until(server, 1)
                assert msgs[0]["t"] == messages.HELLO
                assert msgs[0]["worker"] == "client"
                server.send_msg(messages.drain())
                assert _recv_until(client, 1)[0]["t"] == messages.DRAIN
                server.close()
            finally:
                client.close()

    def test_eof_after_buffered_messages(self):
        with Listener() as listener:
            client = MsgConnection.connect(listener.path, name="client")
            server = listener.accept()
            for i in range(3):
                client.send_msg(messages.sdl_ack("client", i))
            client.close()
            time.sleep(0.05)
            got = server.drain_eof()
            assert [m["write_id"] for m in got] == [0, 1, 2]
            assert server.eof
            server.close()

    def test_connect_to_missing_path_raises(self):
        with pytest.raises(TransportError):
            MsgConnection.connect("/tmp/xsec-rt-nonexistent/sup.sock", name="x")


def _recv_until(conn, n, timeout_s=5.0):
    """Collect ``n`` messages from a blocking connection."""
    conn._sock.settimeout(timeout_s)
    out = []
    deadline = time.monotonic() + timeout_s
    while len(out) < n and time.monotonic() < deadline:
        out.extend(conn.recv_msgs_once())
    assert len(out) >= n, f"got {len(out)}/{n} messages"
    return out


# ---------------------------------------------------------------------------
# supervisor semantics (synthetic workers: scores are row sums)


def _dying_worker(name, socket_path, heartbeat_interval_s=0.5):
    """Exits nonzero immediately: drives the crash-loop path."""
    os._exit(1)


def _settings(**kwargs):
    defaults = dict(
        workers=1,
        backoff_base_s=0.02,
        backoff_max_s=0.08,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.0,
    )
    defaults.update(kwargs)
    return RuntimeSettings(**defaults)


def _wait_up(sup, names, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if all(sup.is_up(n) for n in names):
            return
        sup.poll(timeout_s=0.05)
    raise AssertionError(f"workers never came up: {[n for n in names if not sup.is_up(n)]}")


def _collect(sup, *, until, timeout_s=10.0):
    """Poll, accumulating events and routed messages, until the predicate holds."""
    events, msgs = [], []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for event in sup.poll(timeout_s=0.05):
            events.append(event)
            if event.kind == "msg":
                msgs.append(event.msg)
        if until(events, msgs):
            return events, msgs
    raise AssertionError(f"condition never held; events={[e.kind for e in events]}")


class TestSupervisor:
    def test_scores_roundtrip_and_health(self):
        with Supervisor(_settings()) as sup:
            sup.add_worker(WorkerSpec("synth-0", synthetic_worker_main, kind="scoring"))
            sup.start()
            _wait_up(sup, ["synth-0"])
            matrix = np.arange(6.0).reshape(2, 3)
            sup.send("synth-0", messages.score_batch(1, ["a", "b"], matrix))
            _, msgs = _collect(
                sup, until=lambda e, m: any(x["t"] == messages.SCORE_RESULT for x in m)
            )
            result = next(x for x in msgs if x["t"] == messages.SCORE_RESULT)
            assert result["batch_id"] == 1
            assert result["scores"] == [3.0, 12.0]
            health = sup.health()["synth-0"]
            assert health["state"] == UP
            assert health["restarts"] == 0

    def test_crash_mid_batch_restarts_without_acked_loss(self):
        """Worker dies after acking batch 1; batch 2 redispatches post-restart."""
        with Supervisor(_settings()) as sup:
            sup.add_worker(
                WorkerSpec(
                    "synth-0",
                    synthetic_worker_main,
                    {"crash_after_batches": 1},
                    kind="scoring",
                )
            )
            sup.start()
            _wait_up(sup, ["synth-0"])
            sup.send("synth-0", messages.score_batch(1, ["a"], np.asarray([[2.0, 3.0]])))
            # The ack for batch 1 must arrive even though the worker dies
            # immediately after sending it (drained from the dead socket).
            events, msgs = _collect(
                sup,
                until=lambda e, m: any(x.kind == "died" for x in e)
                and any(x["t"] == messages.SCORE_RESULT for x in m),
            )
            acked = [x for x in msgs if x["t"] == messages.SCORE_RESULT]
            assert [x["batch_id"] for x in acked] == [1]
            assert acked[0]["scores"] == [5.0]
            # Batch 2 was never acked: redispatch after the restart.
            _wait_up(sup, ["synth-0"])
            sup.send("synth-0", messages.score_batch(2, ["b"], np.asarray([[4.0, 5.0]])))
            _, msgs2 = _collect(
                sup,
                until=lambda e, m: any(
                    x["t"] == messages.SCORE_RESULT and x["batch_id"] == 2 for x in m
                ),
            )
            result = next(x for x in msgs2 if x["batch_id"] == 2)
            assert result["scores"] == [9.0]
            assert sup.health()["synth-0"]["restarts"] == 1

    def test_crash_loop_hits_backoff_ceiling_then_fails(self):
        settings = _settings(max_restarts=3, crash_loop_window_s=60.0)
        with Supervisor(settings) as sup:
            sup.add_worker(WorkerSpec("dying-0", _dying_worker, kind="scoring"))
            sup.start()
            events, _ = _collect(
                sup,
                until=lambda e, m: any(x.kind == "failed" for x in e),
                timeout_s=20.0,
            )
            restarts = [e for e in events if e.kind == "restarting"]
            deaths = [e for e in events if e.kind == "died"]
            # max_restarts backoffs, then the (max_restarts+1)-th crash fails it.
            assert len(restarts) == settings.max_restarts
            assert len(deaths) == settings.max_restarts + 1
            delays = [e.delay_s for e in restarts]
            expected = [
                min(settings.backoff_base_s * 2**n, settings.backoff_max_s)
                for n in range(settings.max_restarts)
            ]
            assert delays == pytest.approx(expected)
            assert delays[-1] == settings.backoff_max_s  # ceiling reached
            assert sorted(delays) == delays  # monotone non-decreasing
            assert sup.worker_state("dying-0") == FAILED
            # A failed worker stays failed: no further respawns.
            sup.poll(timeout_s=0.2)
            assert sup.worker_state("dying-0") == FAILED

    def test_kill_minus_nine_reports_signal_exitcode(self):
        with Supervisor(_settings()) as sup:
            sup.add_worker(WorkerSpec("synth-0", synthetic_worker_main, kind="scoring"))
            sup.start()
            _wait_up(sup, ["synth-0"])
            sup.kill_worker("synth-0")
            events, _ = _collect(
                sup, until=lambda e, m: any(x.kind == "died" for x in e)
            )
            death = next(e for e in events if e.kind == "died")
            assert death.exitcode == -9
            _wait_up(sup, ["synth-0"])  # and it comes back
            assert sup.health()["synth-0"]["restarts"] == 1

    def test_graceful_drain_delivers_pending_scores(self):
        """Drain after dispatch: slow workers still ack everything, exit 0."""
        with Supervisor(_settings(workers=2)) as sup:
            for i in range(2):
                sup.add_worker(
                    WorkerSpec(
                        f"synth-{i}",
                        synthetic_worker_main,
                        {"service_time_s": 0.1},
                        kind="scoring",
                    )
                )
            sup.start()
            _wait_up(sup, ["synth-0", "synth-1"])
            for batch_id in range(4):
                sup.send(
                    f"synth-{batch_id % 2}",
                    messages.score_batch(
                        batch_id, [batch_id], np.asarray([[float(batch_id), 1.0]])
                    ),
                )
            events = sup.drain()
            acked = [
                e.msg["batch_id"]
                for e in events
                if e.kind == "msg" and e.msg["t"] == messages.SCORE_RESULT
            ]
            assert sorted(acked) == [0, 1, 2, 3]
            assert sup.worker_state("synth-0") == STOPPED
            assert sup.worker_state("synth-1") == STOPPED
            # Drain-exit is not a crash: no restarts, no crash counters.
            assert all(w["restarts"] == 0 for w in sup.health().values())


# ---------------------------------------------------------------------------
# process scoring pool (the MobiWatch bridge)


@pytest.fixture(scope="module")
def tiny_detector():
    detector = AutoencoderDetector(
        window=4, feature_dim=6, hidden_dim=16, latent_dim=4, seed=3
    )
    rng = np.random.default_rng(3)
    detector.fit(rng.random((80, 24)), epochs=2, lr=0.05)
    return detector


class TestProcessScoringPool:
    def test_scores_bit_identical_to_in_process(self, tiny_detector):
        rng = np.random.default_rng(11)
        vectors = [rng.random(24) for _ in range(10)]
        expected = [
            float(tiny_detector.scores(v.reshape(1, -1))[0]) for v in vectors
        ]
        got = {}
        with ProcessScoringPool(
            tiny_detector, RuntimeSettings(workers=2), clock=lambda: 7.25
        ) as pool:
            for i, vector in enumerate(vectors):
                pool.submit(i, vector, lambda s, done, i=i: got.__setitem__(i, (s, done)))
            assert pool.pending == 10
            delivered = pool.flush()
        assert delivered == 10
        for i, want in enumerate(expected):
            score, done = got[i]
            assert score == want  # bitwise: same NumPy, same [1, dim] shape
            assert done == 7.25  # sim clock, frozen across the flush
        assert pool.windows_scored == 10

    def test_callbacks_in_submission_order(self, tiny_detector):
        order = []
        with ProcessScoringPool(tiny_detector, RuntimeSettings(workers=2)) as pool:
            for i in range(8):
                pool.submit(i, np.full(24, 0.1 * i), lambda s, t, i=i: order.append(i))
            pool.flush()
        assert order == list(range(8))

    def test_close_delivers_pending_and_is_idempotent(self, tiny_detector):
        pool = ProcessScoringPool(tiny_detector, RuntimeSettings(workers=1))
        scores = []
        for i in range(3):
            pool.submit(i, np.full(24, 0.2), lambda s, t: scores.append(s))
        assert pool.close() == 3
        assert len(scores) == 3
        assert pool.closed
        assert pool.close() == 0
        with pytest.raises(RuntimeError):
            pool.submit(9, np.full(24, 0.2), lambda s, t: None)
        # All workers were shut down, not crash-looped.
        assert all(
            w["state"] in (STOPPED, FAILED) and w["restarts"] == 0
            for w in pool.supervisor.health().values()
        )

    def test_sticky_deterministic_assignment(self, tiny_detector):
        with ProcessScoringPool(tiny_detector, RuntimeSettings(workers=4)) as pool:
            first = {s: pool.worker_for(s) for s in range(32)}
            assert {pool.worker_for(s) for s in range(32)} == set(first.values())
            for s, worker in first.items():
                assert pool.worker_for(s) == worker


# ---------------------------------------------------------------------------
# process backend: fault injection, invariant


@pytest.fixture(scope="module")
def soak_workload():
    config = SoakConfig(
        sessions=32,
        bank_records=192,
        hidden_dim=32,
        latent_dim=8,
        train_epochs=1,
        dispatch_records=8,
        dispatch_interval_s=0.005,
    )
    bank, detector = build_soak_workload(config)
    return config, bank, detector


class TestProcessBackend:
    def test_kill_nine_mid_trial_loses_no_acked_work(self, soak_workload):
        config, bank, detector = soak_workload
        with ProcessBackend(config.runtime_settings()) as backend:
            backend.start(detector)
            trial = backend.run_trial(bank, 150.0, 2.0, kill_at_s=0.5)
        assert trial.killed_worker is not None
        assert trial.completed == trial.offered
        assert trial.dropped == 0
        assert trial.acked_score_loss == 0
        assert trial.duplicate_acks == 0
        assert trial.restarts >= 1
        assert trial.invariant["ok"]
        assert trial.invariant["offered"] == trial.invariant["scored"]
        assert trial.sdl_acked == trial.offered

    def test_crash_after_batches_redispatches(self, soak_workload):
        """A worker that dies mid-stream (not SIGKILL) also loses nothing."""
        config, bank, detector = soak_workload
        with ProcessBackend(
            config.runtime_settings(), crash_after_batches=3
        ) as backend:
            backend.start(detector)
            trial = backend.run_trial(bank, 120.0, 1.0)
        assert trial.completed == trial.offered
        assert trial.acked_score_loss == 0
        assert trial.duplicate_acks == 0
        assert trial.restarts >= 1
        assert trial.invariant["ok"]


# ---------------------------------------------------------------------------
# live pipeline: seed defaults + bit-identity per attack scenario


@pytest.fixture(scope="module")
def benign_windows():
    capture = generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )
    config = XsecConfig()
    return capture.labeled(config.spec, config.window, "benign").windowed.windows


@pytest.fixture(scope="module")
def trained_lstm(benign_windows):
    config = XsecConfig(detector="lstm", train_epochs=6)
    detector = build_detector(config)
    detector.fit(np.asarray(benign_windows), epochs=6, lr=config.train_lr)
    return detector


def _uplink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


def _downlink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


# name -> (attack factory taking the live network, extra NetworkConfig kwargs)
ATTACK_SCENARIOS = {
    "bts_dos": (
        lambda net: BtsDosAttack(net, start_time=3.0, connections=8, interval_s=0.08),
        {},
    ),
    "blind_dos": (
        lambda net: BlindDosAttack(net, victim=net.ues[0], start_time=3.0, replays=5),
        {},
    ),
    "uplink_id_extraction": (_uplink_extraction, {}),
    "downlink_id_extraction": (_downlink_extraction, {}),
    "null_cipher": (
        lambda net: NullCipherAttack(net, start_time=3.0),
        {"amf": AmfConfig(allow_null_algorithms=True)},
    ),
}


def run_live(detector, runtime=None, attack=None, seed=77, until=20.0, net_kwargs=None):
    """One live pipeline run with a pre-trained detector copy deployed."""
    config = XsecConfig(
        detector=detector.name,
        train_epochs=6,
        runtime=runtime or RuntimeSettings(),
    )
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=seed, **(net_kwargs or {})))
    try:
        xsec.deploy_detector(copy.deepcopy(detector))
        for profile in ("pixel5", "oai_ue"):
            ue = xsec.net.add_ue(profile)
            xsec.net.sim.schedule(0.5, ue.start_session)
        if attack is not None:
            attack(xsec.net).arm()
        xsec.run(until=until)
    finally:
        xsec.close()
    return xsec


def event_tuples(xsec):
    return [
        (
            e.detected_at,
            e.session_id,
            e.rnti,
            e.s_tmsi,
            e.score,
            e.threshold,
            e.record_indices,
            e.newest_record_ts,
        )
        for e in xsec.mobiwatch.anomalies
    ]


class TestSeedDefaults:
    def test_default_config_keeps_in_process_scoring(self, trained_lstm):
        xsec = SixGXSec(XsecConfig(detector="lstm"))
        xsec.deploy_detector(copy.deepcopy(trained_lstm))
        assert not isinstance(xsec.mobiwatch.pool, ProcessScoringPool)
        assert xsec.mobiwatch._scoring_path == "seed"
        xsec.close()  # no-op on the seed path

    def test_score_in_processes_swaps_the_pool(self, trained_lstm):
        config = XsecConfig(
            detector="lstm", runtime=RuntimeSettings(score_in_processes=True)
        )
        xsec = SixGXSec(config)
        try:
            xsec.deploy_detector(copy.deepcopy(trained_lstm))
            assert isinstance(xsec.mobiwatch.pool, ProcessScoringPool)
            assert xsec.mobiwatch._scoring_path == "process-2w"
        finally:
            xsec.close()
        assert xsec.mobiwatch.pool.closed


class TestRuntimeScenarioEquality:
    """Process scoring must not perturb the reproduction: AnomalyEvents
    from supervised worker processes are bit-identical to seed scoring."""

    @pytest.mark.parametrize(
        "scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS)
    )
    def test_process_scoring_bit_identical_to_seed(self, trained_lstm, scenario):
        factory, net_kwargs = ATTACK_SCENARIOS[scenario]
        seed_run = run_live(trained_lstm, attack=factory, net_kwargs=net_kwargs)
        proc = run_live(
            trained_lstm,
            runtime=RuntimeSettings(score_in_processes=True),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        assert proc.mobiwatch._scoring_path == "process-2w"
        assert proc.mobiwatch.records_seen == seed_run.mobiwatch.records_seen
        assert proc.mobiwatch.windows_scored == seed_run.mobiwatch.windows_scored
        assert proc.mobiwatch.windows_scored > 0
        assert event_tuples(proc) == event_tuples(seed_run)
