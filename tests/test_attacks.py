"""Tests for the five attack implementations and their telemetry signatures."""

import pytest

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.core_network import AmfConfig
from repro.telemetry import MobiFlowCollector


def make_net(seed=3, with_benign=2, **config_kwargs):
    net = FiveGNetwork(NetworkConfig(seed=seed, **config_kwargs))
    for i in range(with_benign):
        ue = net.add_ue("pixel5" if i % 2 == 0 else "galaxy_a22")
        net.sim.schedule(0.1 + 0.8 * i, ue.start_session)
    return net


def collect(net):
    return MobiFlowCollector().parse_stream(net.pcap)


class TestBtsDos:
    def test_floods_fresh_rntis(self):
        net = make_net()
        attack = BtsDosAttack(net, start_time=2.0, connections=10, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        assert len(attack.malicious_rntis) >= 10

    def test_sessions_end_at_authentication(self):
        net = make_net()
        attack = BtsDosAttack(net, start_time=2.0, connections=8, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        series = collect(net)
        by_session = series.sessions()
        attack_sessions = [
            msgs
            for msgs in by_session.values()
            if msgs and msgs[0].rnti in attack.malicious_rntis
        ]
        assert len(attack_sessions) >= 8
        for msgs in attack_sessions:
            names = [m.msg for m in msgs]
            assert "AuthenticationResponse" not in names
            # ends with the challenge or the eventual forced release
            assert "AuthenticationRequest" in names or "RRCRelease" in names

    def test_ground_truth_excludes_benign_traffic(self):
        net = make_net()
        attack = BtsDosAttack(net, start_time=2.0, connections=6, interval_s=0.05)
        attack.arm()
        net.run(until=20.0)
        series = collect(net)
        benign_rntis = {
            r.rnti
            for r in series
            if r.rnti is not None and r.rnti not in attack.malicious_rntis
        }
        assert benign_rntis, "expected benign traffic alongside the attack"
        assert not benign_rntis & attack.malicious_rntis

    def test_arming_twice_rejected(self):
        net = make_net(with_benign=0)
        attack = BtsDosAttack(net)
        attack.arm()
        with pytest.raises(RuntimeError):
            attack.arm()


class TestBlindDos:
    def _run(self, seed=3):
        net = make_net(seed=seed, with_benign=1)
        victim = net.ues[0]
        attack = BlindDosAttack(net, victim=victim, start_time=3.0, replays=5)
        attack.arm()
        net.run(until=25.0)
        return net, victim, attack

    def test_replays_victim_tmsi(self):
        net, victim, attack = self._run()
        series = collect(net)
        replayed = [
            r
            for r in series
            if r.rnti in attack.malicious_rntis and r.msg == "RRCSetupRequest"
        ]
        assert len(replayed) >= 5
        tmsis = {r.s_tmsi for r in replayed}
        assert len(tmsis) == 1, "all replays must carry the same sniffed TMSI"

    def test_waits_for_victim_registration(self):
        net, victim, attack = self._run()
        assert attack.window_start is not None
        # All attack activity happens after the victim had an S-TMSI.
        assert victim.s_tmsi is not None

    def test_ground_truth_covers_attack_sessions(self):
        net, victim, attack = self._run()
        series = collect(net)
        malicious = [r for r in series if attack.is_malicious(r)]
        assert malicious
        assert all(r.rnti in attack.malicious_rntis for r in malicious)


class TestUplinkIdExtraction:
    def _run(self, seed=3):
        net = make_net(seed=seed, with_benign=1)
        victim = net.add_ue("pixel6", name="victim")
        net.sim.schedule(2.5, victim.start_session)
        attack = UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)
        attack.arm()
        net.run(until=25.0)
        return net, victim, attack

    def test_suci_downgraded_to_null_scheme(self):
        net, victim, attack = self._run()
        series = collect(net)
        malicious = [r for r in series if attack.is_malicious(r)]
        assert len(malicious) == 1
        record = malicious[0]
        assert record.msg == "RegistrationRequest"
        assert record.suci.startswith("suci-null-")
        assert victim.supi.msin in record.suci
        assert record.exposes_permanent_identity()

    def test_trace_remains_standard_compliant(self):
        net, victim, attack = self._run()
        # Registration still succeeds: null-scheme SUCI is legal.
        assert victim.guti is not None

    def test_extraction_counter(self):
        net, victim, attack = self._run()
        assert attack.extractions == 1

    def test_no_effect_outside_window(self):
        net = make_net(seed=3, with_benign=1)
        victim = net.add_ue("pixel6", name="victim")
        net.sim.schedule(8.0, victim.start_session)  # after window closes
        attack = UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=3.0)
        attack.arm()
        net.run(until=25.0)
        assert attack.extractions == 0


class TestDownlinkIdExtraction:
    def _run(self, seed=3):
        net = make_net(seed=seed, with_benign=1)
        victim = net.add_ue("pixel6", name="victim")
        net.sim.schedule(2.5, victim.start_session)
        attack = DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)
        attack.arm()
        net.run(until=25.0)
        return net, victim, attack

    def test_supi_extracted(self):
        net, victim, attack = self._run()
        assert attack.extracted_supis == [str(victim.supi)]

    def test_out_of_order_sequence_in_telemetry(self):
        net, victim, attack = self._run()
        series = collect(net)
        malicious = [r for r in series if attack.is_malicious(r)]
        assert len(malicious) == 1
        identity_response = malicious[0]
        assert identity_response.supi == str(victim.supi)
        # The entry immediately preceding it in the same session is the
        # AuthenticationRequest — the Figure 2a out-of-order signature.
        session = [r for r in series if r.session_id == identity_response.session_id]
        idx = session.index(identity_response)
        assert session[idx - 1].msg == "AuthenticationRequest"

    def test_victim_still_registers_afterwards(self):
        net, victim, attack = self._run()
        assert victim.guti is not None

    def test_single_shot_by_default(self):
        net, victim, attack = self._run()
        assert attack.shots_left == 0
        series = collect(net)
        # Only one IdentityResponse carrying a plaintext SUPI.
        leaks = [r for r in series if r.supi is not None]
        assert len(leaks) == 1


class TestNullCipher:
    def _run(self, seed=3, allow_null=True):
        net = make_net(seed=seed, with_benign=1, amf=AmfConfig(allow_null_algorithms=allow_null))
        attack = NullCipherAttack(net, start_time=2.0)
        attack.arm()
        net.run(until=25.0)
        return net, attack

    def test_null_algorithms_negotiated(self):
        net, attack = self._run()
        series = collect(net)
        smc = [
            r
            for r in series
            if r.msg == "NASSecurityModeCommand" and r.rnti in attack.malicious_rntis
        ]
        assert len(smc) == 1
        assert smc[0].cipher_alg == 0
        assert smc[0].integrity_alg == 0

    def test_benign_smc_unaffected(self):
        net, attack = self._run()
        series = collect(net)
        benign_smc = [
            r
            for r in series
            if r.msg == "NASSecurityModeCommand" and r.rnti not in attack.malicious_rntis
        ]
        assert benign_smc
        assert all(r.cipher_alg != 0 for r in benign_smc)

    def test_registration_succeeds_with_null_security(self):
        net, attack = self._run()
        assert attack.rogue is not None
        assert attack.rogue.guti is not None
        assert attack.rogue.last_cipher is not None
        assert attack.rogue.last_cipher.is_null
        assert attack.rogue.last_integrity.is_null

    def test_strict_network_rejects_null_only_ue(self):
        net, attack = self._run(allow_null=False)
        assert attack.rogue is not None
        assert attack.rogue.guti is None
        assert net.amf.registrations_rejected >= 1
