"""Tests for MobiFlow collection: parsing, sessions, state tracking."""

from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector, decode_record, encode_record
from repro.telemetry.encoder import decode_batch, encode_batch
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

import pytest


def run_benign(seed=1, ues=1, until=30.0):
    net = FiveGNetwork(NetworkConfig(seed=seed))
    for i in range(ues):
        ue = net.add_ue("pixel5" if i % 2 == 0 else "galaxy_a53")
        net.sim.schedule(0.2 * i, ue.start_session)
    net.run(until=until)
    return net


class TestCollector:
    def test_records_are_time_ordered(self):
        net = run_benign(ues=3)
        series = MobiFlowCollector().parse_stream(net.pcap)
        times = [r.timestamp for r in series]
        assert times == sorted(times)

    def test_wrappers_not_emitted(self):
        net = run_benign()
        names = set(MobiFlowCollector().parse_stream(net.pcap).message_names())
        assert "ULInformationTransfer" not in names
        assert "DLInformationTransfer" not in names
        assert "F1ULRRCMessageTransfer" not in names
        assert "NGUplinkNASTransport" not in names

    def test_nas_not_double_counted(self):
        net = run_benign()
        series = MobiFlowCollector().parse_stream(net.pcap)
        reg_requests = [r for r in series if r.msg == "RegistrationRequest"]
        assert len(reg_requests) == 1

    def test_sessions_assigned_per_connection(self):
        net = run_benign(ues=2)
        series = MobiFlowCollector().parse_stream(net.pcap)
        sessions = series.sessions()
        assert len([s for s in sessions if s != 0]) >= 2
        for session_id, records in sessions.items():
            if session_id == 0:
                continue
            rntis = {r.rnti for r in records}
            assert len(rntis) == 1, "one RNTI per session"
            assert records[0].msg == "RRCSetupRequest"

    def test_security_algorithms_captured(self):
        net = run_benign()
        series = MobiFlowCollector().parse_stream(net.pcap)
        nas_smc = next(r for r in series if r.msg == "NASSecurityModeCommand")
        assert nas_smc.cipher_alg == 2
        assert nas_smc.integrity_alg == 2
        rrc_smc = next(r for r in series if r.msg == "RRCSecurityModeCommand")
        assert rrc_smc.cipher_alg == 2

    def test_tmsi_sticky_within_session(self):
        net = run_benign()
        series = MobiFlowCollector().parse_stream(net.pcap)
        accept_index = next(
            i for i, r in enumerate(series) if r.msg == "RegistrationAccept"
        )
        session = series[accept_index].session_id
        tmsi = series[accept_index].s_tmsi
        assert tmsi is not None
        after = [
            r
            for r in list(series)[accept_index:]
            if r.session_id == session
        ]
        assert all(r.s_tmsi == tmsi for r in after)

    def test_live_subscription_sees_all_records(self):
        net = run_benign()
        collector = MobiFlowCollector()
        live: list[MobiFlowRecord] = []
        collector.subscribe(live.append)
        series = collector.parse_stream(net.pcap)
        assert live == series.records

    def test_direction_and_protocol_fields(self):
        net = run_benign()
        series = MobiFlowCollector().parse_stream(net.pcap)
        by_name = {r.msg: r for r in series}
        assert by_name["RRCSetupRequest"].direction == "UL"
        assert by_name["RRCSetupRequest"].protocol == "RRC"
        assert by_name["AuthenticationRequest"].direction == "DL"
        assert by_name["AuthenticationRequest"].protocol == "NAS"

    def test_unknown_interface_rejected(self):
        collector = MobiFlowCollector()
        from repro.ran.rrc import RrcSetup

        with pytest.raises(ValueError):
            collector.on_capture(0.0, "E1AP", RrcSetup())


class TestEncoder:
    def _record(self):
        return MobiFlowRecord(
            timestamp=1.25,
            msg="RegistrationRequest",
            protocol="NAS",
            direction="UL",
            session_id=3,
            rnti=0x1234,
            suci="suci-001-01-abcd",
        )

    def test_record_roundtrip(self):
        record = self._record()
        assert decode_record(encode_record(record)) == record

    def test_none_fields_not_encoded(self):
        from repro import wire

        payload = wire.decode(encode_record(self._record()))
        assert "supi" not in payload
        assert "cipher_alg" not in payload

    def test_batch_roundtrip(self):
        records = [self._record(), self._record()]
        assert decode_batch(encode_batch(records)) == records

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            MobiFlowRecord.from_dict({"timestamp": 0.0, "msg": "x", "bogus": 1})


class TestTelemetrySeries:
    def test_append_enforces_time_order(self):
        series = TelemetrySeries()
        series.append(
            MobiFlowRecord(timestamp=1.0, msg="A", protocol="RRC", direction="UL")
        )
        with pytest.raises(ValueError):
            series.append(
                MobiFlowRecord(timestamp=0.5, msg="B", protocol="RRC", direction="UL")
            )

    def test_slicing_returns_series(self):
        series = TelemetrySeries(
            [
                MobiFlowRecord(timestamp=float(i), msg=f"M{i}", protocol="RRC", direction="UL")
                for i in range(5)
            ]
        )
        sliced = series[1:3]
        assert isinstance(sliced, TelemetrySeries)
        assert len(sliced) == 2
        assert sliced[0].msg == "M1"

    def test_time_span(self):
        series = TelemetrySeries(
            [
                MobiFlowRecord(timestamp=1.0, msg="A", protocol="RRC", direction="UL"),
                MobiFlowRecord(timestamp=4.0, msg="B", protocol="RRC", direction="UL"),
            ]
        )
        assert series.time_span() == 3.0
        assert TelemetrySeries().time_span() == 0.0

    def test_exposes_permanent_identity(self):
        base = dict(timestamp=0.0, msg="X", protocol="NAS", direction="UL")
        assert MobiFlowRecord(**base, supi="imsi-001").exposes_permanent_identity()
        assert MobiFlowRecord(
            **base, suci="suci-null-001-01-123456789"
        ).exposes_permanent_identity()
        assert not MobiFlowRecord(
            **base, suci="suci-001-01-abcd"
        ).exposes_permanent_identity()
        assert not MobiFlowRecord(**base).exposes_permanent_identity()
