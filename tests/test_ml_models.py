"""Tests for the autoencoder, LSTM (incl. BPTT gradient check), thresholds,
metrics, detectors, and the error-pattern classifier."""

import numpy as np
import pytest

from repro.ml import (
    Autoencoder,
    AutoencoderDetector,
    DetectionMetrics,
    ErrorPatternClassifier,
    LstmDetector,
    LstmPredictor,
    PercentileThreshold,
    confusion_matrix,
)
from repro.ml.losses import mse_loss


def synthetic_patterns(n, dim, rng, anomaly=False):
    """One-hot-ish pattern data: benign repeats a sparse motif with noise."""
    base = np.zeros(dim)
    base[::4] = 1.0  # sparse motif: bits 0, 4, 8, ...
    data = np.tile(base, (n, 1))
    flips = rng.random(data.shape) < 0.01
    data = np.abs(data - flips.astype(float))
    if anomaly:
        # Invert a block of the motif: a pattern benign noise cannot produce.
        data[:, : min(8, dim)] = 1.0 - np.tile(base[: min(8, dim)], (n, 1))
    return data


class TestAutoencoder:
    def test_rejects_non_compressing_latent(self):
        with pytest.raises(ValueError):
            Autoencoder(input_dim=8, hidden_dim=8, latent_dim=8)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        data = synthetic_patterns(300, 40, rng)
        model = Autoencoder(input_dim=40, hidden_dim=32, latent_dim=8, seed=1)
        report = model.fit(data, epochs=20, lr=3e-3)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_anomalies_score_higher(self):
        rng = np.random.default_rng(0)
        benign = synthetic_patterns(400, 40, rng)
        anomalous = synthetic_patterns(50, 40, rng, anomaly=True)
        model = Autoencoder(input_dim=40, hidden_dim=32, latent_dim=8, seed=1)
        model.fit(benign, epochs=30, lr=3e-3)
        benign_scores = model.reconstruction_errors(benign)
        anomaly_scores = model.reconstruction_errors(anomalous)
        assert anomaly_scores.mean() > 3 * benign_scores.mean()

    def test_empty_training_rejected(self):
        model = Autoencoder(input_dim=8, hidden_dim=4, latent_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 8)))

    def test_wrong_input_dim_rejected(self):
        model = Autoencoder(input_dim=8, hidden_dim=4, latent_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 9)))

    def test_training_is_deterministic_per_seed(self):
        rng = np.random.default_rng(0)
        data = synthetic_patterns(100, 20, rng)

        def run():
            model = Autoencoder(input_dim=20, hidden_dim=16, latent_dim=4, seed=5)
            model.fit(data, epochs=5)
            return model.reconstruction_errors(data)

        assert np.array_equal(run(), run())

    def test_encode_dims(self):
        model = Autoencoder(input_dim=20, hidden_dim=16, latent_dim=4)
        latent = model.encode(np.zeros((3, 20)))
        assert latent.shape == (3, 4)


class TestLstmBptt:
    def test_gradient_check_full_bptt(self):
        """Analytic BPTT gradients must match finite differences."""
        rng = np.random.default_rng(4)
        model = LstmPredictor(input_dim=3, hidden_dim=4, output_dim=3, seed=2)
        x = rng.normal(size=(2, 5, 3))
        target = rng.normal(size=(2, 5, 3))

        def loss_fn():
            return mse_loss(model.forward(x), target)[0]

        for param in model.params():
            param.zero_grad()
        loss, grad = mse_loss(model.forward(x), target)
        model.backward(grad)

        from tests.test_ml_layers import numeric_gradient

        for param in model.params():
            numeric = numeric_gradient(loss_fn, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-5), param.shape

    def test_forward_shapes(self):
        model = LstmPredictor(input_dim=6, hidden_dim=4, seed=0)
        out = model.forward(np.zeros((3, 7, 6)))
        assert out.shape == (3, 7, 6)

    def test_rejects_wrong_input_shape(self):
        model = LstmPredictor(input_dim=6, hidden_dim=4)
        with pytest.raises(ValueError):
            model.forward(np.zeros((3, 6)))

    def test_learns_simple_sequence(self):
        """Predict a deterministic cyclic one-hot sequence."""
        dim = 4
        cycle = np.eye(dim)
        seq = np.stack([cycle[(np.arange(6) + s) % dim] for s in range(dim)])
        targets = np.stack([cycle[(np.arange(1, 7) + s) % dim] for s in range(dim)])
        model = LstmPredictor(input_dim=dim, hidden_dim=16, seed=3)
        report = model.fit(seq, targets, epochs=200, lr=1e-2)
        assert report.final_loss < 0.01

    def test_per_step_errors_localize_anomaly(self):
        dim = 4
        cycle = np.eye(dim)
        seq = np.stack([cycle[(np.arange(6) + s) % dim] for s in range(dim)])
        targets = np.stack([cycle[(np.arange(1, 7) + s) % dim] for s in range(dim)])
        model = LstmPredictor(input_dim=dim, hidden_dim=16, seed=3)
        model.fit(seq, targets, epochs=200, lr=1e-2)
        corrupted = targets[:1].copy()
        corrupted[0, 3] = np.roll(corrupted[0, 3], 1)  # wrong symbol at step 3
        errors = model.per_step_errors(seq[:1], corrupted)
        assert errors.shape == (1, 6)
        assert errors[0].argmax() == 3


class TestThreshold:
    def test_fit_and_classify(self):
        threshold = PercentileThreshold(percentile=90.0)
        threshold.fit(np.arange(100, dtype=float))
        decisions = threshold.classify(np.array([50.0, 95.0]))
        assert list(decisions) == [False, True]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PercentileThreshold().classify(np.array([1.0]))

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            PercentileThreshold().fit(np.array([]))

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            PercentileThreshold(percentile=0.0).fit(np.array([1.0]))


class TestMetrics:
    def test_confusion_matrix(self):
        y_true = np.array([1, 1, 0, 0], dtype=bool)
        y_pred = np.array([1, 0, 1, 0], dtype=bool)
        assert confusion_matrix(y_true, y_pred) == (1, 1, 1, 1)

    def test_perfect_detection(self):
        metrics = DetectionMetrics(tp=10, fp=0, tn=90, fn=0)
        assert metrics.accuracy == 1.0
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_benign_dataset_na_fields(self):
        metrics = DetectionMetrics(tp=0, fp=5, tn=95, fn=0)
        assert metrics.recall is None
        assert metrics.f1 is None
        assert not metrics.has_positives
        row = metrics.as_row()
        assert row["recall"] == "N/A"
        assert row["accuracy"] == "95.00%"

    def test_false_positive_rate(self):
        metrics = DetectionMetrics(tp=0, fp=5, tn=95, fn=0)
        assert metrics.false_positive_rate == pytest.approx(0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestDetectors:
    def _window_data(self, rng, n, window=4, dim=10, anomaly=False):
        rows = synthetic_patterns(n * window, dim, rng, anomaly=anomaly)
        return rows.reshape(n, window * dim)

    def test_autoencoder_detector_flow(self):
        rng = np.random.default_rng(5)
        benign = self._window_data(rng, 300)
        detector = AutoencoderDetector(window=4, feature_dim=10, hidden_dim=32, latent_dim=8, seed=1)
        detector.fit(benign, epochs=20)
        assert detector.threshold.threshold is not None
        anomalous = self._window_data(rng, 20, anomaly=True)
        assert detector.detect(anomalous).mean() > 0.9
        assert detector.detect(benign).mean() < 0.05

    def test_autoencoder_mean_aggregation(self):
        rng = np.random.default_rng(5)
        benign = self._window_data(rng, 50)
        det_max = AutoencoderDetector(window=4, feature_dim=10, seed=1, aggregate="max")
        det_mean = AutoencoderDetector(window=4, feature_dim=10, seed=1, aggregate="mean")
        det_max.fit(benign, epochs=3)
        det_mean.fit(benign, epochs=3)
        assert np.all(det_max.scores(benign) >= det_mean.scores(benign) - 1e-12)

    def test_bad_aggregate_rejected(self):
        with pytest.raises(ValueError):
            AutoencoderDetector(window=4, feature_dim=10, aggregate="median")

    def test_lstm_detector_flow(self):
        rng = np.random.default_rng(6)
        benign = self._window_data(rng, 300)
        detector = LstmDetector(window=4, feature_dim=10, hidden_dim=16, seed=1)
        detector.fit(benign, epochs=20)
        anomalous = self._window_data(rng, 20, anomaly=True)
        assert detector.detect(anomalous).mean() > 0.7

    def test_lstm_needs_window_two(self):
        with pytest.raises(ValueError):
            LstmDetector(window=1, feature_dim=10)

    def test_detector_rejects_wrong_width(self):
        detector = AutoencoderDetector(window=4, feature_dim=10)
        with pytest.raises(ValueError):
            detector.scores(np.zeros((2, 39)))

    def test_per_slot_errors_shape(self):
        rng = np.random.default_rng(5)
        benign = self._window_data(rng, 30)
        detector = AutoencoderDetector(window=4, feature_dim=10, seed=1)
        detector.fit(benign, epochs=2)
        slots = detector.per_slot_errors(benign)
        assert slots.shape == (30, 4)
        assert np.allclose(slots.max(axis=1), detector.scores(benign))


class TestLstmSessionContext:
    def _windowed(self, rng, sessions=20, length=10, window=4, dim=10, anomaly_session=None):
        """Build a sessionized WindowedDataset from synthetic per-session data."""
        from repro.telemetry.features import FeatureSpec, WindowedDataset
        from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

        spec = FeatureSpec(
            message_vocab=("A",),
            cause_vocab=("c",),
            include_state=False,
            include_timing=False,
            include_rates=False,
            include_identifiers=False,
        )
        records = []
        t = 0.0
        for s in range(1, sessions + 1):
            for k in range(length):
                records.append(
                    MobiFlowRecord(
                        timestamp=t, msg="A", protocol="RRC", direction="UL", session_id=s
                    )
                )
                t += 0.1
        series = TelemetrySeries(records)
        return spec, WindowedDataset.from_series(series, spec, window)

    def test_record_errors_zero_for_first_record(self):
        rng = np.random.default_rng(8)
        detector = LstmDetector(window=4, feature_dim=3, hidden_dim=8, seed=1)
        per_record = rng.random((10, 3))
        groups = [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        errors = detector.record_errors(per_record, groups)
        assert errors[0] == 0.0 and errors[5] == 0.0
        assert errors.shape == (10,)

    def test_session_window_scores_shape_and_threshold_fit(self):
        rng = np.random.default_rng(9)
        spec, windowed = self._windowed(rng)
        detector = LstmDetector(
            window=4, feature_dim=spec.dim, hidden_dim=8, seed=1, percentile=97.5
        )
        detector.fit_with_session_context(windowed, epochs=3)
        assert detector.threshold.threshold is not None
        scores = detector.session_window_scores(windowed)
        assert scores.shape == (windowed.num_windows,)
        assert np.all(scores >= 0.0)

    def test_singleton_group_scores_zero(self):
        detector = LstmDetector(window=4, feature_dim=3, hidden_dim=8, seed=1)
        errors = detector.record_errors(np.random.default_rng(0).random((3, 3)), [[0]])
        assert errors[0] == 0.0


class TestErrorPatternClassifier:
    def _burst(self, kind, rng):
        length = rng.integers(8, 20)
        x = np.linspace(0, 1, length)
        if kind == "spike":
            return np.exp(-((x - 0.5) ** 2) / 0.01)
        if kind == "ramp":
            return x
        return np.ones(length) * 0.5 + rng.normal(0, 0.01, length)

    def test_classifies_distinct_shapes(self):
        rng = np.random.default_rng(7)
        bursts, labels = [], []
        for kind in ("spike", "ramp", "flat"):
            for _ in range(4):
                bursts.append(self._burst(kind, rng))
                labels.append(kind)
        classifier = ErrorPatternClassifier()
        classifier.fit(bursts, labels)
        assert classifier.labels == ["flat", "ramp", "spike"]
        for kind in ("spike", "ramp", "flat"):
            assert classifier.predict(self._burst(kind, rng)) == kind

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            ErrorPatternClassifier().predict(np.ones(5))

    def test_misaligned_fit_rejected(self):
        with pytest.raises(ValueError):
            ErrorPatternClassifier().fit([np.ones(4)], ["a", "b"])

    def test_empty_burst_rejected(self):
        from repro.ml.error_classifier import error_signature

        with pytest.raises(ValueError):
            error_signature(np.array([]))

    def test_signature_is_scale_invariant(self):
        from repro.ml.error_classifier import error_signature

        burst = np.array([0.1, 0.5, 0.2])
        assert np.allclose(error_signature(burst), error_signature(burst * 10))
