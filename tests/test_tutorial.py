"""The docs/WRITING_AN_XAPP.md tutorial, executed.

Keeps the tutorial honest: this test builds the exact KPI-monitor xApp the
document walks through and checks every documented behaviour.
"""

from repro.oran import NearRtRic, RicAgent
from repro.oran.e2ap import ActionType
from repro.oran.e2sm_kpm import (
    MOBIFLOW_RAN_FUNCTION_ID,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.oran.xapp import XApp
from repro.ran import FiveGNetwork, NetworkConfig
from repro.ran.links import InterfaceLink


class KpiMonitorXApp(XApp):
    """Counts control messages per session; bars noisy identities."""

    SETUPS_BEFORE_BARRING = 5

    def start(self):
        super().start()
        self._setups_per_tmsi = {}
        self.acks = []
        trigger = MobiFlowKpmModel.encode_event_trigger(
            MobiFlowReportStyle(report_period_s=0.1).to_trigger()
        )
        self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger, ActionType.REPORT)

    def on_indication(self, indication):
        records = MobiFlowKpmModel.decode_indication(
            indication.indication_header, indication.indication_message
        )
        for record in records:
            self.sdl.append("kpi", "messages", record.msg)
            if record.msg == "RRCSetupRequest" and record.s_tmsi is not None:
                count = self._setups_per_tmsi.get(record.s_tmsi, 0) + 1
                self._setups_per_tmsi[record.s_tmsi] = count
                if count == self.SETUPS_BEFORE_BARRING:
                    self._bar(record.s_tmsi)

    def _bar(self, tmsi):
        header, message = MobiFlowKpmModel.encode_control(
            "blocklist_tmsi", tmsi=tmsi
        )
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)

    def on_control_ack(self, ack):
        self.acks.append(ack)

    def on_policy(self, policy_type_id, policy):
        if "threshold_percentile" in policy:
            self.SETUPS_BEFORE_BARRING = int(policy["threshold_percentile"])


def deploy(seed=71):
    net = FiveGNetwork(NetworkConfig(seed=seed))
    e2 = InterfaceLink(net.sim, "E2", latency_s=0.002)
    agent = RicAgent(net, e2)
    ric = NearRtRic(net.sim, e2)
    e2.connect(a_handler=agent.on_e2, b_handler=ric.e2term.on_e2)
    xapp = KpiMonitorXApp(ric, "kpi-monitor")
    agent.start()
    ric.start()
    return net, ric, xapp


class TestTutorialXApp:
    def test_kpi_counters_accumulate(self):
        net, ric, xapp = deploy()
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.5, ue.start_session)
        net.run(until=30.0)
        messages = ric.sdl.get("kpi", "messages")
        assert messages and "RegistrationRequest" in messages

    def test_noisy_identity_gets_barred(self):
        from repro.attacks import BlindDosAttack

        net, ric, xapp = deploy(seed=72)
        victim = net.add_ue("pixel6", name="victim")
        net.sim.schedule(0.5, victim.start_session)
        attack = BlindDosAttack(net, victim=victim, start_time=5.0, replays=8)
        attack.arm()
        net.run(until=60.0)
        # The replayed S-TMSI crossed the xApp's threshold and was barred.
        assert xapp.acks and xapp.acks[0].success
        assert net.cu.tmsi_blocklist

    def test_policy_tunes_the_threshold(self):
        net, ric, xapp = deploy(seed=73)
        ric.deliver_policy("kpi-monitor", 20008, {"threshold_percentile": 2})
        assert xapp.SETUPS_BEFORE_BARRING == 2
