"""Tests for model/telemetry persistence and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.ml import AutoencoderDetector, LstmDetector
from repro.ml.serialize import SerializeError, load_detector, save_detector
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector
from repro.telemetry.persist import load_pcap, load_series, save_pcap, save_series


@pytest.fixture(scope="module")
def small_capture():
    net = FiveGNetwork(NetworkConfig(seed=5))
    for i in range(2):
        ue = net.add_ue("pixel5")
        net.sim.schedule(0.2 + i, ue.start_session)
    net.run(until=20.0)
    series = MobiFlowCollector().parse_stream(net.pcap)
    return net, series


class TestDetectorSerialization:
    def _trained(self, cls, **kwargs):
        rng = np.random.default_rng(0)
        windows = rng.random((120, 4 * 10))
        detector = cls(window=4, feature_dim=10, seed=1, **kwargs)
        detector.fit(windows, epochs=3)
        return detector, windows

    @pytest.mark.parametrize("cls", [AutoencoderDetector, LstmDetector])
    def test_roundtrip_preserves_scores(self, cls, tmp_path):
        detector, windows = self._trained(cls)
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        restored = load_detector(path)
        assert restored.name == detector.name
        assert restored.threshold.threshold == detector.threshold.threshold
        assert np.allclose(restored.scores(windows), detector.scores(windows))

    def test_unfitted_detector_rejected(self, tmp_path):
        detector = AutoencoderDetector(window=4, feature_dim=10)
        with pytest.raises(SerializeError):
            save_detector(detector, tmp_path / "model.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(SerializeError):
            load_detector(path)

    def test_training_scores_preserved(self, tmp_path):
        detector, _ = self._trained(AutoencoderDetector)
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        restored = load_detector(path)
        assert np.allclose(restored.training_scores, detector.training_scores)


class TestTelemetryPersistence:
    def test_series_roundtrip(self, small_capture, tmp_path):
        _, series = small_capture
        path = tmp_path / "capture.mfl"
        written = save_series(series, path)
        assert written > 0
        restored = load_series(path)
        assert restored.records == series.records

    def test_series_bad_magic(self, tmp_path):
        path = tmp_path / "bad.mfl"
        path.write_bytes(b"nope")
        with pytest.raises(ValueError):
            load_series(path)

    def test_pcap_roundtrip(self, small_capture, tmp_path):
        net, _ = small_capture
        path = tmp_path / "capture.pcap"
        save_pcap(net.pcap, path)
        restored = load_pcap(path)
        assert len(restored) == len(net.pcap)
        # Re-parsing the restored capture yields identical telemetry.
        series_a = MobiFlowCollector().parse_stream(net.pcap)
        series_b = MobiFlowCollector().parse_stream(restored)
        assert series_a.records == series_b.records


class TestCli:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        benign = root / "benign.mfl"
        attack = root / "attack.mfl"
        model = root / "model.npz"
        assert (
            main(
                [
                    "collect",
                    "--kind",
                    "benign",
                    "--out",
                    str(benign),
                    "--duration",
                    "120",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "collect",
                    "--kind",
                    "attack",
                    "--out",
                    str(attack),
                    "--duration",
                    "90",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "train",
                    "--data",
                    str(benign),
                    "--model",
                    str(model),
                    "--epochs",
                    "15",
                ]
            )
            == 0
        )
        return benign, attack, model

    def test_detect_benign_is_quietish(self, workspace, capsys):
        benign, attack, model = workspace
        code = main(["detect", "--data", str(benign), "--model", str(model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows scored" in out

    def test_detect_attack_fail_on_alarm(self, workspace):
        benign, attack, model = workspace
        code = main(
            ["detect", "--data", str(attack), "--model", str(model), "--fail-on-alarm"]
        )
        assert code == 2

    def test_explain_session(self, workspace, capsys):
        benign, attack, model = workspace
        from repro.telemetry.persist import load_series

        series = load_series(attack)
        session = next(r.session_id for r in series if r.session_id)
        code = main(
            ["explain", "--data", str(attack), "--session", str(session)]
        )
        assert code == 0
        assert "Verdict:" in capsys.readouterr().out

    def test_explain_missing_session(self, workspace):
        benign, attack, model = workspace
        assert main(["explain", "--data", str(attack), "--session", "999999"]) == 1

    def test_pcap_export(self, tmp_path):
        out = tmp_path / "t.mfl"
        pcap = tmp_path / "t.pcap"
        assert (
            main(
                [
                    "collect",
                    "--kind",
                    "benign",
                    "--out",
                    str(out),
                    "--pcap",
                    str(pcap),
                    "--duration",
                    "60",
                ]
            )
            == 0
        )
        assert pcap.stat().st_size > 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
