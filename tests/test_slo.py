"""Tests for repro.slo: objectives, alerts, profilers, export, provenance.

Covers the observability plane's contracts: burn-rate math over sliding
windows, the alert state machine's dwell times and flap suppression,
OpenMetrics exposition shape, profiler self-time attribution, the
provenance evidence chain's SDL round trip, and the obs bench's gating
logic. Everything runs on explicit fake clocks — no wall-clock sleeps.
"""

import json

import numpy as np
import pytest

from repro.hotpath.incremental import _PROFILE_SAMPLE, IncrementalLstmScorer
from repro.hotpath.settings import HotpathSettings
from repro.ml.detector import LstmDetector
from repro.obs.metrics import MetricsRegistry
from repro.oran.sdl import SharedDataLayer
from repro.slo import profiler as profiler_mod
from repro.slo.bench import ObsBenchResult, violations
from repro.slo.exporter import (
    ContinuousExporter,
    HealthScoreboard,
    render_openmetrics,
)
from repro.slo.objectives import (
    ALERT_FIRING,
    ALERT_INACTIVE,
    ALERT_PENDING,
    AlertState,
    SloEngine,
    SloObjective,
    default_objectives,
)
from repro.slo.profiler import Profiler, SamplingProfiler
from repro.slo.provenance import (
    ProvenanceStore,
    SDL_PROVENANCE_NS,
    capture_digest,
    model_snapshot_id,
)
from repro.slo.runtime import SloRuntime
from repro.slo.settings import SloSettings
from repro.telemetry.mobiflow import MobiFlowRecord


def _records(n, start_ts=1.0, session_id=7):
    return [
        MobiFlowRecord(
            timestamp=start_ts + 0.01 * i,
            msg=f"RRCSetupRequest{i}",
            protocol="RRC",
            direction="UL",
            session_id=session_id,
            rnti=17000 + i,
        )
        for i in range(n)
    ]


def _detector():
    return LstmDetector(window=3, feature_dim=4, hidden_dim=4, seed=0)


class TestSloSettings:
    def test_defaults_are_all_off(self):
        s = SloSettings()
        assert not s.enabled and not s.profiler and not s.sampling_profiler
        assert s.export_interval_s == 0.0
        assert not s.any_enabled

    def test_full_turns_the_plane_on(self):
        s = SloSettings.full(export_path="/tmp/x.jsonl")
        assert s.enabled and s.profiler and s.export_interval_s > 0
        assert s.any_enabled and s.export_path == "/tmp/x.jsonl"

    def test_validation(self):
        with pytest.raises(ValueError):
            SloSettings(eval_interval_s=0.0)
        with pytest.raises(ValueError):
            SloSettings(fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError):
            SloSettings(sampling_interval_s=0.0)
        with pytest.raises(ValueError):
            SloSettings(export_interval_s=-1.0)


class TestSloObjective:
    def test_kind_and_target_validated(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="weird", target=0.9)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", target=1.0, metric="m")
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", target=0.9)  # no metric
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="ratio", target=0.9, bad_metric="b")

    def test_budget_and_sli_text(self):
        latency = SloObjective(
            name="lat", kind="latency", target=0.99, metric="m", threshold=0.5
        )
        assert latency.budget == pytest.approx(0.01)
        assert "m <= 0.5s" == latency.sli_text()
        ratio = SloObjective(
            name="r", kind="ratio", target=0.9, bad_metric="b", total_metric="t"
        )
        assert ratio.sli_text() == "b / t"

    def test_default_objectives_reference_emitted_families(self):
        names = {o.name for o in default_objectives()}
        assert "detection-latency" in names and "ingest-drop-rate" in names


class TestAlertState:
    SETTINGS = SloSettings(enabled=True, pending_for_s=2.0, resolve_after_s=5.0)

    def test_pending_then_firing_then_resolved(self):
        a = AlertState()
        assert a.update(0.0, True, self.SETTINGS) == ALERT_PENDING
        assert a.update(1.0, True, self.SETTINGS) is None  # dwell not met
        assert a.update(2.0, True, self.SETTINGS) == ALERT_FIRING
        assert a.update(3.0, False, self.SETTINGS) is None  # recovery starts
        assert a.update(7.0, False, self.SETTINGS) is None  # dwell not met
        assert a.update(8.0, False, self.SETTINGS) == "resolved"
        assert a.state == ALERT_INACTIVE

    def test_immature_breach_returns_to_inactive_silently(self):
        a = AlertState()
        assert a.update(0.0, True, self.SETTINGS) == ALERT_PENDING
        assert a.update(1.0, False, self.SETTINGS) is None
        assert a.state == ALERT_INACTIVE and a.flaps == 0

    def test_flap_suppressed_while_firing(self):
        a = AlertState()
        a.update(0.0, True, self.SETTINGS)
        a.update(2.0, True, self.SETTINGS)
        assert a.state == ALERT_FIRING
        a.update(3.0, False, self.SETTINGS)  # brief recovery...
        assert a.update(4.0, True, self.SETTINGS) is None  # ...re-breach
        assert a.state == ALERT_FIRING and a.flaps == 1
        # The suppressed flap restarts the recovery dwell.
        a.update(5.0, False, self.SETTINGS)
        assert a.update(10.0, False, self.SETTINGS) == "resolved"


class TestSloEngine:
    def _engine(self, metrics, clock, **overrides):
        settings = SloSettings(
            enabled=True,
            eval_interval_s=1.0,
            fast_window_s=3.0,
            slow_window_s=10.0,
            fast_burn_threshold=2.0,
            slow_burn_threshold=999.0,  # isolate the fast window
            pending_for_s=2.0,
            resolve_after_s=3.0,
            **overrides,
        )
        objective = SloObjective(
            name="drops", kind="ratio", target=0.5, bad_metric="t.bad",
            total_metric="t.total",
        )
        return SloEngine(metrics, settings=settings, objectives=[objective], clock=clock)

    def test_ratio_attainment_and_burn(self):
        metrics = MetricsRegistry()
        bad = metrics.counter("t.bad")
        total = metrics.counter("t.total")
        wall = [0.0]
        engine = self._engine(metrics, lambda: wall[0])
        total.inc(100)
        engine.tick()
        wall[0] = 1.0
        total.inc(100)
        bad.inc(50)  # attainment 0.5 over the window -> burn 1.0
        engine.tick()
        row = engine.report()[0]
        assert row["attainment"] == pytest.approx(0.75)  # cumulative
        assert row["fast_burn"] == pytest.approx(1.0)
        assert row["alert"] == ALERT_INACTIVE

    def test_alert_lifecycle_and_transition_events(self):
        metrics = MetricsRegistry()
        bad = metrics.counter("t.bad")
        total = metrics.counter("t.total")
        wall = [0.0]
        engine = self._engine(metrics, lambda: wall[0])
        engine.tick()
        # Burn the whole budget: attainment 0 -> burn 2.0 >= fast threshold.
        for t in (1.0, 2.0, 3.0):
            wall[0] = t
            total.inc(10)
            bad.inc(10)
            engine.tick()
        assert engine.alert_state("drops") == ALERT_FIRING
        # Full recovery, held past resolve_after_s. The fast window must
        # slide past the bad samples for the burn to clear.
        for t in (4.0, 5.0, 6.0, 7.0, 8.0):
            wall[0] = t
            total.inc(10)
            engine.tick()
        assert engine.alert_state("drops") == ALERT_INACTIVE
        states = [e.to_state for e in engine.events]
        assert states == [ALERT_PENDING, ALERT_FIRING, "resolved"]
        fired = metrics.counter(
            "slo.alert_transitions_total", labels={"objective": "drops", "to": "firing"}
        )
        assert fired.value == 1

    def test_latency_objective_reads_histogram_buckets(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("t.lat", buckets=(0.01, 0.1, 1.0))
        wall = [0.0]
        settings = SloSettings(enabled=True, eval_interval_s=1.0)
        objective = SloObjective(
            name="lat", kind="latency", target=0.9, metric="t.lat", threshold=0.1
        )
        engine = SloEngine(
            metrics, settings=settings, objectives=[objective], clock=lambda: wall[0]
        )
        engine.tick()  # t=0 baseline sample: windows are delta-based
        for value in (0.005, 0.05, 0.5):  # 2 of 3 within the 0.1s threshold
            hist.observe(value)
        wall[0] = 1.0
        engine.tick()
        row = engine.report()[0]
        assert row["good"] == 2 and row["total"] == 3
        assert metrics.gauge("slo.attainment", labels={"objective": "lat"}).value == (
            pytest.approx(2 / 3)
        )

    def test_render_is_tabular(self):
        metrics = MetricsRegistry()
        engine = SloEngine(metrics, settings=SloSettings(enabled=True))
        text = engine.render()
        assert "objective" in text and "burn(fast)" in text
        assert engine.render_alerts() == "no alert transitions recorded"


class TestOpenMetrics:
    def test_exposition_shape(self):
        metrics = MetricsRegistry()
        metrics.counter("a.requests", help="reqs").inc(3)
        metrics.gauge("a.depth", labels={"pool": "p0"}).set(2.5)
        hist = metrics.histogram("a.lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_openmetrics(metrics)
        assert text.endswith("# EOF\n")
        assert "# TYPE a_requests_total counter" in text
        assert "a_requests_total 3" in text
        assert 'a_depth{pool="p0"} 2.5' in text
        assert 'a_lat_bucket{le="0.1"} 1' in text
        assert 'a_lat_bucket{le="+Inf"} 2' in text
        assert "a_lat_count 2" in text

    def test_names_sanitized(self):
        metrics = MetricsRegistry()
        metrics.counter("weird-name.with-dash").inc()
        text = render_openmetrics(metrics)
        assert "weird_name_with_dash_total 1" in text


class TestProfiler:
    def test_nested_blocks_attribute_self_time(self):
        prof = Profiler()
        with prof.block("outer"):
            with prof.block("inner"):
                pass
        rows = {r["stage"]: r for r in prof.stage_table()}
        assert rows["outer"]["calls"] == 1 and rows["inner"]["calls"] == 1
        # The parent's total includes the child; its self time does not.
        assert rows["outer"]["total_s"] >= rows["inner"]["total_s"]
        assert rows["outer"]["self_s"] <= rows["outer"]["total_s"]
        stacks = prof.collapsed_stacks()
        for line in stacks.splitlines():
            path, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert path in ("outer", "outer;inner")

    def test_record_folds_sampled_measurements(self):
        prof = Profiler()
        prof.record("hot", 0.128, calls=128)
        row = prof.stage_table()[0]
        assert row["calls"] == 128
        assert row["mean_us"] == pytest.approx(1000.0)
        assert row["max_us"] == pytest.approx(1000.0)

    def test_render_without_samples(self):
        assert Profiler().render() == "profiler: no samples"

    def test_global_activation_contract(self):
        assert profiler_mod.CURRENT is None
        prof = profiler_mod.activate(Profiler())
        try:
            assert profiler_mod.CURRENT is prof
            with profiler_mod.profile_block("x"):
                pass
            assert prof.stage_table()[0]["stage"] == "x"
        finally:
            profiler_mod.deactivate()
        # Inactive: the shared null block records nothing.
        with profiler_mod.profile_block("y"):
            pass
        assert [r["stage"] for r in prof.stage_table()] == ["x"]


class TestSamplingProfiler:
    def test_sample_once_collects_this_stack(self):
        sampler = SamplingProfiler(interval_s=0.005)
        sampler.sample_once()
        assert sampler.samples == 1
        stacks = sampler.collapsed_stacks()
        assert "test_sample_once_collects_this_stack" in stacks

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestContinuousExporter:
    def test_snapshot_lines_and_file_append(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("e.count").inc(2)
        out = tmp_path / "snap.jsonl"
        exporter = ContinuousExporter(metrics, path=str(out), interval_s=5.0)
        exporter.snapshot_once()
        metrics.counter("e.count").inc()
        exporter.snapshot_once()
        lines = out.read_text().splitlines()
        assert len(lines) == 2 == exporter.snapshots
        assert all(json.loads(line) for line in lines)

    def test_ring_is_bounded(self):
        exporter = ContinuousExporter(MetricsRegistry(), interval_s=1.0)
        exporter.max_lines = 4
        for _ in range(10):
            exporter.snapshot_once()
        assert len(exporter.lines) == 4 and exporter.snapshots == 10


class TestHealthScoreboard:
    def _board(self, wall):
        metrics = MetricsRegistry()
        return metrics, HealthScoreboard(
            metrics, clock=lambda: wall[0], stale_after_s=4.0, backlog_degraded=8
        )

    def test_heartbeat_fresh_degraded_down(self):
        wall = [0.0]
        _, board = self._board(wall)
        board.heartbeat("mobiwatch")
        assert board.statuses()["mobiwatch"] == "up"
        wall[0] = 2.5  # past half the stale window
        assert board.statuses()["mobiwatch"] == "degraded"
        wall[0] = 4.5
        assert board.statuses()["mobiwatch"] == "down"
        assert board.down_components() == ["mobiwatch"]

    def test_registry_heartbeats_discovered(self):
        wall = [1.0]
        metrics, board = self._board(wall)
        # A component stamping the shared family directly (no board ref).
        metrics.gauge(
            "health.heartbeat_ts", labels={"component": "analyzer"}
        ).set(1.0)
        assert board.statuses()["analyzer"] == "up"

    def test_probe_backlog_marks_degraded(self):
        wall = [0.0]
        metrics, board = self._board(wall)
        backlog = [0.0]
        board.register_probe("pool.w0", lambda: {"up": True, "backlog": backlog[0]})
        assert board.statuses()["pool.w0"] == "up"
        backlog[0] = 9.0
        assert board.statuses()["pool.w0"] == "degraded"
        board.register_probe("pool.w1", lambda: {"up": False})
        statuses = board.statuses()
        assert statuses["pool.w1"] == "down"
        # Health is exported as a gauge family too.
        score = metrics.gauge("health.status", labels={"component": "pool.w1"})
        assert score.value == 0.0

    def test_render_lists_components(self):
        wall = [0.0]
        _, board = self._board(wall)
        assert "no components" in board.render()
        board.heartbeat("x")
        assert "x" in board.render()


class TestProvenance:
    def test_mint_fills_detection_chain(self):
        store = ProvenanceStore()
        records = _records(3)
        record = store.mint(
            session_id=7,
            detected_at=2.0,
            score=0.9,
            threshold=0.5,
            record_indices=(4, 5, 6),
            records=records,
            detector=_detector(),
            scoring_path="seed",
            arrival_ts=1.5,
        )
        assert record.provenance_id == 1 and len(store) == 1
        assert record.capture_digest == capture_digest(records)
        assert record.trace_id == "7-000001"
        assert record.stage_timings_s["capture"] == pytest.approx(0.02)
        assert record.stage_timings_s["indication"] == pytest.approx(0.48)
        assert record.stage_timings_s["detection"] == pytest.approx(0.5)
        assert "(pending)" in record.render()

    def test_sdl_round_trip_grows_with_the_chain(self):
        sdl = SharedDataLayer()
        store = ProvenanceStore(sdl=sdl)
        record = store.mint(
            session_id=3,
            detected_at=2.0,
            score=0.9,
            threshold=0.5,
            record_indices=(0, 1, 2),
            records=_records(3),
            detector=_detector(),
            scoring_path="seed",
        )
        persisted = sdl.get(SDL_PROVENANCE_NS, "000001")
        assert persisted["capture_digest"] == record.capture_digest
        assert "verdict_completed_at" not in persisted  # None values dropped
        store.attach_verdict(
            record.provenance_id,
            model="chatgpt-4o",
            verdict_text="anomalous",
            top_attack="Blind DoS",
            confirmed=True,
            completed_at=4.5,
        )
        store.attach_action(record.provenance_id, action="release_ue", action_at=4.6)
        persisted = sdl.get(SDL_PROVENANCE_NS, "000001")
        assert persisted["verdict_model"] == "chatgpt-4o"
        assert persisted["verdict_completed_at"] == 4.5
        assert persisted["action"] == "release_ue"
        assert persisted["stage_timings_s"]["verdict"] == pytest.approx(2.5)
        assert persisted["stage_timings_s"]["action"] == pytest.approx(0.1)
        rendered = store.get(record.provenance_id).render()
        assert "Blind DoS" in rendered and "release_ue" in rendered

    def test_attach_to_unknown_id_is_a_noop(self):
        store = ProvenanceStore()
        assert store.attach_action(None, action="x", action_at=1.0) is None
        assert store.attach_action(99, action="x", action_at=1.0) is None

    def test_snapshot_ids_track_identity(self):
        a, b = _detector(), _detector()
        assert model_snapshot_id(a) == model_snapshot_id(b)  # same seed
        b.model.Wx.value[0, 0] += 1.0
        assert model_snapshot_id(a) != model_snapshot_id(b)
        assert capture_digest(_records(2)) == capture_digest(_records(2))
        assert capture_digest(_records(2)) != capture_digest(_records(3))

    def test_minted_counter(self):
        metrics = MetricsRegistry()
        store = ProvenanceStore(metrics=metrics)
        store.mint(
            session_id=1,
            detected_at=1.0,
            score=1.0,
            threshold=0.5,
            record_indices=(0,),
            records=_records(1),
            detector=_detector(),
            scoring_path="seed",
        )
        assert metrics.counter("slo.provenance_records_total").value == 1


class TestSloRuntime:
    def test_disabled_settings_build_nothing(self):
        runtime = SloRuntime(SloSettings(), MetricsRegistry())
        assert runtime.engine is None and runtime.scoreboard is None
        assert runtime.profiler is None and runtime.exporter is None
        runtime.shutdown()

    def test_full_settings_build_the_plane(self):
        runtime = SloRuntime(SloSettings.full(), MetricsRegistry())
        try:
            assert runtime.engine is not None and runtime.scoreboard is not None
            assert profiler_mod.CURRENT is runtime.profiler
            runtime.finalize()
            assert runtime.engine.ticks == 1
            assert runtime.exporter.snapshots == 1
        finally:
            runtime.shutdown()
        assert profiler_mod.CURRENT is None

    def test_collapsed_stacks_concatenates_sources(self):
        runtime = SloRuntime(SloSettings.full(), MetricsRegistry())
        try:
            with profiler_mod.profile_block("stage.a"):
                pass
            assert "stage.a" in runtime.collapsed_stacks()
        finally:
            runtime.shutdown()


class TestHotpathInstrumentation:
    def _scorer(self, metrics=None):
        detector = LstmDetector(window=3, feature_dim=5, hidden_dim=4, seed=1)
        return IncrementalLstmScorer(
            detector, HotpathSettings(incremental=True), metrics=metrics
        )

    def test_counters_follow_the_stream(self):
        metrics = MetricsRegistry()
        scorer = self._scorer(metrics)
        rows = np.random.default_rng(0).normal(size=(4, 5)).astype(np.float32)
        for row in rows:
            scorer.push(1, row)
            scorer.window_score(1)
        assert metrics.counter("hotpath.incremental_steps_total").value == 4
        assert metrics.counter("hotpath.incremental_window_scores_total").value == 4
        assert metrics.gauge("hotpath.incremental_sessions").value == 1.0

    def test_unwired_scorer_streams_identically(self):
        plain = self._scorer()
        observed = self._scorer(MetricsRegistry())
        prof = profiler_mod.activate(Profiler())
        try:
            rows = np.random.default_rng(2).normal(size=(8, 5)).astype(np.float32)
            for row in rows:
                plain.push(1, row)
                observed.push(1, row)
                observed.window_score(1)
        finally:
            profiler_mod.deactivate()
        assert np.array_equal(plain.record_errors(1), observed.record_errors(1))

    def test_sampled_profile_extrapolates(self):
        scorer = self._scorer(MetricsRegistry())
        rows = np.random.default_rng(3).normal(size=(3, 5)).astype(np.float32)
        for row in rows:
            scorer.push(1, row)
        prof = profiler_mod.activate(Profiler())
        try:
            scorer._prof_skip = 1  # force the next call to be the sample
            scorer.window_score(1)
        finally:
            profiler_mod.deactivate()
        row = prof.stage_table()[0]
        assert row["stage"] == "hotpath.window_score"
        assert row["calls"] == _PROFILE_SAMPLE


class TestObsBenchGating:
    def _result(self, overhead_pct):
        result = ObsBenchResult()
        result.per_record = {"overhead_pct": overhead_pct}
        result.equality = {"observed_scores_exact": True}
        return result

    def test_ceiling(self):
        assert violations(self._result(2.9)) == []
        failures = violations(self._result(3.1))
        assert any("ceiling" in f for f in failures)

    def test_equality_breaks_gate(self):
        result = self._result(0.5)
        result.equality["observed_scores_exact"] = False
        assert any("equality" in f for f in violations(result))

    def test_baseline_creep_is_additive(self):
        baseline = {"per_record": {"overhead_pct": 0.5}}
        assert violations(self._result(2.4), baseline) == []
        failures = violations(self._result(2.6), baseline)
        assert any("crept" in f for f in failures)
