"""Tests for the shared training loop (validation split, early stopping)."""

import numpy as np
import pytest

from repro.ml import Autoencoder, LstmPredictor
from repro.ml.training import (
    TrainConfig,
    train_autoencoder,
    train_lstm,
    train_minibatch,
)


class LinearTrainable:
    """y = xW, trainable; a minimal protocol implementation."""

    def __init__(self, dim, seed=0):
        from repro.ml.layers import Dense

        self.layer = Dense(dim, dim, np.random.default_rng(seed))

    def forward(self, x):
        return self.layer.forward(x)

    def backward(self, grad):
        self.layer.backward(grad)

    def params(self):
        return self.layer.params()


class TestTrainMinibatch:
    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 6))
        w_true = rng.normal(size=(6, 6))
        y = x @ w_true
        model = LinearTrainable(6)
        history = train_minibatch(model, x, y, TrainConfig(epochs=40, lr=3e-2))
        assert history.epoch_losses[-1] < 0.05 * history.epoch_losses[0]
        assert not history.stopped_early

    def test_validation_split_and_early_stop(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 4))
        y = x.copy()
        model = LinearTrainable(4, seed=1)
        history = train_minibatch(
            model,
            x,
            y,
            TrainConfig(
                epochs=500, lr=5e-2, validation_fraction=0.2, patience=3
            ),
        )
        assert history.validation_losses
        assert history.stopped_early
        assert len(history.epoch_losses) < 500
        assert 0 <= history.best_epoch < len(history.epoch_losses)

    def test_misaligned_inputs_rejected(self):
        model = LinearTrainable(3)
        with pytest.raises(ValueError):
            train_minibatch(model, np.zeros((4, 3)), np.zeros((5, 3)))

    def test_empty_dataset_rejected(self):
        model = LinearTrainable(3)
        with pytest.raises(ValueError):
            train_minibatch(model, np.zeros((0, 3)), np.zeros((0, 3)))

    def test_bad_validation_fraction_rejected(self):
        model = LinearTrainable(3)
        with pytest.raises(ValueError):
            train_minibatch(
                model,
                np.zeros((4, 3)),
                np.zeros((4, 3)),
                TrainConfig(validation_fraction=1.5),
            )


class TestModelAdapters:
    def test_train_autoencoder_shared_loop(self):
        rng = np.random.default_rng(2)
        data = (rng.random((150, 20)) > 0.7).astype(float)
        model = Autoencoder(input_dim=20, hidden_dim=16, latent_dim=4, seed=2)
        history = train_autoencoder(model, data, TrainConfig(epochs=15, lr=3e-3))
        assert history.epoch_losses[-1] < history.epoch_losses[0]
        # The trained model reconstructs better than an untrained clone.
        fresh = Autoencoder(input_dim=20, hidden_dim=16, latent_dim=4, seed=99)
        assert (
            model.reconstruction_errors(data).mean()
            < fresh.reconstruction_errors(data).mean()
        )

    def test_train_autoencoder_shape_check(self):
        model = Autoencoder(input_dim=20, hidden_dim=16, latent_dim=4)
        with pytest.raises(ValueError):
            train_autoencoder(model, np.zeros((5, 19)), TrainConfig())

    def test_train_lstm_shared_loop_with_early_stop(self):
        dim = 4
        cycle = np.eye(dim)
        seq = np.stack([cycle[(np.arange(6) + s) % dim] for s in range(dim)] * 10)
        targets = np.stack(
            [cycle[(np.arange(1, 7) + s) % dim] for s in range(dim)] * 10
        )
        model = LstmPredictor(input_dim=dim, hidden_dim=16, seed=3)
        history = train_lstm(
            model,
            seq,
            targets,
            TrainConfig(epochs=400, lr=1e-2, validation_fraction=0.2, patience=5),
        )
        assert history.final_loss < 0.05
        assert history.validation_losses
