"""Tests for the ``repro.obs`` observability package and loop tracing.

Covers the three pillars (metrics registry, structured logger, tracer),
their integration with the simulation engine, and the closed-loop
pipeline's incident latency edge cases + trace reconstruction.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import XsecConfig
from repro.core.mobiwatch import AnomalyEvent
from repro.core.pipeline import ClosedLoopPipeline, IncidentRecord
from repro.obs import LOOP_STAGES, ObsContext
from repro.obs.logging import DEBUG, ERROR, INFO, WARNING, ObsLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RESERVOIR_CAP,
    MetricsRegistry,
    WallTimer,
)
from repro.obs.tracing import SimWallSpan, Tracer
from repro.sim.engine import Simulator
from repro.sim.entity import Entity


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        # Same name + labels -> same series object.
        assert registry.counter("requests_total") is c

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("ok")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        a = registry.counter("msgs", labels={"mtype": "1"})
        b = registry.counter("msgs", labels={"mtype": "2"})
        assert a is not b
        a.inc(5)
        assert b.value == 0
        # Label order must not matter.
        ab = registry.counter("pair", labels={"x": 1, "y": 2})
        ba = registry.counter("pair", labels={"y": 2, "x": 1})
        assert ab is ba

    def test_gauge_set_and_collect_fn(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(7)
        assert g.value == 7.0
        g.inc()
        g.dec(2)
        assert g.value == 6.0
        backing = [1, 2, 3]
        live = registry.gauge("live_depth", fn=lambda: len(backing))
        backing.append(4)
        assert live.value == 4.0

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in (0.01, 0.02, 0.03, 0.04):
            h.observe(v)
        s = h.stats()
        assert s["n"] == 4
        assert s["min"] == 0.01
        assert s["max"] == 0.04
        assert s["mean"] == pytest.approx(0.025)
        assert s["sum"] == pytest.approx(0.10)
        assert s["p50"] in (0.02, 0.03)
        assert h.stats() == h.stats()  # read-only

    def test_histogram_empty_stats(self):
        h = MetricsRegistry().histogram("empty")
        assert h.stats() == {"n": 0}
        assert h.percentile(50) is None

    def test_histogram_bucket_counts(self):
        h = MetricsRegistry().histogram("b", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        # One observation per bucket incl. the +inf overflow.
        assert h.bucket_counts == [1, 1, 1]

    def test_histogram_reservoir_is_bounded_and_deterministic(self):
        h = MetricsRegistry().histogram("big")
        n = RESERVOIR_CAP + 100
        for i in range(n):
            h.observe(float(i))
        assert h.count == n
        assert len(h._reservoir) == RESERVOIR_CAP
        # Ring overwrite: the oldest 100 observations were replaced.
        assert min(h._reservoir) == 100.0
        assert h.max == float(n - 1)

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(TypeError):
            registry.gauge("metric")

    def test_snapshot_reset_and_jsonl(self):
        ticks = [0.0]
        registry = MetricsRegistry(clock=lambda: ticks[0])
        registry.counter("c", labels={"k": "v"}).inc(3)
        registry.histogram("h").observe(0.5)
        ticks[0] = 12.5
        snap = registry.snapshot()
        assert snap["sim_time_s"] == 12.5
        assert "wall_time_s" in snap
        assert snap["metrics"]["c"]["series"][0] == {"labels": {"k": "v"}, "value": 3.0}
        # JSONL: one valid JSON object per series.
        lines = registry.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"c", "h"}
        # render() is human-readable and mentions every family.
        text = registry.render()
        assert "c{k=v} [counter] 3" in text
        assert "[histogram]" in text
        registry.reset()
        assert registry.names() == []

    def test_wall_timer_observes_duration(self):
        h = MetricsRegistry().histogram("wall")
        with WallTimer(h) as timer:
            sum(range(1000))
        assert h.count == 1
        assert timer.elapsed >= 0.0
        assert h.max == timer.elapsed

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ---------------------------------------------------------------------------
# logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_levels_filter(self):
        logger = ObsLogger(level=INFO)
        assert logger.debug("x", "hidden") is None
        assert logger.info("x", "kept") is not None
        logger.set_level(DEBUG)
        assert logger.debug("x", "now kept") is not None
        assert [r.message for r in logger.records] == ["kept", "now kept"]

    def test_ring_buffer_capacity(self):
        logger = ObsLogger(capacity=4)
        for i in range(10):
            logger.info("c", f"m{i}")
        assert [r.message for r in logger.records] == ["m6", "m7", "m8", "m9"]

    def test_sinks_and_removal(self):
        logger = ObsLogger()
        seen = []
        logger.add_sink(seen.append)
        logger.warning("c", "boom", code=7)
        assert len(seen) == 1
        assert seen[0].level == WARNING
        logger.remove_sink(seen.append)
        logger.error("c", "again")
        assert len(seen) == 1  # sink detached; record still buffered
        assert len(logger.records) == 2

    def test_scoped_logger_and_records_for(self):
        clock = [3.25]
        logger = ObsLogger(clock=lambda: clock[0])
        ue = logger.scoped("ue1")
        gnb = logger.scoped("gnb")
        ue.info("attach", rnti=17)
        gnb.error("rejected")
        assert [r.message for r in logger.records_for("ue1")] == ["attach"]
        record = logger.records_for("ue1")[0]
        assert record.sim_time == 3.25
        assert dict(record.fields) == {"rnti": 17}
        assert record.to_dict()["component"] == "ue1"
        assert "ERROR" in logger.records_for("gnb")[0].render()

    def test_render_and_jsonl(self):
        logger = ObsLogger()
        logger.info("a", "one", n=1)
        logger.info("b", "two")
        assert logger.render(limit=1).endswith("b: two")
        lines = [json.loads(line) for line in logger.to_jsonl().splitlines()]
        assert lines[0]["message"] == "one"
        assert lines[0]["n"] == 1


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_reconstructed_spans_and_durations(self):
        tracer = Tracer()
        trace = tracer.trace("t", session=1)
        trace.span("capture", start=1.0, end=3.0)
        trace.span("detection", start=3.0, end=3.5, score=0.9)
        open_span = trace.span("verdict", start=3.5)
        assert open_span.duration_s is None
        open_span.finish(6.0, confirmed=True)
        assert open_span.duration_s == 2.5
        assert trace.start_s == 1.0
        assert trace.end_s == 6.0
        assert trace.duration_s == 5.0
        assert trace.critical_span().name == "verdict"

    def test_live_span_needs_clock(self):
        trace = Tracer().trace("no-clock")
        with pytest.raises(RuntimeError):
            trace.begin("x")

    def test_live_span_with_clock(self):
        clock = [10.0]
        tracer = Tracer(clock=lambda: clock[0])
        trace = tracer.trace("t")
        with SimWallSpan(trace, "stage", tag="a") as span:
            clock[0] = 11.0
        assert span.start == 10.0
        assert span.end == 11.0
        assert span.wall_cost_s >= 0.0
        assert span.attrs == {"tag": "a"}

    def test_stage_breakdown_respects_order(self):
        tracer = Tracer()
        for i in range(3):
            trace = tracer.trace("t")
            trace.span("b", start=0.0, end=0.1 * (i + 1))
            trace.span("a", start=0.0, end=0.2)
        breakdown = tracer.stage_breakdown(["a", "b"])
        assert list(breakdown) == ["a", "b"]
        assert breakdown["b"]["n"] == 3
        assert breakdown["b"]["max"] == pytest.approx(0.3)
        # Unknown requested stages are dropped, extra stages appended.
        assert "c" not in tracer.stage_breakdown(["c", "a", "b"])

    def test_critical_path_report(self):
        tracer = Tracer()
        for _ in range(2):
            trace = tracer.trace("t")
            trace.span("fast", start=0.0, end=0.1)
            trace.span("slow", start=0.1, end=1.0)
        report = tracer.critical_path_report()
        assert report["traces"] == 2
        assert report["dominant_stage_counts"] == {"slow": 2}
        assert report["end_to_end_s"]["max"] == pytest.approx(1.0)
        text = tracer.render_breakdown(["fast", "slow"])
        assert "slow" in text and "critical path dominated by: slow (2)" in text

    def test_to_dict_round_trips_json(self):
        tracer = Tracer()
        trace = tracer.trace("t", session=9)
        trace.span("s", start=0.0, end=1.0, records=4)
        dumped = json.loads(json.dumps(tracer.to_dict()))
        assert dumped["traces"][0]["spans"][0]["attrs"] == {"records": 4}


# ---------------------------------------------------------------------------
# context + engine integration
# ---------------------------------------------------------------------------


class TestObsContext:
    def test_set_clock_rebinds_all_pillars(self):
        obs = ObsContext()
        obs.set_clock(lambda: 42.0)
        assert obs.metrics.clock() == 42.0
        assert obs.logger.clock() == 42.0
        assert obs.tracer.clock() == 42.0

    def test_snapshot_includes_traces(self):
        obs = ObsContext(clock=lambda: 1.0)
        obs.metrics.counter("c").inc()
        trace = obs.tracer.trace("t")
        trace.span("s", start=0.0, end=0.5)
        snap = obs.snapshot()
        assert snap["metrics"]["c"]["series"][0]["value"] == 1.0
        assert snap["traces"]["traces"] == 1

    def test_simulator_owns_obs_and_counts_events(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert sim.obs.metrics.counter("sim.events_total").value == 2.0
        assert sim.obs.metrics.gauge("sim.queue_depth").value == 0.0
        assert sim.obs.metrics.gauge("sim.events_per_sim_s").value == pytest.approx(1.0)
        # Metrics clock is the simulated clock.
        assert sim.obs.metrics.snapshot()["sim_time_s"] == 2.0

    def test_entity_log_routes_to_structured_logger(self):
        sim = Simulator()
        entity = Entity(sim, "ue7")
        sim.schedule(1.5, lambda: entity.log("attached", rnti=9))
        sim.run()
        assert entity.logs == [(1.5, "attached")]
        records = sim.obs.logger.records_for("ue7")
        assert len(records) == 1
        assert records[0].sim_time == 1.5
        assert dict(records[0].fields) == {"rnti": 9}


# ---------------------------------------------------------------------------
# incident latency edge cases + loop tracing
# ---------------------------------------------------------------------------


def _anomaly(detected_at=5.0, newest_ts=4.6, indices=(0, 1)):
    return AnomalyEvent(
        detected_at=detected_at,
        session_id=1,
        rnti=17,
        s_tmsi=None,
        score=0.9,
        threshold=0.5,
        record_indices=tuple(indices),
        newest_record_ts=newest_ts,
    )


class _FakeVerdict:
    """Duck-typed VerdictEvent: only the fields the pipeline touches."""

    def __init__(self, anomaly, completed_at, confirmed=False):
        self.anomaly = anomaly
        self.completed_at = completed_at
        self.confirmed = confirmed


class _StubRecord:
    def __init__(self, timestamp):
        self.timestamp = timestamp


class _StubMobiWatch:
    """Just enough MobiWatch surface for the pipeline."""

    def __init__(self):
        self.anomalies = []
        self.series = [_StubRecord(4.0), _StubRecord(4.6)]
        self._arrivals = {1: 4.7}
        self.now = 0.0

    def arrival_time(self, index):
        return self._arrivals.get(index)


class _StubAnalyzer:
    def __init__(self):
        self.human_review_queue = []
        self.queries_suppressed = 0
        self._callback = None

    def on_verdict(self, callback):
        self._callback = callback

    def emit(self, event):
        self._callback(event)


def _stub_pipeline():
    mobiwatch = _StubMobiWatch()
    analyzer = _StubAnalyzer()
    pipeline = ClosedLoopPipeline(mobiwatch, analyzer, XsecConfig())
    return pipeline, mobiwatch, analyzer


class TestIncidentLatency:
    def test_detection_latency(self):
        incident = IncidentRecord(anomaly=_anomaly(detected_at=5.0, newest_ts=4.6))
        assert incident.detection_latency_s == pytest.approx(0.4)

    def test_no_verdict_means_no_explanation_latency(self):
        incident = IncidentRecord(anomaly=_anomaly())
        assert incident.explanation_latency_s is None
        assert incident.response_latency_s is None

    def test_verdict_without_action(self):
        anomaly = _anomaly(detected_at=5.0)
        incident = IncidentRecord(
            anomaly=anomaly, verdict=_FakeVerdict(anomaly, completed_at=8.0)
        )
        assert incident.explanation_latency_s == pytest.approx(3.0)
        assert incident.response_latency_s is None

    def test_action_latency(self):
        anomaly = _anomaly(detected_at=5.0)
        incident = IncidentRecord(anomaly=anomaly, action="release_ue", action_at=9.5)
        assert incident.response_latency_s == pytest.approx(4.5)


class TestPipelineIncidents:
    def test_poll_anomalies_is_idempotent(self):
        pipeline, mobiwatch, _ = _stub_pipeline()
        mobiwatch.anomalies.append(_anomaly())
        pipeline.poll_anomalies()
        pipeline.poll_anomalies()
        assert len(pipeline.incidents) == 1

    def test_verdict_before_poll_does_not_duplicate(self):
        """A verdict arriving before poll_anomalies() must dedup by anomaly."""
        pipeline, mobiwatch, analyzer = _stub_pipeline()
        anomaly = _anomaly()
        mobiwatch.anomalies.append(anomaly)
        analyzer.emit(_FakeVerdict(anomaly, completed_at=8.0))
        pipeline.poll_anomalies()
        assert len(pipeline.incidents) == 1
        assert pipeline.incidents[0].verdict is not None
        summary = pipeline.summary()
        assert summary["anomalies"] == 1
        assert summary["verdicts"] == 1

    def test_verdict_for_unseen_anomaly_creates_incident(self):
        pipeline, _, analyzer = _stub_pipeline()
        anomaly = _anomaly()
        analyzer.emit(_FakeVerdict(anomaly, completed_at=7.0))
        assert len(pipeline.incidents) == 1
        assert pipeline.incidents[0].explanation_latency_s == pytest.approx(2.0)

    def test_latency_report_skips_missing_stages(self):
        pipeline, mobiwatch, analyzer = _stub_pipeline()
        mobiwatch.anomalies.append(_anomaly())  # no verdict
        confirmed = _anomaly(detected_at=6.0, newest_ts=5.5)
        mobiwatch.anomalies.append(confirmed)
        analyzer.emit(_FakeVerdict(confirmed, completed_at=9.0))
        report = pipeline.latency_report()
        assert report["detection_s"]["n"] == 2
        assert report["explanation_s"]["n"] == 1
        assert report["response_s"] == {"n": 0}


class TestLoopTracing:
    def test_loop_tracer_reconstructs_all_stages(self):
        pipeline, mobiwatch, analyzer = _stub_pipeline()
        anomaly = _anomaly(detected_at=5.0, newest_ts=4.6, indices=(0, 1))
        mobiwatch.anomalies.append(anomaly)
        analyzer.emit(_FakeVerdict(anomaly, completed_at=8.0))
        incident = pipeline.incidents[0]
        incident.action = "release_ue"
        incident.action_at = 8.2

        tracer = pipeline.loop_tracer()
        assert len(tracer.traces) == 1
        spans = {s.name: s for s in tracer.traces[0].spans}
        assert set(spans) == set(LOOP_STAGES)
        assert spans["capture"].duration_s == pytest.approx(0.6)  # 4.0 -> 4.6
        assert spans["indication"].duration_s == pytest.approx(0.1)  # 4.6 -> 4.7
        assert spans["sdl_write"].duration_s == 0.0
        assert spans["detection"].duration_s == pytest.approx(0.3)  # 4.7 -> 5.0
        assert spans["verdict"].duration_s == pytest.approx(3.0)
        assert spans["action"].duration_s == pytest.approx(0.2)

    def test_loop_tracer_without_arrival_falls_back(self):
        pipeline, mobiwatch, _ = _stub_pipeline()
        mobiwatch._arrivals = {}  # e.g. records ingested before instrumentation
        mobiwatch.anomalies.append(_anomaly(detected_at=5.0, newest_ts=4.6))
        spans = {s.name: s for s in pipeline.loop_tracer().traces[0].spans}
        assert "indication" not in spans
        assert spans["detection"].start == 4.6  # falls back to newest capture

    def test_stage_breakdown_orders_by_loop(self):
        pipeline, mobiwatch, analyzer = _stub_pipeline()
        anomaly = _anomaly()
        mobiwatch.anomalies.append(anomaly)
        analyzer.emit(_FakeVerdict(anomaly, completed_at=8.0))
        breakdown = pipeline.stage_breakdown()
        assert list(breakdown) == [
            s for s in LOOP_STAGES if s in breakdown
        ]
        assert breakdown["detection"]["max"] < 1.0
        text = pipeline.render_stage_breakdown()
        assert "detection" in text and "verdict" in text
