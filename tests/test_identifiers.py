"""Tests for the 5G identifier spaces."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ran.identifiers import (
    RNTI_MAX,
    RNTI_MIN,
    Guti,
    GutiAllocator,
    RntiAllocator,
    Supi,
    TmsiAllocator,
    conceal_supi,
)


class TestSupi:
    def test_str_format(self):
        supi = Supi(mcc="001", mnc="01", msin="123456789")
        assert str(supi) == "imsi-00101123456789"

    def test_parse_roundtrip(self):
        supi = Supi(mcc="310", mnc="26", msin="0123456789")
        assert Supi.parse(str(supi)) == supi

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mcc": "1", "mnc": "01", "msin": "123456789"},
            {"mcc": "abc", "mnc": "01", "msin": "123456789"},
            {"mcc": "001", "mnc": "1", "msin": "123456789"},
            {"mcc": "001", "mnc": "01", "msin": "123"},
            {"mcc": "001", "mnc": "01", "msin": "12345678901234"},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Supi(**kwargs)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Supi.parse("not-an-imsi")
        with pytest.raises(ValueError):
            Supi.parse("imsi-abc")


class TestSuci:
    def test_concealment_hides_msin(self):
        supi = Supi(mcc="001", mnc="01", msin="123456789")
        suci = conceal_supi(supi)
        assert supi.msin not in suci
        assert suci.startswith("suci-001-01-")

    def test_concealment_is_deterministic(self):
        supi = Supi(mcc="001", mnc="01", msin="123456789")
        assert conceal_supi(supi) == conceal_supi(supi)

    def test_different_supis_conceal_differently(self):
        a = conceal_supi(Supi(mcc="001", mnc="01", msin="123456789"))
        b = conceal_supi(Supi(mcc="001", mnc="01", msin="123456780"))
        assert a != b

    def test_key_changes_concealment(self):
        supi = Supi(mcc="001", mnc="01", msin="123456789")
        assert conceal_supi(supi, b"key-a") != conceal_supi(supi, b"key-b")


class TestRntiAllocator:
    def test_allocations_unique_and_in_range(self):
        alloc = RntiAllocator(random.Random(0))
        rntis = [alloc.allocate() for _ in range(500)]
        assert len(set(rntis)) == 500
        assert all(RNTI_MIN <= r <= RNTI_MAX for r in rntis)

    def test_release_allows_reuse(self):
        alloc = RntiAllocator(random.Random(0))
        rnti = alloc.allocate()
        assert rnti in alloc.in_use
        alloc.release(rnti)
        assert rnti not in alloc.in_use

    def test_release_unknown_is_noop(self):
        alloc = RntiAllocator(random.Random(0))
        alloc.release(0x1234)  # must not raise


class TestTmsiAllocator:
    def test_allocations_unique(self):
        alloc = TmsiAllocator(random.Random(1))
        tmsis = [alloc.allocate() for _ in range(1000)]
        assert len(set(tmsis)) == 1000

    def test_values_fit_32_bits(self):
        alloc = TmsiAllocator(random.Random(1))
        assert all(0 <= alloc.allocate() < 2**32 for _ in range(100))


class TestGuti:
    def test_allocator_mints_unique_tmsis(self):
        alloc = GutiAllocator(random.Random(2))
        gutis = [alloc.allocate() for _ in range(100)]
        assert len({g.tmsi for g in gutis}) == 100

    def test_s_tmsi_embeds_tmsi(self):
        guti = Guti(plmn="00101", amf_region=1, amf_set=1, amf_pointer=0, tmsi=0xDEADBEEF)
        assert guti.s_tmsi() & 0xFFFFFFFF == 0xDEADBEEF

    def test_str_contains_tmsi_hex(self):
        guti = Guti(plmn="00101", amf_region=1, amf_set=1, amf_pointer=0, tmsi=0xAB)
        assert str(guti).endswith(f"{0xAB:08x}")

    def test_release_accepts_none(self):
        alloc = GutiAllocator(random.Random(2))
        alloc.release(None)  # must not raise


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=10**9 - 1))
    def test_supi_parse_inverse_of_str(self, msin_value):
        supi = Supi(mcc="001", mnc="01", msin=f"{msin_value:09d}")
        assert Supi.parse(str(supi)) == supi
