"""Tests for the O-RAN platform pieces: SDL, wire PDUs, RMR, A1, SMO."""

import pytest

from repro import wire
from repro.oran.a1 import A1Error, A1Interface, A1PolicyType
from repro.oran.e2ap import (
    ActionType,
    E2apError,
    E2apPdu,
    E2SetupRequest,
    RicIndication,
    RicSubscriptionRequest,
)
from repro.oran.e2sm import E2smError
from repro.oran.e2sm_kpm import (
    ACTION_RELEASE_UE,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.oran.rmr import RIC_INDICATION, RmrRouter, RoutingError
from repro.oran.sdl import SdlError, SharedDataLayer
from repro.oran.smo import JobState, Smo
from repro.sim import Simulator
from repro.telemetry.mobiflow import MobiFlowRecord


class TestSdl:
    def test_set_get_roundtrip(self):
        sdl = SharedDataLayer()
        sdl.set("ns", "key", {"a": 1, "b": [1, 2]})
        assert sdl.get("ns", "key") == {"a": 1, "b": [1, 2]}

    def test_get_default(self):
        assert SharedDataLayer().get("ns", "missing", default=42) == 42

    def test_require_raises(self):
        with pytest.raises(SdlError):
            SharedDataLayer().require("ns", "missing")

    def test_values_must_be_serializable(self):
        sdl = SharedDataLayer()
        with pytest.raises(wire.WireError):
            sdl.set("ns", "key", object())

    def test_values_are_stored_by_value(self):
        sdl = SharedDataLayer()
        value = {"list": [1]}
        sdl.set("ns", "k", value)
        value["list"].append(2)  # mutating the original must not leak in
        assert sdl.get("ns", "k") == {"list": [1]}

    def test_delete(self):
        sdl = SharedDataLayer()
        sdl.set("ns", "k", 1)
        assert sdl.delete("ns", "k") is True
        assert sdl.delete("ns", "k") is False

    def test_keys_sorted(self):
        sdl = SharedDataLayer()
        sdl.set("ns", "b", 1)
        sdl.set("ns", "a", 2)
        assert sdl.keys("ns") == ["a", "b"]

    def test_append_list(self):
        sdl = SharedDataLayer()
        assert sdl.append("ns", "log", "x") == 1
        assert sdl.append("ns", "log", "y") == 2
        assert sdl.get("ns", "log") == ["x", "y"]

    def test_append_non_list_rejected(self):
        sdl = SharedDataLayer()
        sdl.set("ns", "k", 3)
        with pytest.raises(TypeError):
            sdl.append("ns", "k", 1)

    def test_watch_fires_on_write(self):
        sdl = SharedDataLayer()
        seen = []
        sdl.watch("ns", lambda ns, k, v: seen.append((ns, k, v)))
        sdl.set("ns", "k", 1)
        sdl.set("other", "k", 2)  # different namespace: not watched
        assert seen == [("ns", "k", 1)]

    def test_unwatch(self):
        sdl = SharedDataLayer()
        seen = []
        callback = lambda ns, k, v: seen.append(k)
        sdl.watch("ns", callback)
        sdl.unwatch("ns", callback)
        sdl.set("ns", "k", 1)
        assert seen == []


class TestE2apPdus:
    def test_roundtrip_all_pdus(self):
        pdus = [
            E2SetupRequest(e2_node_id="gnb-1", ran_functions={"142": {"name": "kpm"}}),
            RicSubscriptionRequest(
                ric_request_id=3,
                ran_function_id=142,
                event_trigger=b"\x01\x02",
                action_type=ActionType.REPORT,
            ),
            RicIndication(
                ric_request_id=3,
                sequence_number=9,
                indication_header=b"h",
                indication_message=b"m",
            ),
        ]
        for pdu in pdus:
            decoded = E2apPdu.from_wire(pdu.to_wire())
            assert type(decoded) is type(pdu)
            assert decoded == pdu

    def test_action_type_rehydrates(self):
        pdu = RicSubscriptionRequest(action_type=ActionType.POLICY)
        decoded = E2apPdu.from_wire(pdu.to_wire())
        assert decoded.action_type is ActionType.POLICY

    def test_unknown_pdu_rejected(self):
        with pytest.raises(E2apError):
            E2apPdu.from_wire(wire.encode({"pdu": "Bogus", "ie": {}}))

    def test_garbage_rejected(self):
        with pytest.raises(E2apError):
            E2apPdu.from_wire(b"\x00\x01\x02")


class TestMobiFlowKpm:
    def _records(self):
        return [
            MobiFlowRecord(
                timestamp=1.0, msg="RRCSetupRequest", protocol="RRC", direction="UL",
                session_id=1, rnti=0x10,
            ),
            MobiFlowRecord(
                timestamp=1.1, msg="RegistrationRequest", protocol="NAS", direction="UL",
                session_id=1, rnti=0x10, suci="suci-001-01-x",
            ),
        ]

    def test_indication_roundtrip(self):
        header, message = MobiFlowKpmModel.encode_indication(self._records())
        decoded = MobiFlowKpmModel.decode_indication(header, message)
        assert decoded == self._records()

    def test_count_mismatch_detected(self):
        header, _ = MobiFlowKpmModel.encode_indication(self._records())
        _, wrong_message = MobiFlowKpmModel.encode_indication(self._records()[:1])
        with pytest.raises(E2smError):
            MobiFlowKpmModel.decode_indication(header, wrong_message)

    def test_event_trigger_roundtrip(self):
        style = MobiFlowReportStyle(report_period_s=0.25, max_records_per_indication=10)
        trigger = MobiFlowKpmModel.encode_event_trigger(style.to_trigger())
        decoded = MobiFlowReportStyle.from_trigger(
            MobiFlowKpmModel.decode_event_trigger(trigger)
        )
        assert decoded == style

    def test_control_roundtrip(self):
        header, message = MobiFlowKpmModel.encode_control(ACTION_RELEASE_UE, rnti=0x42)
        action, params = MobiFlowKpmModel.decode_control(header, message)
        assert action == ACTION_RELEASE_UE
        assert params == {"rnti": 0x42}

    def test_unknown_control_action_rejected(self):
        with pytest.raises(E2smError):
            MobiFlowKpmModel.encode_control("reboot_gnb")


class TestRmr:
    def test_routes_by_mtype_and_subid(self):
        sim = Simulator()
        rmr = RmrRouter(sim)
        seen = []
        rmr.register_endpoint("xapp-a", lambda m, s, p: seen.append(("a", s, p)))
        rmr.register_endpoint("xapp-b", lambda m, s, p: seen.append(("b", s, p)))
        rmr.add_route(RIC_INDICATION, "xapp-a", sub_id=1)
        rmr.add_route(RIC_INDICATION, "xapp-b", sub_id=2)
        rmr.send(RIC_INDICATION, 1, "payload-1")
        sim.run()
        assert seen == [("a", 1, "payload-1")]

    def test_wildcard_route(self):
        sim = Simulator()
        rmr = RmrRouter(sim)
        seen = []
        rmr.register_endpoint("xapp", lambda m, s, p: seen.append(s))
        rmr.add_route(RIC_INDICATION, "xapp", sub_id=-1)
        rmr.send(RIC_INDICATION, 7, None)
        rmr.send(RIC_INDICATION, 8, None)
        sim.run()
        assert seen == [7, 8]

    def test_unrouted_message_dropped(self):
        sim = Simulator()
        rmr = RmrRouter(sim)
        assert rmr.send(RIC_INDICATION, 1, None) == 0
        assert rmr.messages_dropped == 1

    def test_route_to_unknown_endpoint_rejected(self):
        rmr = RmrRouter(Simulator())
        with pytest.raises(RoutingError):
            rmr.add_route(RIC_INDICATION, "ghost")

    def test_duplicate_endpoint_rejected(self):
        rmr = RmrRouter(Simulator())
        rmr.register_endpoint("x", lambda m, s, p: None)
        with pytest.raises(ValueError):
            rmr.register_endpoint("x", lambda m, s, p: None)

    def test_remove_endpoint_clears_routes(self):
        sim = Simulator()
        rmr = RmrRouter(sim)
        rmr.register_endpoint("x", lambda m, s, p: None)
        rmr.add_route(RIC_INDICATION, "x")
        rmr.remove_endpoint("x")
        assert rmr.send(RIC_INDICATION, 1, None) == 0


class FakeRic:
    """Minimal RIC stand-in for A1/SMO tests."""

    def __init__(self):
        self.delivered = []

    def deliver_policy(self, xapp, type_id, policy):
        self.delivered.append((xapp, type_id, policy))


class TestA1:
    def _a1(self):
        ric = FakeRic()
        a1 = A1Interface(ric)
        a1.register_policy_type(
            A1PolicyType(policy_type_id=1, name="test", schema={"x": int})
        )
        return ric, a1

    def test_put_policy_delivers(self):
        ric, a1 = self._a1()
        a1.put_policy(1, "inst", {"x": 5}, target_xapp="mobiwatch")
        assert ric.delivered == [("mobiwatch", 1, {"x": 5})]
        assert a1.get_policy(1, "inst") == {"x": 5}

    def test_schema_validation(self):
        ric, a1 = self._a1()
        with pytest.raises(A1Error):
            a1.put_policy(1, "inst", {"x": "wrong type"}, target_xapp="m")
        with pytest.raises(A1Error):
            a1.put_policy(1, "inst", {"y": 5}, target_xapp="m")
        with pytest.raises(A1Error):
            a1.put_policy(1, "inst", {"x": 5, "extra": 1}, target_xapp="m")

    def test_unknown_type_rejected(self):
        ric, a1 = self._a1()
        with pytest.raises(A1Error):
            a1.put_policy(99, "inst", {}, target_xapp="m")

    def test_delete_policy(self):
        ric, a1 = self._a1()
        a1.put_policy(1, "inst", {"x": 1}, target_xapp="m")
        assert a1.delete_policy(1, "inst") is True
        assert a1.get_policy(1, "inst") is None


class TestSmo:
    def test_training_job_lifecycle(self):
        smo = Smo(FakeRic())
        deployed = []
        smo.submit_training_job(
            "job",
            collect=lambda: [1, 2, 3],
            train=lambda data: sum(data),
            deploy=deployed.append,
        )
        job = smo.run_job("job")
        assert job.state is JobState.DEPLOYED
        assert job.model == 6
        assert deployed == [6]
        assert smo.model_catalog["job"] == 6

    def test_failed_job_records_error(self):
        smo = Smo(FakeRic())

        def broken(data):
            raise RuntimeError("boom")

        smo.submit_training_job("job", collect=list, train=broken, deploy=lambda m: None)
        job = smo.run_job("job")
        assert job.state is JobState.FAILED
        assert "boom" in job.error

    def test_duplicate_job_rejected(self):
        smo = Smo(FakeRic())
        smo.submit_training_job("job", collect=list, train=list, deploy=lambda m: None)
        with pytest.raises(ValueError):
            smo.submit_training_job("job", collect=list, train=list, deploy=lambda m: None)

    def test_default_policy_types_registered(self):
        smo = Smo(FakeRic())
        assert smo.a1.policy_types() == [20008, 20009]
