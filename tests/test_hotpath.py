"""repro.hotpath: equality contracts, wiring, and the perf gates' logic.

The hot path trades work for speed only where the result is provably the
same, so almost every test here is an equality test:

- defaults keep the seed scoring path (no arena, no incremental scorer,
  no compiled kernels);
- compiled float64 kernels score bit-identically to the plain detectors;
- the cached incremental scorer equals its batch replay bitwise in
  float64 (and within the documented tolerance in float32);
- the fast wire codec is byte-identical to the reference encoder;
- live pipeline runs under every hotpath flag produce the same anomaly
  events as their reference counterpart — checked per attack scenario.
"""

import copy

import numpy as np
import pytest

from repro import wire
from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.hotpath import (
    HotpathSettings,
    IncrementalLstmScorer,
    ScoreMismatch,
    SessionWindowArena,
)
from repro.hotpath.bench import HotpathBenchResult, violations
from repro.ml.detector import AutoencoderDetector, LstmDetector
from repro.ran.core_network import AmfConfig
from repro.ran.network import NetworkConfig
from repro.telemetry import encoder
from repro.telemetry.mobiflow import MobiFlowRecord


# ---------------------------------------------------------------------------
# settings


class TestHotpathSettings:
    def test_defaults_all_off(self):
        settings = HotpathSettings()
        assert not settings.any_enabled
        assert not settings.arena_enabled
        assert settings.incremental_dtype == "float64"

    def test_incremental_implies_arena(self):
        assert HotpathSettings(incremental=True).arena_enabled
        assert HotpathSettings(arena=True).arena_enabled

    def test_incremental_dtype_follows_compiled_float32(self):
        assert HotpathSettings(compiled=True, dtype="float32").incremental_dtype == "float32"
        assert HotpathSettings(compiled=True, dtype="float64").incremental_dtype == "float64"
        assert HotpathSettings(dtype="float32").incremental_dtype == "float64"

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError):
            HotpathSettings(dtype="float16")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            HotpathSettings(incremental_mode="speculative")


# ---------------------------------------------------------------------------
# arena


class TestSessionWindowArena:
    def test_short_session_left_padded_like_seed(self):
        arena = SessionWindowArena(dim=3, window=4)
        rows = np.arange(6, dtype=np.float32).reshape(2, 3) + 1.0
        for row in rows:
            arena.append(7, row)
        got = arena.window_rows(7)
        padded = np.zeros((4, 3), dtype=np.float32)
        padded[2:] = rows
        assert got.shape == (4, 3)
        assert np.array_equal(got, padded)

    def test_full_window_is_last_rows(self):
        arena = SessionWindowArena(dim=2, window=3)
        rows = np.random.default_rng(0).random((9, 2)).astype(np.float32)
        for row in rows:
            arena.append(1, row)
        assert np.array_equal(arena.window_rows(1), rows[-3:])
        assert np.array_equal(arena.session_rows(1), rows)
        assert arena.session_length(1) == 9

    def test_growth_keeps_old_views_valid(self):
        arena = SessionWindowArena(dim=2, window=3, initial_rows=3)
        rows = np.random.default_rng(1).random((20, 2)).astype(np.float32)
        arena.append(5, rows[0])
        early = arena.window_rows(5).copy()
        early_view = arena.window_rows(5)
        for row in rows[1:]:
            arena.append(5, row)  # forces at least one reallocation
        # The retired buffer backing the old view was never mutated.
        assert np.array_equal(early_view, early)
        assert np.array_equal(arena.window_rows(5), rows[-3:])

    def test_append_never_mutates_prior_window_views(self):
        arena = SessionWindowArena(dim=2, window=3, initial_rows=16)
        rows = np.random.default_rng(2).random((8, 2)).astype(np.float32)
        views = []
        snapshots = []
        for row in rows:
            arena.append(9, row)
            views.append(arena.window_rows(9))
            snapshots.append(arena.window_rows(9).copy())
        for view, snapshot in zip(views, snapshots):
            assert np.array_equal(view, snapshot)

    def test_sessions_independent(self):
        arena = SessionWindowArena(dim=2, window=2)
        arena.append(1, np.ones(2, dtype=np.float32))
        arena.append(2, np.full(2, 3.0, dtype=np.float32))
        assert 1 in arena and 2 in arena and 3 not in arena
        assert sorted(arena.session_ids()) == [1, 2]
        sessions, allocated = arena.stats()
        assert sessions == 2 and allocated > 0

    def test_unknown_session_raises(self):
        arena = SessionWindowArena(dim=2, window=2)
        with pytest.raises(KeyError):
            arena.window_rows(42)
        with pytest.raises(KeyError):
            arena.session_rows(42)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SessionWindowArena(dim=0, window=2)
        with pytest.raises(ValueError):
            SessionWindowArena(dim=2, window=0)


# ---------------------------------------------------------------------------
# compiled kernels


def _windows(n, window, dim, seed=0, dtype=np.float64):
    return np.random.default_rng(seed).random((n, window * dim)).astype(dtype)


class TestCompiledKernels:
    @pytest.mark.parametrize("aggregate", ["max", "mean"])
    def test_autoencoder_float64_bit_identical(self, aggregate):
        detector = AutoencoderDetector(
            window=4, feature_dim=9, hidden_dim=12, latent_dim=5, seed=3, aggregate=aggregate
        )
        windows = _windows(17, 4, 9, seed=11)
        reference = detector.scores(windows)
        detector.compile("float64")
        assert detector.compiled is not None
        fast = detector.scores(windows)
        assert fast.dtype == np.float64
        assert np.array_equal(reference, fast)

    def test_lstm_float64_bit_identical(self):
        detector = LstmDetector(window=5, feature_dim=7, hidden_dim=10, seed=4)
        windows = _windows(13, 5, 7, seed=12)
        reference = detector.scores(windows)
        detector.compile("float64")
        fast = detector.scores(windows)
        assert np.array_equal(reference, fast)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: AutoencoderDetector(window=4, feature_dim=9, hidden_dim=12, latent_dim=5, seed=3),
            lambda: LstmDetector(window=5, feature_dim=7, hidden_dim=10, seed=4),
        ],
        ids=["autoencoder", "lstm"],
    )
    def test_float32_within_documented_tolerance(self, make):
        detector = make()
        windows = _windows(16, detector.window, detector.feature_dim, seed=13)
        reference = detector.scores(windows)
        detector.compile("float32")
        fast = detector.scores(windows)
        assert fast.dtype == np.float64  # scores stay float64 outward
        settings = HotpathSettings()
        assert np.allclose(reference, fast, rtol=settings.float32_rtol, atol=1e-6)

    def test_float32_accepts_float32_input_without_copy_semantics_change(self):
        detector = AutoencoderDetector(window=3, feature_dim=5, hidden_dim=8, latent_dim=4, seed=5)
        windows64 = _windows(9, 3, 5, seed=14)
        detector.compile("float32")
        from_f64 = detector.scores(windows64)
        from_f32 = detector.scores(windows64.astype(np.float32))
        assert np.array_equal(from_f64, from_f32)

    def test_fit_invalidates_snapshot(self):
        detector = AutoencoderDetector(window=2, feature_dim=3, hidden_dim=4, latent_dim=2, seed=6)
        detector.compile("float64")
        assert detector.compiled is not None
        detector.fit(_windows(24, 2, 3, seed=15), epochs=1)
        assert detector.compiled is None

    def test_compiled_path_still_validates_shape(self):
        detector = LstmDetector(window=3, feature_dim=4, hidden_dim=6, seed=7)
        detector.compile("float64")
        with pytest.raises(ValueError):
            detector.scores(np.zeros((2, 5)))


# ---------------------------------------------------------------------------
# incremental scorer


def _lstm_detector(seed=8):
    return LstmDetector(window=4, feature_dim=5, hidden_dim=6, seed=seed)


def _session_rows(n=12, dim=5, seed=21):
    return np.random.default_rng(seed).random((n, dim)).astype(np.float32)


class TestIncrementalLstmScorer:
    def test_requires_lstm_detector(self):
        ae = AutoencoderDetector(window=3, feature_dim=5, hidden_dim=6, latent_dim=3)
        with pytest.raises(TypeError):
            IncrementalLstmScorer(ae)

    def test_cached_errors_bitwise_equal_replay(self):
        scorer = IncrementalLstmScorer(_lstm_detector())
        rows = _session_rows()
        pushed = [scorer.push(1, row) for row in rows]
        replayed = scorer.replay_errors(rows)
        assert np.array_equal(np.asarray(pushed), replayed)
        assert np.array_equal(scorer.record_errors(1), replayed)

    def test_window_scores_bitwise_equal_replay_at_every_length(self):
        scorer = IncrementalLstmScorer(_lstm_detector())
        rows = _session_rows(n=10)
        for k, row in enumerate(rows, start=1):
            scorer.push(3, row)
            assert scorer.window_score(3) == scorer.replay_window_score(rows[:k])

    def test_first_record_error_is_zero(self):
        scorer = IncrementalLstmScorer(_lstm_detector())
        assert scorer.push(1, _session_rows(n=1)[0]) == 0.0
        assert scorer.window_score(1) == 0.0

    def test_warm_up_equals_record_by_record_ingest(self):
        rows = _session_rows(n=9, seed=22)
        one = IncrementalLstmScorer(_lstm_detector())
        for row in rows:
            one.push(1, row)
        two = IncrementalLstmScorer(_lstm_detector())
        two.warm_up(1, rows)
        assert np.array_equal(one.record_errors(1), two.record_errors(1))
        assert one.window_score(1) == two.window_score(1)

    def test_sessions_do_not_share_state(self):
        scorer = IncrementalLstmScorer(_lstm_detector())
        rows_a = _session_rows(n=8, seed=23)
        rows_b = _session_rows(n=8, seed=24)
        for ra, rb in zip(rows_a, rows_b):
            scorer.push(1, ra)
            scorer.push(2, rb)
        assert np.array_equal(scorer.record_errors(1), scorer.replay_errors(rows_a))
        assert np.array_equal(scorer.record_errors(2), scorer.replay_errors(rows_b))

    def test_replay_mode_is_reference(self):
        settings = HotpathSettings(incremental=True, incremental_mode="replay")
        scorer = IncrementalLstmScorer(_lstm_detector(), settings)
        rows = _session_rows()
        assert scorer.push(1, rows[0]) == 0.0  # no-op in replay mode
        with pytest.raises(ValueError):
            scorer.window_score(1)  # replay needs the rows
        cached = IncrementalLstmScorer(_lstm_detector())
        cached.warm_up(1, rows)
        assert scorer.window_score(1, rows=rows) == cached.window_score(1)

    def test_self_check_passes_and_counts(self):
        settings = HotpathSettings(incremental=True, self_check=True)
        scorer = IncrementalLstmScorer(_lstm_detector(), settings)
        rows = _session_rows(n=7, seed=25)
        scorer.warm_up(1, rows)
        score = scorer.window_score(1, rows=rows)
        assert score == scorer.replay_window_score(rows)
        assert scorer.self_checks_passed == 1

    def test_self_check_detects_corrupt_state(self):
        settings = HotpathSettings(incremental=True, self_check=True)
        scorer = IncrementalLstmScorer(_lstm_detector(), settings)
        rows = _session_rows(n=7, seed=26)
        scorer.warm_up(1, rows)
        state = scorer._sessions[1]
        state.errors[-1] = max(state.errors) * 2.0 + 1.0
        with pytest.raises(ScoreMismatch):
            scorer.window_score(1, rows=rows)

    def test_float32_mode_within_documented_tolerance(self):
        settings = HotpathSettings(incremental=True, compiled=True, dtype="float32")
        assert settings.incremental_dtype == "float32"
        scorer = IncrementalLstmScorer(_lstm_detector(), settings)
        reference = IncrementalLstmScorer(_lstm_detector())
        rows = _session_rows(n=14, seed=27)
        scorer.warm_up(1, rows)
        reference.warm_up(1, rows)
        assert np.allclose(
            scorer.record_errors(1),
            reference.record_errors(1),
            rtol=settings.float32_rtol,
            atol=1e-6,
        )

    def test_empty_session_rejected(self):
        scorer = IncrementalLstmScorer(_lstm_detector())
        with pytest.raises(KeyError):
            scorer.window_score(99)


# ---------------------------------------------------------------------------
# wire codec fast path


_TRICKY_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    1024,
    1025,
    -(2**40),
    2**63,
    0.0,
    -0.0,
    1.5,
    float("inf"),
    float("-inf"),
    "",
    "short",
    "x" * 63,
    "y" * 64,
    "z" * 65,  # past the intern-cache length cutoff
    "ünïcode-κλειδί",
    [],
    {},
    [1, "two", 3.0, None, True],
    {"a": 1, "b": [2, {"c": "d"}], "e": {"f": None}},
    [{"msg": "RRCSetupRequest"} for _ in range(5)],
    ("tu", "ple"),
]


class TestWireFastPath:
    @pytest.mark.parametrize("value", _TRICKY_VALUES, ids=range(len(_TRICKY_VALUES)))
    def test_byte_identical_to_reference(self, value):
        assert wire.encode_fast(value) == wire.encode(value)

    def test_roundtrip(self):
        value = {"batch": list(_TRICKY_VALUES[:-1])}  # tuples decode as lists
        decoded = wire.decode(wire.encode_fast(value))
        assert decoded == {"batch": list(_TRICKY_VALUES[:-1])}

    def test_nan_encodes_identically(self):
        fast = wire.encode_fast(float("nan"))
        assert fast == wire.encode(float("nan"))
        assert np.isnan(wire.decode(fast))

    def test_subclasses_fall_back_to_reference(self):
        class MyInt(int):
            pass

        class MyList(list):
            pass

        for value in (MyInt(7), MyList([1, 2]), {"k": MyInt(3)}):
            assert wire.encode_fast(value) == wire.encode(value)

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_fast({1: "a"})
        with pytest.raises(wire.WireError):
            wire.encode({1: "a"})

    def test_decoded_dict_keys_are_interned(self):
        payload = wire.encode_fast([{"session_id": i, "msg": "RRCSetup"} for i in range(4)])
        decoded = wire.decode(payload)
        first_keys = list(decoded[0])
        for entry in decoded[1:]:
            for a, b in zip(first_keys, list(entry)):
                assert a is b

    def test_interning_survives_repeated_use(self):
        # Same structure encoded twice: identical bytes both times (the
        # caches must never change the output).
        value = {"msg": "NASSecurityModeCommand", "ids": list(range(40))}
        assert wire.encode_fast(value) == wire.encode_fast(value) == wire.encode(value)


class TestTelemetryEncoderFastPath:
    def _records(self):
        return [
            MobiFlowRecord(
                timestamp=1.25 * i,
                msg="RRCSetupRequest" if i % 2 else "RegistrationRequest",
                protocol="RRC" if i % 2 else "NAS",
                direction="UL",
                session_id=100 + i,
                rnti=17000 + i,
                s_tmsi=None if i % 3 else 0xABCD00 + i,
                suci=None if i % 2 else f"suci-0-001-01-{i:04d}",
                cipher_alg=None,
                integrity_alg=None,
            )
            for i in range(6)
        ]

    def test_record_bytes_match_reference_encoder(self):
        for record in self._records():
            reference = wire.encode(
                {k: v for k, v in record.to_dict().items() if v is not None}
            )
            assert encoder.encode_record(record) == reference
            assert encoder.decode_record(encoder.encode_record(record)) == record

    def test_batch_bytes_match_reference_encoder(self):
        records = self._records()
        reference = wire.encode(
            [{k: v for k, v in r.to_dict().items() if v is not None} for r in records]
        )
        payload = encoder.encode_batch(records)
        assert payload == reference
        assert encoder.decode_batch(payload) == records


# ---------------------------------------------------------------------------
# bench gate logic


def _passing_result():
    return HotpathBenchResult(
        per_record={"speedup": 6.0},
        kernels={"lstm": {"speedup": 2.6}, "autoencoder": {"speedup": 2.4}},
        codec={"speedup": 3.0},
        equality={"incremental_f64_exact": True},
        meta={},
    )


class TestBenchGates:
    def test_passing_result_has_no_violations(self):
        assert violations(_passing_result()) == []

    def test_equality_breach_flagged(self):
        result = _passing_result()
        result.equality["incremental_f64_exact"] = False
        assert any("equality" in v for v in violations(result))

    def test_floor_breaches_flagged(self):
        result = _passing_result()
        result.per_record["speedup"] = 4.9
        result.kernels["lstm"]["speedup"] = 1.9
        result.codec["speedup"] = 0.9
        found = violations(result)
        assert len(found) == 3

    def test_baseline_regression_flagged(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        baseline["per_record"]["speedup"] = 20.0  # committed run was much faster
        found = violations(result, baseline)
        assert any("regressed" in v for v in found)

    def test_baseline_within_slack_passes(self):
        result = _passing_result()
        baseline = _passing_result().to_dict()
        assert violations(result, baseline) == []


# ---------------------------------------------------------------------------
# live pipeline wiring


@pytest.fixture(scope="module")
def benign_windows():
    config = XsecConfig()
    capture = generate_benign_dataset(
        BenignDatasetConfig(duration_s=90.0, ue_mix=(("pixel5", 1), ("oai_ue", 1)))
    )
    return capture.labeled(config.spec, config.window, "benign").windowed.windows


def _train(detector_name, benign_windows):
    config = XsecConfig(detector=detector_name, train_epochs=6)
    detector = build_detector(config)
    detector.fit(np.asarray(benign_windows), epochs=6, lr=config.train_lr)
    return detector


@pytest.fixture(scope="module")
def trained_lstm(benign_windows):
    return _train("lstm", benign_windows)


@pytest.fixture(scope="module")
def trained_autoencoder(benign_windows):
    return _train("autoencoder", benign_windows)


def _uplink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return UplinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


def _downlink_extraction(net):
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    return DownlinkIdExtractionAttack(net, victim=victim, start_time=2.0, duration_s=10.0)


# name -> (attack factory taking the live network, extra NetworkConfig kwargs)
ATTACK_SCENARIOS = {
    "bts_dos": (
        lambda net: BtsDosAttack(net, start_time=3.0, connections=8, interval_s=0.08),
        {},
    ),
    "blind_dos": (
        lambda net: BlindDosAttack(net, victim=net.ues[0], start_time=3.0, replays=5),
        {},
    ),
    "uplink_id_extraction": (_uplink_extraction, {}),
    "downlink_id_extraction": (_downlink_extraction, {}),
    "null_cipher": (
        lambda net: NullCipherAttack(net, start_time=3.0),
        {"amf": AmfConfig(allow_null_algorithms=True)},
    ),
}


def run_live(detector, hotpath, attack=None, seed=77, until=20.0, net_kwargs=None):
    """One live pipeline run with a pre-trained detector copy deployed."""
    config = XsecConfig(detector=detector.name, train_epochs=6, hotpath=hotpath)
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=seed, **(net_kwargs or {})))
    xsec.deploy_detector(copy.deepcopy(detector))
    for profile in ("pixel5", "oai_ue"):
        ue = xsec.net.add_ue(profile)
        xsec.net.sim.schedule(0.5, ue.start_session)
    if attack is not None:
        attack(xsec.net).arm()
    xsec.run(until=until)
    return xsec


def event_tuples(xsec):
    return [
        (
            e.detected_at,
            e.session_id,
            e.rnti,
            e.s_tmsi,
            e.score,
            e.threshold,
            e.record_indices,
            e.newest_record_ts,
        )
        for e in xsec.mobiwatch.anomalies
    ]


class TestDefaultsAreSeedPath:
    def test_default_config_keeps_seed_components(self, trained_autoencoder):
        xsec = SixGXSec(XsecConfig())
        assert xsec.mobiwatch._arena is None
        assert xsec.mobiwatch._incremental is None
        xsec.deploy_detector(copy.deepcopy(trained_autoencoder))
        assert xsec.mobiwatch.detector.compiled is None
        assert xsec.mobiwatch._incremental is None

    def test_incremental_needs_lstm(self, trained_autoencoder):
        xsec = SixGXSec(XsecConfig(hotpath=HotpathSettings(incremental=True)))
        assert xsec.mobiwatch._arena is not None
        xsec.deploy_detector(copy.deepcopy(trained_autoencoder))
        # Flag ignored (with a log line), never a crash.
        assert xsec.mobiwatch._incremental is None


class TestLiveSeedEquivalence:
    """Flags whose contract is bit-identity to the seed live path."""

    @pytest.fixture(scope="class")
    def seed_run(self, trained_autoencoder):
        return run_live(trained_autoencoder, HotpathSettings())

    def test_arena_and_compiled_f64_bit_identical(self, trained_autoencoder, seed_run):
        fast = run_live(
            trained_autoencoder,
            HotpathSettings(arena=True, compiled=True, dtype="float64"),
        )
        assert fast.mobiwatch._arena is not None
        assert fast.mobiwatch.detector.compiled is not None
        assert fast.mobiwatch.records_seen == seed_run.mobiwatch.records_seen
        assert fast.mobiwatch.windows_scored == seed_run.mobiwatch.windows_scored
        assert event_tuples(fast) == event_tuples(seed_run)

    def test_compiled_f32_no_threshold_flips(self, trained_autoencoder, seed_run):
        fast = run_live(trained_autoencoder, HotpathSettings(compiled=True, dtype="float32"))
        ref_events = event_tuples(seed_run)
        f32_events = event_tuples(fast)
        # Same flagged windows in the same order (no threshold decision
        # flipped), scores within the documented float32 tolerance.
        assert [e[:4] + (e[6], e[7]) for e in f32_events] == [
            e[:4] + (e[6], e[7]) for e in ref_events
        ]
        settings = HotpathSettings()
        for ref, fast_ev in zip(ref_events, f32_events):
            assert np.isclose(ref[4], fast_ev[4], rtol=settings.float32_rtol, atol=1e-6)


class TestAttackScenarioEquality:
    """Satellite: identical events across all five attacks, cached vs replay.

    The cached incremental scorer runs with ``self_check`` on, so every
    single window score is additionally re-verified against the batch
    replay at runtime — the float64 contract is exact equality.
    """

    @pytest.mark.parametrize("scenario", sorted(ATTACK_SCENARIOS), ids=sorted(ATTACK_SCENARIOS))
    def test_cached_equals_replay(self, trained_lstm, scenario):
        factory, net_kwargs = ATTACK_SCENARIOS[scenario]
        cached = run_live(
            trained_lstm,
            HotpathSettings(incremental=True, incremental_mode="cached", self_check=True),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        replay = run_live(
            trained_lstm,
            HotpathSettings(incremental=True, incremental_mode="replay"),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        assert cached.mobiwatch.records_seen == replay.mobiwatch.records_seen
        assert cached.mobiwatch.windows_scored == replay.mobiwatch.windows_scored
        assert cached.mobiwatch.windows_scored > 0
        assert event_tuples(cached) == event_tuples(replay)
        scorer = cached.mobiwatch._incremental
        assert scorer is not None
        assert scorer.self_checks_passed == cached.mobiwatch.windows_scored

    def test_float32_cached_no_threshold_flips(self, trained_lstm):
        """Float32 incremental mode: tolerance only, no decision changes."""
        factory, net_kwargs = ATTACK_SCENARIOS["bts_dos"]
        f32 = run_live(
            trained_lstm,
            HotpathSettings(incremental=True, compiled=True, dtype="float32"),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        replay = run_live(
            trained_lstm,
            HotpathSettings(incremental=True, incremental_mode="replay"),
            attack=factory,
            net_kwargs=net_kwargs,
        )
        f32_events = event_tuples(f32)
        ref_events = event_tuples(replay)
        assert [e[:4] + (e[6], e[7]) for e in f32_events] == [
            e[:4] + (e[6], e[7]) for e in ref_events
        ]
        settings = HotpathSettings()
        for ref, fast in zip(ref_events, f32_events):
            assert np.isclose(ref[4], fast[4], rtol=settings.float32_rtol, atol=1e-6)
