"""Tests reproducing the paper's §5 Limitations — the documented blind spots.

These tests assert the *absence* of detection capability, so the
limitation stays documented and any future change that closes it shows up
as a test to update deliberately.
"""

import pytest

from repro.attacks.limitations import (
    DownlinkMessageDropAttack,
    RogueBaseStationAttack,
)
from repro.llm import AnalysisEngine
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector


def run_with(attack_cls, seed=41, until=40.0):
    net = FiveGNetwork(NetworkConfig(seed=seed))
    background = net.add_ue("pixel5")
    net.sim.schedule(0.3, background.start_session)
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.0, victim.start_session)
    attack = attack_cls(net, victim=victim, start_time=1.5, duration_s=15.0)
    attack.arm()
    net.run(until=until)
    series = MobiFlowCollector().parse_stream(net.pcap)
    return net, victim, attack, series


class TestDownlinkMessageDrop:
    def test_attack_disrupts_the_victim(self):
        net, victim, attack, series = run_with(DownlinkMessageDropAttack)
        assert attack.messages_dropped > 0
        # The victim did not complete registration during the attack window.
        reg_times = [
            r.timestamp
            for r in series
            if r.msg == "RegistrationAccept" and attack.in_window(r.timestamp)
        ]
        assert victim.guti is None or not reg_times

    def test_no_ground_truth_records_exist(self):
        net, victim, attack, series = run_with(DownlinkMessageDropAttack)
        assert not any(attack.is_malicious(r) for r in series)

    def test_knowledge_engine_cannot_name_the_attack(self):
        net, victim, attack, series = run_with(DownlinkMessageDropAttack)
        window = [r for r in series if attack.in_window(r.timestamp)]
        matches = AnalysisEngine().analyze(window)
        named = {m.signature for m in matches}
        # No identity/cipher/replay signature applies; at most the generic
        # storm heuristic could fire on the victim's stalled retries.
        assert named <= {"signaling_storm"}


class TestRogueBaseStation:
    def test_victim_never_reaches_the_network(self):
        net, victim, attack, series = run_with(RogueBaseStationAttack)
        assert attack.captured_messages > 0
        victim_sessions = {
            r.session_id
            for r in series
            if r.timestamp >= 2.0 and r.msg == "RegistrationRequest"
            and r.suci and victim.supi.msin in (r.suci or "")
        }
        assert not victim_sessions

    def test_telemetry_contains_no_trace_of_the_attack(self):
        net, victim, attack, series = run_with(RogueBaseStationAttack)
        assert not any(attack.is_malicious(r) for r in series)
        # Background traffic is untouched.
        assert net.amf.registrations_accepted >= 1

    def test_engine_sees_benign_traffic_only(self):
        net, victim, attack, series = run_with(RogueBaseStationAttack)
        matches = AnalysisEngine().analyze(series.records)
        assert matches == []
