"""Tests for the numpy NN stack: layers, optimizers, gradient checks."""

import numpy as np
import pytest

from repro.ml.layers import Dense, Parameter, ReLU, Sequential, Sigmoid, Tanh
from repro.ml.losses import mse_loss, per_sample_mse
from repro.ml.optim import Adam, Sgd


def numeric_gradient(f, x, eps=1e-6):
    """Central finite differences of scalar f w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss_fn():
            return mse_loss(layer.forward(x), target)[0]

        loss, grad = mse_loss(layer.forward(x), target)
        layer.W.zero_grad()
        layer.b.zero_grad()
        layer.backward(grad)
        numeric_w = numeric_gradient(loss_fn, layer.W.value)
        numeric_b = numeric_gradient(loss_fn, layer.b.value)
        assert np.allclose(layer.W.grad, numeric_w, atol=1e-5)
        assert np.allclose(layer.b.grad, numeric_b, atol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


@pytest.mark.parametrize("activation_cls", [ReLU, Sigmoid, Tanh])
class TestActivations:
    def test_gradient_check(self, activation_cls):
        rng = np.random.default_rng(2)
        layer = activation_cls()
        x = rng.normal(size=(4, 5)) + 0.1  # avoid ReLU kink at exactly 0
        target = rng.normal(size=(4, 5))

        def loss_fn():
            return mse_loss(layer.forward(x), target)[0]

        loss, grad = mse_loss(layer.forward(x), target)
        grad_in = layer.backward(grad)
        numeric = numeric_gradient(loss_fn, x)
        assert np.allclose(grad_in, numeric, atol=1e-5)


class TestSequential:
    def test_end_to_end_gradient_check(self):
        rng = np.random.default_rng(3)
        model = Sequential(Dense(5, 8, rng), Tanh(), Dense(8, 5, rng))
        x = rng.normal(size=(7, 5))
        target = rng.normal(size=(7, 5))

        def loss_fn():
            return mse_loss(model.forward(x), target)[0]

        for param in model.params():
            param.zero_grad()
        loss, grad = mse_loss(model.forward(x), target)
        model.backward(grad)
        for param in model.params():
            numeric = numeric_gradient(loss_fn, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-5)

    def test_params_collects_all(self):
        rng = np.random.default_rng(0)
        model = Sequential(Dense(2, 3, rng), ReLU(), Dense(3, 2, rng))
        assert len(model.params()) == 4


class TestLosses:
    def test_mse_zero_for_equal(self):
        x = np.ones((3, 4))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.ones((2, 2)), np.ones((2, 3)))

    def test_per_sample_mse(self):
        pred = np.array([[1.0, 1.0], [0.0, 0.0]])
        target = np.zeros((2, 2))
        assert list(per_sample_mse(pred, target)) == [1.0, 0.0]

    def test_per_sample_mse_3d(self):
        pred = np.ones((2, 3, 4))
        out = per_sample_mse(pred, np.zeros((2, 3, 4)))
        assert out.shape == (2,)
        assert np.allclose(out, 1.0)


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        param = self._quadratic_param()
        optimizer = Sgd([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            param.grad += 2 * param.value  # d/dx of x^2
            optimizer.step()
        assert np.allclose(param.value, 0.0, atol=1e-6)

    def test_sgd_momentum_converges(self):
        param = self._quadratic_param()
        optimizer = Sgd([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.allclose(param.value, 0.0, atol=1e-4)

    def test_adam_converges_on_quadratic(self):
        param = self._quadratic_param()
        optimizer = Adam([param], lr=0.1)
        for _ in range(500):
            optimizer.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.allclose(param.value, 0.0, atol=1e-4)

    def test_zero_grad(self):
        param = Parameter(np.ones(3))
        param.grad += 5.0
        Adam([param]).zero_grad()
        assert np.all(param.grad == 0.0)
