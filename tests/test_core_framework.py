"""End-to-end tests for the assembled 6G-XSec framework (Figure 3)."""

import pytest

from repro.attacks import BtsDosAttack, NullCipherAttack
from repro.core import SixGXSec, XsecConfig
from repro.core.framework import build_detector
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.oran.a1 import DETECTION_POLICY_TYPE
from repro.oran.smo import JobState
from repro.ran.network import NetworkConfig


def small_config(**overrides):
    defaults = dict(train_epochs=8, auto_release=True, auto_blocklist=True)
    defaults.update(overrides)
    return XsecConfig(**defaults)


@pytest.fixture(scope="module")
def benign_windows():
    config = XsecConfig()
    capture = generate_benign_dataset(
        BenignDatasetConfig(
            duration_s=120.0,
            ue_mix=(("pixel5", 1), ("galaxy_a53", 1), ("oai_ue", 2)),
        )
    )
    labeled = capture.labeled(config.spec, config.window, "benign")
    return labeled.windowed.windows


@pytest.fixture(scope="module")
def trained_xsec(benign_windows):
    xsec = SixGXSec(small_config(), network_config=NetworkConfig(seed=42))
    xsec.train_from_benign(benign_windows)
    # Live benign UE + two attacks.
    ue = xsec.net.add_ue("pixel5")
    xsec.net.sim.schedule(0.5, ue.start_session)
    BtsDosAttack(xsec.net, start_time=3.0, connections=8, interval_s=0.08).arm()
    NullCipherAttack(xsec.net, start_time=10.0).arm()
    xsec.run(until=45.0)
    return xsec


class TestTraining:
    def test_smo_job_deploys_model(self, benign_windows):
        xsec = SixGXSec(small_config(), network_config=NetworkConfig(seed=1))
        xsec.train_from_benign(benign_windows)
        job = xsec.smo.jobs["mobiwatch-autoencoder"]
        assert job.state is JobState.DEPLOYED
        assert xsec.mobiwatch.detector is not None
        assert xsec.mobiwatch.detector.threshold.threshold is not None

    def test_undeployed_detector_rejected(self):
        xsec = SixGXSec(small_config())
        from repro.ml import AutoencoderDetector

        untrained = AutoencoderDetector(window=6, feature_dim=xsec.config.spec.dim)
        with pytest.raises(ValueError):
            xsec.deploy_detector(untrained)

    def test_build_detector_unknown_kind(self):
        with pytest.raises(ValueError):
            build_detector(XsecConfig(detector="transformer"))


class TestLivePipeline:
    def test_telemetry_flows_to_mobiwatch(self, trained_xsec):
        assert trained_xsec.mobiwatch.records_seen > 30
        assert trained_xsec.mobiwatch.windows_scored > 0

    def test_attacks_raise_anomalies(self, trained_xsec):
        assert len(trained_xsec.mobiwatch.anomalies) > 0

    def test_llm_verdicts_produced(self, trained_xsec):
        assert len(trained_xsec.analyzer.verdicts) > 0
        confirmed = [v for v in trained_xsec.analyzer.verdicts if v.confirmed]
        assert confirmed, "at least one anomaly should be confirmed by the LLM"

    def test_llm_cooldown_suppresses_queries(self, trained_xsec):
        # The flood raises many anomalies per session window; the cooldown
        # must prevent one LLM query per anomaly.
        assert trained_xsec.analyzer.queries_suppressed > 0

    def test_detection_latency_within_nrt_budget(self, trained_xsec):
        report = trained_xsec.pipeline.latency_report()
        assert report["detection_s"]["n"] > 0
        # Near-RT RIC control loop: 10ms..1s (paper §2.1).
        assert report["detection_s"]["max"] < 1.0

    def test_automated_response_issued(self, trained_xsec):
        assert trained_xsec.pipeline.actions_taken
        assert trained_xsec.agent.controls_executed > 0

    def test_sdl_holds_telemetry_and_verdicts(self, trained_xsec):
        sdl = trained_xsec.ric.sdl
        assert len(sdl.keys("xsec.mobiflow")) == trained_xsec.mobiwatch.records_seen
        assert len(sdl.keys("xsec.anomalies")) == len(trained_xsec.mobiwatch.anomalies)
        assert len(sdl.keys("xsec.verdicts")) == len(trained_xsec.analyzer.verdicts)

    def test_summary_consistent(self, trained_xsec):
        summary = trained_xsec.pipeline.summary()
        assert summary["anomalies"] == len(trained_xsec.mobiwatch.anomalies)
        assert summary["verdicts"] == len(trained_xsec.analyzer.verdicts)
        assert summary["confirmed"] <= summary["verdicts"]


class TestA1Policies:
    def test_detection_policy_refits_threshold(self, benign_windows):
        xsec = SixGXSec(small_config(), network_config=NetworkConfig(seed=2))
        xsec.train_from_benign(benign_windows)
        before = xsec.mobiwatch.detector.threshold.threshold
        xsec.smo.a1.put_policy(
            DETECTION_POLICY_TYPE.policy_type_id,
            "tighter",
            {"threshold_percentile": 90.0, "window_size": 6},
            target_xapp="mobiwatch",
        )
        after = xsec.mobiwatch.detector.threshold.threshold
        assert after < before


class TestBenignOnlyRun:
    def test_quiet_network_produces_few_or_no_incidents(self, benign_windows):
        xsec = SixGXSec(small_config(), network_config=NetworkConfig(seed=77))
        xsec.train_from_benign(benign_windows)
        for i, profile in enumerate(("pixel5", "galaxy_a53")):
            ue = xsec.net.add_ue(profile)
            xsec.net.sim.schedule(0.5 + i, ue.start_session)
        xsec.run(until=30.0)
        # Benign traffic can raise occasional false alarms (<10% of scored
        # windows, per the paper), but must not flood the pipeline.
        assert len(xsec.mobiwatch.anomalies) <= max(
            2, int(0.1 * xsec.mobiwatch.windows_scored)
        )
