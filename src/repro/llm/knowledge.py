"""Cellular-security knowledge base and rule-based analysis engine.

This is the domain expertise the paper's LLMs bring to bear — attack
signatures, 3GPP procedure knowledge, attribution and remediation guidance
— implemented as an explicit knowledge base. The simulated model backends
share this single engine; per-model capability profiles then decide which
matched signatures each model actually *perceives* (Table 3 calibration).

The same knowledge base powers the retrieval augmentation (§5, Specialized
LLM for 6G): :meth:`CellularKnowledgeBase.retrieve` returns the procedure
snippets most relevant to a trace, which the prompt template can append.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.telemetry.mobiflow import MobiFlowRecord

# Signature identifiers (stable keys used by the model profiles).
SIG_SIGNALING_STORM = "signaling_storm"
SIG_TMSI_REPLAY = "tmsi_replay"
SIG_PLAINTEXT_SUCI = "plaintext_suci_uplink"
SIG_OUT_OF_ORDER_IDENTITY = "out_of_order_identity"
SIG_NULL_CIPHER = "null_cipher_downgrade"
SIG_AUTH_FORGERY = "auth_challenge_forgery"


@dataclass(frozen=True)
class SignatureMatch:
    """One attack signature detected in a trace."""

    signature: str
    attack_name: str
    confidence: float  # 0..1
    evidence: tuple  # human-readable evidence strings

    def __str__(self) -> str:
        return f"{self.attack_name} ({self.signature}, confidence {self.confidence:.2f})"


@dataclass(frozen=True)
class AttackArticle:
    """Knowledge-base entry describing one attack class."""

    signature: str
    attack_name: str
    aliases: tuple
    explanation: str
    attribution: str
    implications: str
    remediations: tuple
    procedure_snippet: str  # 3GPP background used for RAG


KNOWLEDGE_ARTICLES: dict[str, AttackArticle] = {
    SIG_SIGNALING_STORM: AttackArticle(
        signature=SIG_SIGNALING_STORM,
        attack_name="BTS resource depletion DoS (signaling storm)",
        aliases=("BTS DoS", "RRC flooding", "signaling storm"),
        explanation=(
            "The trace shows a rapid succession of RRC connection setups that "
            "progress to the authentication challenge and are then abandoned. "
            "Each uncompleted connection pins an RNTI, a CU context and an "
            "authentication vector, so a sustained stream exhausts gNodeB "
            "resources and blocks legitimate devices."
        ),
        attribution=(
            "A rogue UE (commodity SDR with a modified open-source stack) "
            "within radio range of the cell."
        ),
        implications=(
            "Denial of service at the base station: RNTI and context "
            "exhaustion, elevated signaling load toward the AMF, and service "
            "degradation for legitimate subscribers."
        ),
        remediations=(
            "Rate-limit RRC connection requests per radio context",
            "Shorten the contention-resolution/inactivity timers under load",
            "Blocklist the offending access patterns via RAN control actions",
        ),
        procedure_snippet=(
            "TS 38.331: RRCSetupRequest -> RRCSetup -> RRCSetupComplete must "
            "be followed by the NAS registration and authentication exchange; "
            "connections abandoned after AuthenticationRequest hold resources "
            "until the network's supervision timers expire."
        ),
    ),
    SIG_TMSI_REPLAY: AttackArticle(
        signature=SIG_TMSI_REPLAY,
        attack_name="Blind DoS via 5G-S-TMSI replay",
        aliases=("Blind DoS", "TMSI hijack", "detach attack"),
        explanation=(
            "The same 5G-S-TMSI is presented by several distinct RRC "
            "connections in a short span. A network receiving a connection "
            "claiming an attached UE's temporary identity releases the "
            "existing connection, so replaying a sniffed S-TMSI repeatedly "
            "keeps knocking the victim offline without touching its radio."
        ),
        attribution=(
            "An adversary that sniffed the victim's S-TMSI (e.g. from "
            "paging) and replays it from a rogue UE."
        ),
        implications=(
            "Targeted denial of service against one subscriber; the victim "
            "sees repeated unexplained connection releases."
        ),
        remediations=(
            "Require integrity verification before releasing the old context",
            "Refresh temporary identities aggressively after each use",
            "Bar access for identities exhibiting replay patterns",
        ),
        procedure_snippet=(
            "TS 23.502: a ServiceRequest or RRCSetupRequest carrying a "
            "5G-S-TMSI implies re-access by the identified UE; TS 33.501 "
            "recommends reallocating the 5G-GUTI after each use precisely "
            "because temporary identities are replayable pre-authentication."
        ),
    ),
    SIG_PLAINTEXT_SUCI: AttackArticle(
        signature=SIG_PLAINTEXT_SUCI,
        attack_name="Uplink identity extraction (SUCI concealment downgrade)",
        aliases=("AdaptOver", "uplink IMSI extraction", "null-scheme SUCI"),
        explanation=(
            "A registration carries a null-scheme SUCI: the subscriber's "
            "permanent identifier is transmitted in plaintext. The message "
            "sequence itself is standard compliant — the null concealment "
            "scheme is legal — which makes this easy to miss; but a UE that "
            "normally conceals its SUPI suddenly using the null scheme "
            "indicates an uplink overshadowing attack harvesting identities."
        ),
        attribution=(
            "A MITM/overshadowing transmitter rewriting the victim's uplink "
            "registration at the physical layer."
        ),
        implications=(
            "Permanent-identifier disclosure enabling long-term tracking and "
            "targeted attacks against the subscriber."
        ),
        remediations=(
            "Disallow the null concealment scheme in network policy",
            "Alert on concealment-scheme changes per subscriber",
            "Investigate the radio environment for overshadowing equipment",
        ),
        procedure_snippet=(
            "TS 33.501 Annex C: SUCI protection schemes include the null "
            "scheme (no concealment); operators may restrict acceptable "
            "schemes. A null-scheme SUCI exposes the MSIN in cleartext."
        ),
    ),
    SIG_OUT_OF_ORDER_IDENTITY: AttackArticle(
        signature=SIG_OUT_OF_ORDER_IDENTITY,
        attack_name="Downlink identity extraction (injected Identity Request)",
        aliases=("LTrack", "downlink IMSI extraction", "identity request injection"),
        explanation=(
            "The network issued an AuthenticationRequest but received an "
            "IdentityResponse exposing the permanent identifier instead of "
            "the expected AuthenticationResponse. The UE answered an "
            "IdentityRequest the network never sent — an over-the-air "
            "downlink overwrite asked the device for its identity in the "
            "pre-security window."
        ),
        attribution=(
            "A MITM relay/overshadowing transmitter that overwrote the "
            "downlink authentication message toward the victim."
        ),
        implications=(
            "Plaintext identity disclosure and location tracking of the "
            "victim subscriber."
        ),
        remediations=(
            "Flag identity responses that were never solicited by the core",
            "Deploy downlink integrity protection where supported",
            "Correlate RF anomalies near the reporting cell",
        ),
        procedure_snippet=(
            "TS 24.501 §5.4.1: after an AuthenticationRequest the UE answers "
            "with AuthenticationResponse (or AuthenticationFailure). An "
            "IdentityResponse at that point is out of procedure order, and "
            "pre-security identity procedures are unprotected."
        ),
    ),
    SIG_NULL_CIPHER: AttackArticle(
        signature=SIG_NULL_CIPHER,
        attack_name="Null cipher & integrity downgrade",
        aliases=("null security", "NEA0/NIA0 bidding down"),
        explanation=(
            "The security mode procedure selected NEA0/NIA0 — no ciphering "
            "and no integrity protection. All subsequent NAS/AS traffic for "
            "this connection is readable and forgeable over the air. A UE "
            "advertising only null algorithms is bidding the network down."
        ),
        attribution=(
            "A modified UE stack advertising null-only security capabilities "
            "(or a MITM rewriting the capability exchange)."
        ),
        implications=(
            "Complete loss of confidentiality and integrity for the session; "
            "message injection and eavesdropping become trivial."
        ),
        remediations=(
            "Configure the network to reject null algorithms (TS 33.501)",
            "Alert on any security mode selecting NEA0/NIA0",
            "Quarantine subscribers that repeatedly bid down",
        ),
        procedure_snippet=(
            "TS 33.501 §5.11.1: NEA0/NIA0 are the null algorithms; their use "
            "is restricted to emergency services. Networks should order "
            "algorithm preference lists to exclude null where possible."
        ),
    ),
    SIG_AUTH_FORGERY: AttackArticle(
        signature=SIG_AUTH_FORGERY,
        attack_name="Rogue-network challenge forgery (impersonation probe)",
        aliases=("challenge forgery", "network impersonation", "fake AMF"),
        explanation=(
            "Devices answered authentication challenges with MAC failures: "
            "the challenges were not generated with the subscribers' keys. "
            "Someone without home-network credentials is injecting "
            "AuthenticationRequests over the air — the opening move of a "
            "network-impersonation (rogue base station / fake AMF) campaign."
        ),
        attribution=(
            "An over-the-air MiTM or rogue network element forging downlink "
            "NAS authentication messages without the subscriber keys."
        ),
        implications=(
            "Registration outages for affected subscribers and "
            "reconnaissance for a network-impersonation attack."
        ),
        remediations=(
            "Correlate MAC-failure bursts with cells/sectors and inspect RF",
            "Rate-limit re-challenges to contain signaling load",
            "Verify E2/backhaul integrity to rule out infrastructure compromise",
        ),
        procedure_snippet=(
            "TS 33.501 §6.1.3: in 5G-AKA the UE verifies AUTN (MAC and SQN "
            "freshness) before answering; a MAC failure means the challenge "
            "was not produced by the home network. Repeated MAC failures "
            "across devices indicate forged downlink authentication."
        ),
    ),
}


class CellularKnowledgeBase:
    """Article store with naive keyword retrieval (RAG support)."""

    def __init__(self, articles: Optional[dict[str, AttackArticle]] = None) -> None:
        self.articles = dict(articles or KNOWLEDGE_ARTICLES)

    def article(self, signature: str) -> AttackArticle:
        return self.articles[signature]

    def retrieve(self, records: list[MobiFlowRecord], top_k: int = 2) -> list[str]:
        """Return the 3GPP snippets most relevant to the trace.

        Relevance is keyword overlap between an article's vocabulary and
        the message names/attributes present in the trace.
        """
        trace_terms = set()
        for record in records:
            trace_terms.add(record.msg.lower())
            if record.cipher_alg == 0 or record.integrity_alg == 0:
                trace_terms.update(("nea0", "nia0", "null"))
            if record.exposes_permanent_identity():
                trace_terms.update(("suci", "supi", "plaintext"))
            if record.s_tmsi is not None:
                trace_terms.add("s-tmsi")
        scored = []
        for article in self.articles.values():
            text = (article.procedure_snippet + " " + article.explanation).lower()
            score = sum(1 for term in trace_terms if term in text)
            scored.append((score, article.signature, article.procedure_snippet))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [snippet for score, _, snippet in scored[:top_k] if score > 0]


class AnalysisEngine:
    """Evaluates every attack signature against a telemetry trace."""

    # Signaling-storm thresholds.
    STORM_MIN_SETUPS = 4
    STORM_MAX_MEDIAN_GAP_S = 1.5
    # TMSI replay threshold: distinct connections presenting one TMSI.
    REPLAY_MIN_SESSIONS = 3
    # Authentication MAC failures across this many entries indicate forgery.
    FORGERY_MIN_FAILURES = 2

    def __init__(self, knowledge: Optional[CellularKnowledgeBase] = None) -> None:
        self.knowledge = knowledge or CellularKnowledgeBase()

    def analyze(self, records: list[MobiFlowRecord]) -> list[SignatureMatch]:
        """Return all signature matches, strongest first."""
        matches = [
            match
            for check in (
                self._check_signaling_storm,
                self._check_tmsi_replay,
                self._check_plaintext_suci,
                self._check_out_of_order_identity,
                self._check_null_cipher,
                self._check_auth_forgery,
            )
            if (match := check(records)) is not None
        ]
        matches.sort(key=lambda m: -m.confidence)
        return matches

    # -- individual signatures -------------------------------------------------

    def _check_signaling_storm(self, records) -> Optional[SignatureMatch]:
        setups = [r for r in records if r.msg == "RRCSetupRequest"]
        if len(setups) < self.STORM_MIN_SETUPS:
            return None
        auth_responses = sum(1 for r in records if r.msg == "AuthenticationResponse")
        accepts = sum(1 for r in records if r.msg == "RegistrationAccept")
        if auth_responses > len(setups) / 2 or accepts > len(setups) / 2:
            return None  # most connections complete: busy but healthy
        gaps = [
            b.timestamp - a.timestamp for a, b in zip(setups, setups[1:])
        ]
        median_gap = statistics.median(gaps) if gaps else 0.0
        if median_gap > self.STORM_MAX_MEDIAN_GAP_S:
            return None
        rntis = {r.rnti for r in setups if r.rnti is not None}
        confidence = min(1.0, 0.5 + 0.1 * len(setups))
        return SignatureMatch(
            signature=SIG_SIGNALING_STORM,
            attack_name=self.knowledge.article(SIG_SIGNALING_STORM).attack_name,
            confidence=confidence,
            evidence=(
                f"{len(setups)} connection setups within "
                f"{records[-1].timestamp - records[0].timestamp:.1f}s "
                f"(median inter-arrival {median_gap:.2f}s)",
                f"{len(rntis)} distinct RNTIs consumed",
                f"only {auth_responses} authentication responses observed",
            ),
        )

    def _check_tmsi_replay(self, records) -> Optional[SignatureMatch]:
        presented: dict[int, set] = {}
        for record in records:
            if record.msg in ("RRCSetupRequest", "ServiceRequest") and record.s_tmsi is not None:
                presented.setdefault(record.s_tmsi, set()).add(record.session_id)
        replayed = {
            tmsi: sessions
            for tmsi, sessions in presented.items()
            if len(sessions) >= self.REPLAY_MIN_SESSIONS
        }
        if not replayed:
            return None
        tmsi, sessions = max(replayed.items(), key=lambda item: len(item[1]))
        return SignatureMatch(
            signature=SIG_TMSI_REPLAY,
            attack_name=self.knowledge.article(SIG_TMSI_REPLAY).attack_name,
            confidence=min(1.0, 0.4 + 0.15 * len(sessions)),
            evidence=(
                f"S-TMSI 0x{tmsi:08x} presented by {len(sessions)} distinct connections",
                "connections abandon at the authentication stage after the "
                "legitimate holder is released",
            ),
        )

    def _check_plaintext_suci(self, records) -> Optional[SignatureMatch]:
        exposing = [
            r
            for r in records
            if r.msg == "RegistrationRequest"
            and r.suci is not None
            and r.suci.startswith("suci-null-")
        ]
        if not exposing:
            return None
        return SignatureMatch(
            signature=SIG_PLAINTEXT_SUCI,
            attack_name=self.knowledge.article(SIG_PLAINTEXT_SUCI).attack_name,
            confidence=0.55,  # standard compliant: inherently low confidence
            evidence=(
                f"null-scheme SUCI {exposing[0].suci!r} exposes the permanent identifier",
                "message sequence is otherwise standard compliant",
            ),
        )

    def _check_out_of_order_identity(self, records) -> Optional[SignatureMatch]:
        by_session: dict[int, list[MobiFlowRecord]] = {}
        for record in records:
            by_session.setdefault(record.session_id, []).append(record)
        for session_records in by_session.values():
            for prev, current in zip(session_records, session_records[1:]):
                if (
                    prev.msg == "AuthenticationRequest"
                    and current.msg == "IdentityResponse"
                    and current.supi is not None
                ):
                    return SignatureMatch(
                        signature=SIG_OUT_OF_ORDER_IDENTITY,
                        attack_name=self.knowledge.article(
                            SIG_OUT_OF_ORDER_IDENTITY
                        ).attack_name,
                        confidence=0.9,
                        evidence=(
                            "IdentityResponse followed AuthenticationRequest "
                            "where an AuthenticationResponse was expected",
                            f"permanent identifier {current.supi!r} disclosed in plaintext",
                        ),
                    )
        return None

    def _check_auth_forgery(self, records) -> Optional[SignatureMatch]:
        failures = [r for r in records if r.msg == "AuthenticationFailure"]
        if len(failures) < self.FORGERY_MIN_FAILURES:
            return None
        sessions = {r.session_id for r in failures}
        return SignatureMatch(
            signature=SIG_AUTH_FORGERY,
            attack_name=self.knowledge.article(SIG_AUTH_FORGERY).attack_name,
            confidence=min(1.0, 0.5 + 0.15 * len(failures)),
            evidence=(
                f"{len(failures)} authentication MAC failures across "
                f"{len(sessions)} connection(s)",
                "challenges were not generated with the subscriber keys",
            ),
        )

    def _check_null_cipher(self, records) -> Optional[SignatureMatch]:
        null_smc = [
            r
            for r in records
            if r.msg in ("NASSecurityModeCommand", "RRCSecurityModeCommand")
            and (r.cipher_alg == 0 or r.integrity_alg == 0)
        ]
        if not null_smc:
            return None
        return SignatureMatch(
            signature=SIG_NULL_CIPHER,
            attack_name=self.knowledge.article(SIG_NULL_CIPHER).attack_name,
            confidence=0.95,
            evidence=(
                "security mode command selected null algorithms "
                f"(cipher NEA{null_smc[0].cipher_alg}, integrity NIA{null_smc[0].integrity_alg})",
                "all subsequent traffic on this connection is unprotected",
            ),
        )
