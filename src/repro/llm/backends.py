"""Simulated LLM backends.

Each backend is one "model behind the API": it receives the *prompt text*,
parses the telemetry data section out of it (as a real model reads the
prompt), runs the shared cellular-security analysis engine, filters the
matched signatures through its capability profile, and writes a sectioned
natural-language analysis in its own voice. Responses are deterministic
per (model, prompt) — matching the paper's observation that repeated
ChatGPT-4o runs gave consistent results (§4.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.llm.knowledge import AnalysisEngine, CellularKnowledgeBase, SignatureMatch
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.prompt import parse_data_section

_BENIGN_OPENERS = (
    "The message flow follows the expected 5G registration procedure",
    "This sequence is consistent with a normal attach and session lifecycle",
    "Nothing in the trace departs from standard protocol behaviour",
)

_HEDGES = ("It appears that ", "Based on the available attributes, ", "Likely, ")


@dataclass
class SimulatedLlmBackend:
    """One simulated model: profile + shared analysis engine."""

    profile: ModelProfile
    engine: AnalysisEngine

    @property
    def name(self) -> str:
        return self.profile.name

    def complete(self, prompt: str) -> str:
        """Answer the Figure 5 prompt with a sectioned text analysis."""
        records = parse_data_section(prompt)
        if not records:
            return (
                "Verdict: benign\n"
                "Explanation: No telemetry entries were found in the provided "
                "data, so there is nothing to flag."
            )
        matches = self.engine.analyze(records)
        effective = self.profile.perceives | self._rag_unlocked(prompt)
        perceived = [m for m in matches if m.signature in effective]
        if not perceived:
            return self._benign_text(prompt, records, missed=bool(matches))
        return self._anomalous_text(prompt, perceived)

    def _rag_unlocked(self, prompt: str) -> frozenset:
        """Signatures unlocked by retrieved knowledge present in the prompt.

        Retrieval augmentation closes *knowledge* gaps: when the prompt
        carries the 3GPP snippet describing a procedure, a model that knows
        how to reason but lacked that domain fact can now connect it
        (paper §5, Specialized LLM for 6G).
        """
        unlocked = set()
        for signature in self.profile.rag_boost:
            snippet = self.engine.knowledge.article(signature).procedure_snippet
            if snippet[:60] in prompt:
                unlocked.add(signature)
        return frozenset(unlocked)

    # -- text generation -------------------------------------------------------

    def _style_seed(self, prompt: str) -> int:
        digest = hashlib.sha256((self.name + prompt).encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    def _hedge(self, seed: int) -> str:
        if not self.profile.hedging:
            return ""
        return _HEDGES[seed % len(_HEDGES)]

    def _benign_text(self, prompt: str, records, missed: bool) -> str:
        seed = self._style_seed(prompt)
        opener = _BENIGN_OPENERS[seed % len(_BENIGN_OPENERS)]
        detail = ""
        if self.profile.verbosity >= 2:
            sessions = len({r.session_id for r in records})
            detail = (
                f" The trace spans {len(records)} control messages across "
                f"{sessions} connection(s); registrations progress through "
                "setup, authentication, and security mode activation in the "
                "expected order."
            )
        # A model that *missed* a real attack still writes a confident
        # benign analysis — this is the failure mode Table 3's ✗ records.
        return (
            "Verdict: benign\n"
            f"Explanation: {self._hedge(seed)}{opener}.{detail}"
        )

    def _anomalous_text(self, prompt: str, perceived: list[SignatureMatch]) -> str:
        seed = self._style_seed(prompt)
        knowledge = self.engine.knowledge
        primary = perceived[0]
        article = knowledge.article(primary.signature)
        evidence = "; ".join(primary.evidence)
        explanation = f"{self._hedge(seed)}{article.explanation} Evidence: {evidence}."
        if self.profile.verbosity >= 3 and len(perceived) > 1:
            extra = knowledge.article(perceived[1].signature)
            explanation += (
                f" The trace additionally shows indicators of "
                f"{extra.attack_name.lower()}."
            )

        # Top-3 most possible attacks: perceived signatures first, padded
        # with that model's nearest alternates from the knowledge base.
        candidates = [knowledge.article(m.signature) for m in perceived]
        for signature in sorted(self.profile.perceives):
            if len(candidates) >= 3:
                break
            alternate = knowledge.article(signature)
            if alternate not in candidates:
                candidates.append(alternate)
        attack_lines = [
            f"{rank}. {entry.attack_name} — {entry.implications}"
            for rank, entry in enumerate(candidates[:3], start=1)
        ]
        remediation_lines = [f"- {step}" for step in article.remediations]
        return (
            "Verdict: anomalous\n"
            f"Explanation: {explanation}\n"
            "Top attacks:\n" + "\n".join(attack_lines) + "\n"
            f"Attribution: {article.attribution}\n"
            "Remediation:\n" + "\n".join(remediation_lines)
        )


def build_default_backends(
    knowledge: Optional[CellularKnowledgeBase] = None,
) -> dict[str, SimulatedLlmBackend]:
    """The five evaluated models, sharing one analysis engine."""
    engine = AnalysisEngine(knowledge)
    return {
        name: SimulatedLlmBackend(profile=profile, engine=engine)
        for name, profile in MODEL_PROFILES.items()
    }
