"""Expert referencing: prompt -> model -> parsed analysis, end to end.

This is the caller-side workflow the LLM analyzer xApp runs for each
anomalous sequence (paper §3.3): render the Figure 5 prompt (optionally
retrieval-augmented), query the model through the REST-style client, parse
the text into the structured classification / explanation / attribution /
remediation outputs, and cross-compare with MobiWatch's verdict.

With ``repro.llmfast`` settings attached the same workflow runs on the
fast path: vectorized RAG retrieval (seed-ranking identical), compiled
prompt assembly (byte-identical), and a content-addressed verdict cache
keyed on canonical trace signatures, so near-duplicate queries skip the
provider round trip while keeping every verdict *decision* identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.llm.client import LlmClient
from repro.llm.knowledge import AnalysisEngine, CellularKnowledgeBase
from repro.llm.prompt import PromptTemplate
from repro.llm.response import AnalysisResponse, parse_response
from repro.telemetry.mobiflow import MobiFlowRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llmfast.settings import LlmfastSettings


@dataclass
class ExpertVerdict:
    """One complete expert-referencing result for a flagged sequence."""

    response: AnalysisResponse
    prompt: str
    model: str
    # Cross-comparison with the anomaly detector (§3.3): contradictory
    # results require human supervision.
    detector_flagged: bool = True
    # repro.llmfast: True when the response was served from the verdict
    # cache instead of a provider round trip.
    from_cache: bool = False

    @property
    def agrees_with_detector(self) -> bool:
        return self.response.is_anomalous == self.detector_flagged

    @property
    def needs_human_review(self) -> bool:
        return not self.agrees_with_detector


@dataclass
class ExpertAnalyst:
    """Expert-referencing driver bound to one model."""

    client: LlmClient
    use_rag: bool = False
    knowledge: CellularKnowledgeBase = field(default_factory=CellularKnowledgeBase)
    # repro.llmfast flags; None keeps the seed path exactly.
    llmfast: Optional["LlmfastSettings"] = None
    analyses_run: int = 0
    escalations: int = 0
    cache_hits: int = 0

    def __post_init__(self) -> None:
        self._retriever = None
        self._prompt_builder = None
        self._cache = None
        self._interner = None
        self._engine = None
        settings = self.llmfast
        if settings is None:
            return
        if settings.vectorized_rag:
            from repro.llmfast.retrieval import VectorizedRetriever

            self._retriever = VectorizedRetriever(self.knowledge)
        if settings.compiled_prompts:
            from repro.llmfast.promptfast import CompiledPromptBuilder

            self._prompt_builder = CompiledPromptBuilder(
                line_cache_capacity=settings.prompt_cache_capacity
            )
        if settings.verdict_cache or settings.coalesce:
            from repro.llmfast.cache import SignatureInterner, VerdictCache

            self._cache = (
                VerdictCache(settings.cache_capacity)
                if settings.verdict_cache
                else None
            )
            self._interner = SignatureInterner(settings.cache_capacity)
            # The same shared engine the simulated backends run; used
            # locally only to canonicalize the decision content.
            self._engine = AnalysisEngine(self.knowledge)

    # -- fast-path primitives (repro.llmfast) --------------------------------

    def retrieve_snippets(self, records: list[MobiFlowRecord]) -> list[str]:
        """RAG retrieval through the configured retriever."""
        if self._retriever is not None:
            return self._retriever.retrieve(records)
        return self.knowledge.retrieve(records)

    def build_prompt(
        self, records: list[MobiFlowRecord], snippets: Optional[list] = None
    ) -> str:
        """Render the Figure 5 prompt through the configured builder."""
        if self._prompt_builder is not None:
            return self._prompt_builder.render(records, snippets or None)
        template = PromptTemplate()
        if snippets:
            template.retrieved_snippets = list(snippets)
        return template.render(records)

    def signature_for(self, records: list[MobiFlowRecord]):
        """Canonical trace signature, or None when caching is off."""
        if self._interner is None:
            return None
        from repro.llmfast.cache import trace_signature

        records_key = tuple(records)
        signature = self._interner.get(records_key)
        if signature is None:
            snippets: tuple = ()
            if self.use_rag:
                snippets = tuple(self.retrieve_snippets(records))
            signature = trace_signature(
                records,
                self._engine.analyze(records),
                model=self.client.model,
                use_rag=self.use_rag,
                snippets=snippets,
            )
            self._interner.put(records_key, signature)
        return signature

    def cached_verdict(
        self, signature, detector_flagged: bool = True
    ) -> Optional[ExpertVerdict]:
        """A verdict served from the cache, or None on a miss."""
        if self._cache is None or signature is None:
            return None
        entry = self._cache.get(signature)
        if entry is None:
            return None
        self.cache_hits += 1
        verdict = ExpertVerdict(
            response=entry.response,
            prompt=entry.prompt,
            model=entry.model,
            detector_flagged=detector_flagged,
            from_cache=True,
        )
        if verdict.needs_human_review:
            self.escalations += 1
        return verdict

    @property
    def cache_stats(self) -> dict:
        return self._cache.stats() if self._cache is not None else {}

    # -- the expert-referencing round ----------------------------------------

    def analyze(
        self,
        records: list[MobiFlowRecord],
        detector_flagged: bool = True,
        signature=None,
    ) -> ExpertVerdict:
        """Run one expert-referencing round for a telemetry sequence.

        With the verdict cache enabled, an equal-signature query returns
        the cached analysis without touching the provider; a miss runs
        the full round and populates the cache.  ``signature`` lets the
        xApp pass a precomputed signature (it needs one anyway for
        coalescing); when omitted it is derived here.
        """
        if self._cache is not None:
            if signature is None:
                signature = self.signature_for(records)
            cached = self.cached_verdict(signature, detector_flagged)
            if cached is not None:
                return cached
        snippets: Optional[list] = None
        if self.use_rag:
            snippets = self.retrieve_snippets(records)
        prompt = self.build_prompt(records, snippets)
        text = self.client.complete(prompt)
        response = parse_response(text)
        verdict = ExpertVerdict(
            response=response,
            prompt=prompt,
            model=self.client.model,
            detector_flagged=detector_flagged,
        )
        self.analyses_run += 1
        if verdict.needs_human_review:
            self.escalations += 1
        if self._cache is not None and signature is not None:
            from repro.llmfast.cache import CachedVerdict

            self._cache.put(
                signature,
                CachedVerdict(
                    response=response, prompt=prompt, model=self.client.model
                ),
            )
        return verdict
