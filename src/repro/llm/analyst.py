"""Expert referencing: prompt -> model -> parsed analysis, end to end.

This is the caller-side workflow the LLM analyzer xApp runs for each
anomalous sequence (paper §3.3): render the Figure 5 prompt (optionally
retrieval-augmented), query the model through the REST-style client, parse
the text into the structured classification / explanation / attribution /
remediation outputs, and cross-compare with MobiWatch's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.llm.client import LlmClient
from repro.llm.knowledge import CellularKnowledgeBase
from repro.llm.prompt import PromptTemplate
from repro.llm.response import AnalysisResponse, parse_response
from repro.telemetry.mobiflow import MobiFlowRecord


@dataclass
class ExpertVerdict:
    """One complete expert-referencing result for a flagged sequence."""

    response: AnalysisResponse
    prompt: str
    model: str
    # Cross-comparison with the anomaly detector (§3.3): contradictory
    # results require human supervision.
    detector_flagged: bool = True

    @property
    def agrees_with_detector(self) -> bool:
        return self.response.is_anomalous == self.detector_flagged

    @property
    def needs_human_review(self) -> bool:
        return not self.agrees_with_detector


@dataclass
class ExpertAnalyst:
    """Expert-referencing driver bound to one model."""

    client: LlmClient
    use_rag: bool = False
    knowledge: CellularKnowledgeBase = field(default_factory=CellularKnowledgeBase)
    analyses_run: int = 0
    escalations: int = 0

    def analyze(
        self,
        records: list[MobiFlowRecord],
        detector_flagged: bool = True,
    ) -> ExpertVerdict:
        """Run one expert-referencing round for a telemetry sequence."""
        template = PromptTemplate()
        if self.use_rag:
            template.retrieved_snippets = self.knowledge.retrieve(records)
        prompt = template.render(records)
        text = self.client.complete(prompt)
        response = parse_response(text)
        verdict = ExpertVerdict(
            response=response,
            prompt=prompt,
            model=self.client.model,
            detector_flagged=detector_flagged,
        )
        self.analyses_run += 1
        if verdict.needs_human_review:
            self.escalations += 1
        return verdict
