"""LLM-based expert referencing (paper §3.3).

The paper chains MobiWatch with large language models queried over RESTful
web APIs to *classify, explain, attribute, and remediate* flagged cellular
sequences. With no network access in this environment, the five evaluated
models (ChatGPT-4o, Gemini, Copilot, Llama3, Claude 3 Sonnet) are
**simulated**: a shared rule-based cellular-security analysis engine
(:mod:`.knowledge`) reads the *prompt text* exactly as a real model would,
and per-model capability profiles (:mod:`.profiles`) reproduce Table 3's
✓/✗ pattern — which model perceives which attack signature. Everything
around the generation — prompt construction (:mod:`.prompt`, Figure 5),
response parsing (:mod:`.response`), the REST-shaped client
(:mod:`.client`), retrieval augmentation (:mod:`.knowledge`) — is the real
system code a drop-in production API key would drive unchanged.
"""

from repro.llm.knowledge import (
    AnalysisEngine,
    CellularKnowledgeBase,
    SignatureMatch,
)
from repro.llm.prompt import PromptTemplate, format_records, parse_data_section
from repro.llm.response import AnalysisResponse, parse_response
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.backends import SimulatedLlmBackend, build_default_backends
from repro.llm.client import LlmClient, LlmServerError, SimulatedLlmServer
from repro.llm.analyst import ExpertAnalyst

__all__ = [
    "AnalysisEngine",
    "CellularKnowledgeBase",
    "SignatureMatch",
    "PromptTemplate",
    "format_records",
    "parse_data_section",
    "AnalysisResponse",
    "parse_response",
    "MODEL_PROFILES",
    "ModelProfile",
    "SimulatedLlmBackend",
    "build_default_backends",
    "LlmClient",
    "LlmServerError",
    "SimulatedLlmServer",
    "ExpertAnalyst",
]
