"""Prompt construction — the Figure 5 template.

The template is reproduced verbatim from the paper::

    You are an AI security analyst tasked with identifying potential
    attacks within a 5G network. You have access to a cellular traffic
    sequence of attributes:
    <DATA_DESCRIPTIONS>
    <DATA>
    Determine whether this sequence is anomalous or benign and explain
    why. Next, if the sequence constitutes attacks, provide the top 3 most
    possible attacks, and describe the implications.

``<DATA_DESCRIPTIONS>`` lists the MobiFlow attributes (Table 1);
``<DATA>`` is the flagged telemetry sequence rendered one entry per line.
:func:`parse_data_section` is the inverse used by the simulated backends —
they read the records back out of the prompt text, exactly as a real model
reads them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.ran.security import CipherAlg, IntegrityAlg
from repro.telemetry.mobiflow import MobiFlowRecord

DATA_DESCRIPTIONS = """\
Each line is one control-plane telemetry entry with attributes:
- t: capture timestamp in seconds
- session: RRC connection (session) identifier
- msg: RRC or NAS control message name
- dir: link direction (UL = device to network, DL = network to device)
- rnti: Radio Network Temporary Identifier of the connection (hex)
- s_tmsi: 5G S-Temporary Mobile Subscriber Identity, if observed (hex)
- suci: Subscription Concealed Identifier, if carried by the message
- supi: Subscription Permanent Identifier, ONLY if exposed in plaintext
- cipher/integrity: security algorithms selected (NEA0/NIA0 = null)
- cause: RRC establishment cause, on connection requests"""

TEMPLATE = """\
You are an AI security analyst tasked with identifying potential attacks \
within a 5G network. You have access to a cellular traffic sequence of \
attributes:
{data_descriptions}

{data}

Determine whether this sequence is anomalous or benign and explain why. \
Next, if the sequence constitutes attacks, provide the top 3 most possible \
attacks, and describe the implications.{extra}"""


def _alg_name(kind: str, value: Optional[int]) -> str:
    if value is None:
        return "-"
    prefix = "NEA" if kind == "cipher" else "NIA"
    return f"{prefix}{value}"


def format_record(record: MobiFlowRecord) -> str:
    """Render one telemetry entry as a prompt line."""
    parts = [
        f"t={record.timestamp:.3f}",
        f"session={record.session_id}",
        f"msg={record.msg}",
        f"dir={record.direction}",
        f"rnti={'0x%04x' % record.rnti if record.rnti is not None else '-'}",
        f"s_tmsi={'0x%08x' % record.s_tmsi if record.s_tmsi is not None else '-'}",
        f"suci={record.suci or '-'}",
        f"supi={record.supi or '-'}",
        f"cipher={_alg_name('cipher', record.cipher_alg)}",
        f"integrity={_alg_name('integrity', record.integrity_alg)}",
        f"cause={record.establishment_cause or '-'}",
    ]
    return " ".join(parts)


def format_records(records: Iterable[MobiFlowRecord]) -> str:
    return "\n".join(format_record(record) for record in records)


_LINE_RE = re.compile(
    r"t=(?P<t>[\d.]+) session=(?P<session>\d+) msg=(?P<msg>\S+) dir=(?P<dir>UL|DL) "
    r"rnti=(?P<rnti>\S+) s_tmsi=(?P<tmsi>\S+) suci=(?P<suci>\S+) supi=(?P<supi>\S+) "
    r"cipher=(?P<cipher>\S+) integrity=(?P<integrity>\S+) cause=(?P<cause>\S+)"
)


def parse_data_section(text: str) -> list[MobiFlowRecord]:
    """Read telemetry entries back out of prompt text (backend side)."""
    from repro.ran.messages import Message, MessageError

    def _protocol(msg_name: str) -> str:
        try:
            return Message.lookup(msg_name).PROTOCOL.value
        except MessageError:
            return "RRC"

    records: list[MobiFlowRecord] = []
    for match in _LINE_RE.finditer(text):
        cipher = match["cipher"]
        integrity = match["integrity"]
        records.append(
            MobiFlowRecord(
                timestamp=float(match["t"]),
                msg=match["msg"],
                protocol=_protocol(match["msg"]),
                direction=match["dir"],
                session_id=int(match["session"]),
                rnti=None if match["rnti"] == "-" else int(match["rnti"], 16),
                s_tmsi=None if match["tmsi"] == "-" else int(match["tmsi"], 16),
                suci=None if match["suci"] == "-" else match["suci"],
                supi=None if match["supi"] == "-" else match["supi"],
                cipher_alg=None if cipher == "-" else int(CipherAlg[cipher]),
                integrity_alg=None if integrity == "-" else int(IntegrityAlg[integrity]),
                establishment_cause=None if match["cause"] == "-" else match["cause"],
            )
        )
    return records


@dataclass
class PromptTemplate:
    """Zero-shot prompt builder, optionally retrieval-augmented (§5)."""

    data_descriptions: str = DATA_DESCRIPTIONS
    # Retrieved 3GPP-knowledge snippets appended to the prompt (RAG).
    retrieved_snippets: list = field(default_factory=list)

    def render(self, records: Iterable[MobiFlowRecord]) -> str:
        extra = ""
        if self.retrieved_snippets:
            bullet_list = "\n".join(f"- {snippet}" for snippet in self.retrieved_snippets)
            extra = (
                "\n\nRelevant 3GPP protocol knowledge for reference:\n" + bullet_list
            )
        return TEMPLATE.format(
            data_descriptions=self.data_descriptions,
            data=format_records(records),
            extra=extra,
        )
