"""Structured analysis responses and the text parser (xApp side).

The LLM xApp receives free text from the model API and parses it back into
the four outputs the paper asks for (§3.3): classification, explanation,
attribution, remediation. The simulated backends *generate* text in the
same sectioned style real models produce when given the Figure 5 prompt,
so the parser is exercised on every query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class AnalysisResponse:
    """Parsed LLM analysis of one flagged sequence."""

    verdict: str  # "anomalous" | "benign"
    explanation: str
    top_attacks: list = field(default_factory=list)  # (attack name, implications)
    attribution: str = ""
    remediations: list = field(default_factory=list)
    raw_text: str = ""

    @property
    def is_anomalous(self) -> bool:
        return self.verdict == "anomalous"


class ResponseParseError(ValueError):
    """Raised when the model output cannot be parsed."""


_SECTION_RE = re.compile(
    r"^(Verdict|Explanation|Top attacks|Attribution|Remediation)\s*:\s*",
    re.IGNORECASE | re.MULTILINE,
)


def _split_sections(text: str) -> dict[str, str]:
    sections: dict[str, str] = {}
    matches = list(_SECTION_RE.finditer(text))
    for i, match in enumerate(matches):
        name = match.group(1).lower()
        start = match.end()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[name] = text[start:end].strip()
    return sections


def parse_response(text: str) -> AnalysisResponse:
    """Parse sectioned analyst output into an :class:`AnalysisResponse`."""
    sections = _split_sections(text)
    if "verdict" not in sections:
        raise ResponseParseError("no Verdict section in model output")
    verdict_raw = sections["verdict"].lower()
    if "anomal" in verdict_raw:
        verdict = "anomalous"
    elif "benign" in verdict_raw or "normal" in verdict_raw:
        verdict = "benign"
    else:
        raise ResponseParseError(f"unparseable verdict {sections['verdict']!r}")

    top_attacks: list[tuple[str, str]] = []
    attacks_text = sections.get("top attacks", "")
    for line in attacks_text.splitlines():
        line = line.strip()
        match = re.match(r"^\d+\.\s*(?P<name>[^—]+?)\s*(?:—\s*(?P<impl>.*))?$", line)
        if match:
            top_attacks.append(
                (match["name"].strip(), (match["impl"] or "").strip())
            )

    remediations = [
        line.strip().lstrip("-• ").strip()
        for line in sections.get("remediation", "").splitlines()
        if line.strip()
    ]

    return AnalysisResponse(
        verdict=verdict,
        explanation=sections.get("explanation", ""),
        top_attacks=top_attacks,
        attribution=sections.get("attribution", ""),
        remediations=remediations,
        raw_text=text,
    )
