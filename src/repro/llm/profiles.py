"""Per-model capability profiles calibrated to the paper's Table 3.

Table 3 reports which of the five zero-shot models correctly classified
each attack trace (✓) or got it wrong (✗):

=====================  ========  ======  =======  ======  ========
Attack / Trace         ChatGPT   Gemini  Copilot  Llama3  Claude 3
                       4o                                 Sonnet
=====================  ========  ======  =======  ======  ========
BTS DoS                ✓         ✓       ✓        ✗       ✗
Blind DoS              ✓         ✗       ✗        ✓       ✗
Uplink ID Extraction   ✗         ✗       ✗        ✗       ✓
Downlink ID Extr.      ✓         ✓       ✗        ✓       ✓
Null Cipher & Int.     ✓         ✓       ✗        ✓       ✓
Benign sequences       ✓         ✓       ✓        ✓       ✓
=====================  ========  ======  =======  ======  ========

A profile's ``perceives`` set lists which attack signatures that model can
recognize; signatures matched by the shared engine but outside the set are
missed (the model calls the trace benign) — reproducing the ✗ cells while
keeping all models correct on benign traces. Styles vary the response
voice so the generated text differs across models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.knowledge import (
    SIG_AUTH_FORGERY,
    SIG_NULL_CIPHER,
    SIG_OUT_OF_ORDER_IDENTITY,
    SIG_PLAINTEXT_SUCI,
    SIG_SIGNALING_STORM,
    SIG_TMSI_REPLAY,
)


@dataclass(frozen=True)
class ModelProfile:
    """What one simulated LLM can perceive and how it writes."""

    name: str
    vendor: str
    perceives: frozenset
    # Signatures the model recognizes *only when the prompt carries the
    # relevant 3GPP knowledge snippet* (retrieval augmentation, paper §5:
    # RAG closes knowledge gaps, not reasoning gaps).
    rag_boost: frozenset = frozenset()
    # Response style knobs.
    verbosity: int = 2  # 1 = terse, 2 = standard, 3 = expansive
    hedging: bool = False  # prefixes uncertainty qualifiers
    # Mean simulated API latency (seconds) for pipeline timing.
    mean_latency_s: float = 2.0


MODEL_PROFILES: dict[str, ModelProfile] = {
    "chatgpt-4o": ModelProfile(
        name="chatgpt-4o",
        vendor="OpenAI",
        perceives=frozenset(
            {
                SIG_SIGNALING_STORM,
                SIG_TMSI_REPLAY,
                SIG_OUT_OF_ORDER_IDENTITY,
                SIG_NULL_CIPHER,
            }
        ),
        rag_boost=frozenset({SIG_PLAINTEXT_SUCI}),
        verbosity=3,
        mean_latency_s=2.5,
    ),
    "gemini": ModelProfile(
        name="gemini",
        vendor="Google",
        perceives=frozenset(
            {SIG_SIGNALING_STORM, SIG_OUT_OF_ORDER_IDENTITY, SIG_NULL_CIPHER}
        ),
        rag_boost=frozenset({SIG_TMSI_REPLAY}),
        verbosity=2,
        mean_latency_s=1.8,
    ),
    "copilot": ModelProfile(
        name="copilot",
        vendor="Microsoft",
        perceives=frozenset({SIG_SIGNALING_STORM}),
        rag_boost=frozenset({SIG_NULL_CIPHER, SIG_OUT_OF_ORDER_IDENTITY}),
        verbosity=1,
        hedging=True,
        mean_latency_s=1.5,
    ),
    "llama3": ModelProfile(
        name="llama3",
        vendor="Meta",
        perceives=frozenset(
            {SIG_TMSI_REPLAY, SIG_OUT_OF_ORDER_IDENTITY, SIG_NULL_CIPHER}
        ),
        rag_boost=frozenset({SIG_SIGNALING_STORM}),
        verbosity=2,
        mean_latency_s=1.2,
    ),
    "claude-3-sonnet": ModelProfile(
        name="claude-3-sonnet",
        vendor="Anthropic",
        perceives=frozenset(
            {SIG_PLAINTEXT_SUCI, SIG_OUT_OF_ORDER_IDENTITY, SIG_NULL_CIPHER}
        ),
        rag_boost=frozenset({SIG_TMSI_REPLAY}),
        verbosity=3,
        hedging=True,
        mean_latency_s=2.2,
    ),
}


# The paper's "Specialized LLM for 6G" vision (§5): a locally fine-tuned
# model trained on cellular protocol knowledge. Not part of Table 3; used
# by the RAG/fine-tuning study and available to the analyzer xApp.
FINETUNED_PROFILE = ModelProfile(
    name="xsec-ft-7b",
    vendor="local",
    perceives=frozenset(
        {
            SIG_AUTH_FORGERY,
            SIG_SIGNALING_STORM,
            SIG_TMSI_REPLAY,
            SIG_PLAINTEXT_SUCI,
            SIG_OUT_OF_ORDER_IDENTITY,
            SIG_NULL_CIPHER,
        }
    ),
    verbosity=2,
    mean_latency_s=0.6,  # local inference: no WAN round trip
)

MODEL_PROFILES["xsec-ft-7b"] = FINETUNED_PROFILE
