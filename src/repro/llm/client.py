"""RESTful-style LLM client (paper §3.3: "accesses the LLMs through
RESTful web APIs").

The client speaks a chat-completions-shaped request/response protocol to a
server object. :class:`SimulatedLlmServer` hosts the simulated backends
behind that same protocol, so swapping in a real HTTP transport would not
change any caller code. Simulated latency lets the pipeline measure
realistic end-to-end explanation times.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

from repro.llm.backends import SimulatedLlmBackend, build_default_backends


class LlmServerError(RuntimeError):
    """Raised for API-level failures (unknown model, malformed request)."""


class LlmTransport(Protocol):
    """Anything that can answer a chat-completions request."""

    def post(self, request: dict) -> dict: ...


class SimulatedLlmServer:
    """In-process stand-in for the providers' web APIs."""

    def __init__(self, backends: Optional[dict[str, SimulatedLlmBackend]] = None) -> None:
        self.backends = backends or build_default_backends()
        self.requests_served = 0

    def post(self, request: dict) -> dict:
        model = request.get("model")
        if model not in self.backends:
            raise LlmServerError(f"unknown model {model!r}")
        messages = request.get("messages")
        if not isinstance(messages, list) or not messages:
            raise LlmServerError("request has no messages")
        last = messages[-1]
        if last.get("role") != "user" or not isinstance(last.get("content"), str):
            raise LlmServerError("last message must be a user message with content")
        backend = self.backends[model]
        text = backend.complete(last["content"])
        self.requests_served += 1
        return {
            "model": model,
            "choices": [
                {"index": 0, "message": {"role": "assistant", "content": text}}
            ],
            "usage": {
                "prompt_tokens": len(last["content"].split()),
                "completion_tokens": len(text.split()),
            },
        }

    def latency_for(self, model: str, prompt: str) -> float:
        """Deterministic per-request latency (mean per profile ±30%)."""
        backend = self.backends.get(model)
        if backend is None:
            raise LlmServerError(f"unknown model {model!r}")
        digest = hashlib.sha256((model + prompt).encode("utf-8")).digest()
        jitter = (digest[0] / 255.0 - 0.5) * 0.6  # -0.3 .. +0.3
        return backend.profile.mean_latency_s * (1.0 + jitter)


@dataclass
class LlmClient:
    """Caller-side API wrapper used by the LLM analyzer xApp."""

    server: LlmTransport
    model: str
    system_preamble: str = ""
    requests_sent: int = 0

    def complete(self, prompt: str) -> str:
        """Send one zero-shot prompt; return the assistant text."""
        messages: list[dict[str, Any]] = []
        if self.system_preamble:
            messages.append({"role": "system", "content": self.system_preamble})
        messages.append({"role": "user", "content": prompt})
        response = self.server.post({"model": self.model, "messages": messages})
        self.requests_sent += 1
        try:
            return response["choices"][0]["message"]["content"]
        except (KeyError, IndexError, TypeError) as exc:
            raise LlmServerError(f"malformed API response: {response!r}") from exc
