"""repro.hotpath: the inference hot path, optimized behind default-off flags.

Three independent optimizations for the live scoring path (see
docs/PERFORMANCE.md):

- :mod:`repro.hotpath.incremental` — O(1)-amortized per-session LSTM
  scoring with carried hidden/cell state;
- :mod:`repro.hotpath.compiled` — fused preallocated-buffer inference
  kernels over contiguous float32/float64 weight snapshots;
- :mod:`repro.hotpath.arena` — zero-copy per-session window assembly.

All defaults in :class:`~repro.hotpath.settings.HotpathSettings` keep the
seed scoring path bit-identical; :mod:`repro.hotpath.bench` measures the
speedups and gates them against the committed ``BENCH_hotpath.json``.
"""

from repro.hotpath.arena import SessionWindowArena
from repro.hotpath.compiled import CompiledModel, compile_detector
from repro.hotpath.incremental import IncrementalLstmScorer, ScoreMismatch
from repro.hotpath.settings import HotpathSettings

__all__ = [
    "CompiledModel",
    "HotpathSettings",
    "IncrementalLstmScorer",
    "ScoreMismatch",
    "SessionWindowArena",
    "compile_detector",
]
