"""Hot-path benchmark: per-record latency, kernel throughput, codec MB/s.

Three measurements, mirroring the three hotpath optimizations:

- **per-record LSTM scoring latency** — the seed live path (assemble the
  window, re-run the full window through the detector) vs incremental
  carried-state scoring, per telemetry record;
- **kernel throughput** — uncompiled detector ``scores`` vs the compiled
  float32 kernels, in windows/second, for both detectors;
- **codec throughput** — the reference TLV encoder vs the fast single-pass
  interned-key path, in MB/s, on realistic MobiFlow batches.

Every run re-verifies the equality contracts (float64 bit-identity,
byte-identical codec). :func:`violations` gates a result against the hard
speedup floors and against a committed baseline (``BENCH_hotpath.json``),
so CI fails when a change regresses the hot path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro import wire
from repro.hotpath.arena import SessionWindowArena
from repro.hotpath.compiled import compile_detector
from repro.hotpath.incremental import IncrementalLstmScorer
from repro.hotpath.settings import HotpathSettings
from repro.telemetry import encoder as telemetry_encoder
from repro.telemetry.mobiflow import MobiFlowRecord

# Hard floors from the perf-trajectory acceptance gates.
PER_RECORD_SPEEDUP_MIN = 5.0
KERNEL_SPEEDUP_MIN = 2.0
CODEC_SPEEDUP_MIN = 1.0
# A fresh run may regress this far below the committed baseline's measured
# ratio before we call it a regression (shared-runner noise allowance).
BASELINE_SLACK = 0.5


@dataclass
class HotpathBenchConfig:
    window: int = 6
    feature_dim: int = 71
    lstm_hidden_dim: int = 64
    ae_hidden_dim: int = 128
    ae_latent_dim: int = 24
    seed: int = 7
    # Stream length for the per-record latency measurement.
    stream_records: int = 400
    # Batch size / repetitions for kernel throughput.
    kernel_batch: int = 256
    kernel_reps: int = 30
    # Records per codec batch / repetitions.
    codec_records: int = 400
    codec_reps: int = 40
    repeats: int = 3  # best-of repeats for every timing loop

    @classmethod
    def quick(cls) -> "HotpathBenchConfig":
        return cls(
            stream_records=140,
            kernel_batch=64,
            kernel_reps=8,
            codec_records=120,
            codec_reps=10,
            repeats=2,
        )


@dataclass
class HotpathBenchResult:
    per_record: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)
    codec: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "per_record": self.per_record,
            "kernels": self.kernels,
            "codec": self.codec,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = ["hotpath bench" + (" (quick)" if self.meta.get("quick") else "")]
        p = self.per_record
        lines.append(
            f"  per-record LSTM scoring: seed {p['seed_us']:.1f}us -> "
            f"incremental {p['incremental_us']:.1f}us ({p['speedup']:.2f}x, floor "
            f"{PER_RECORD_SPEEDUP_MIN:.1f}x)"
        )
        for name, k in self.kernels.items():
            lines.append(
                f"  {name} kernels: seed {k['seed_wps']:.0f} w/s -> compiled f32 "
                f"{k['compiled_f32_wps']:.0f} w/s ({k['speedup']:.2f}x, floor "
                f"{KERNEL_SPEEDUP_MIN:.1f}x); f64 {k['compiled_f64_wps']:.0f} w/s"
            )
        c = self.codec
        lines.append(
            f"  codec encode: reference {c['reference_mbps']:.1f} MB/s -> fast "
            f"{c['fast_mbps']:.1f} MB/s ({c['speedup']:.2f}x); decode "
            f"{c['decode_mbps']:.1f} MB/s"
        )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) measurement across repeats — noise-robust timing."""
    return min(run() for _ in range(repeats))


def _make_detectors(cfg: HotpathBenchConfig):
    from repro.ml.detector import AutoencoderDetector, LstmDetector

    lstm = LstmDetector(
        window=cfg.window,
        feature_dim=cfg.feature_dim,
        hidden_dim=cfg.lstm_hidden_dim,
        seed=cfg.seed,
    )
    ae = AutoencoderDetector(
        window=cfg.window,
        feature_dim=cfg.feature_dim,
        hidden_dim=cfg.ae_hidden_dim,
        latent_dim=cfg.ae_latent_dim,
        seed=cfg.seed,
    )
    return lstm, ae


def _bench_per_record(cfg: HotpathBenchConfig, lstm_detector, result: HotpathBenchResult) -> None:
    rng = np.random.default_rng(cfg.seed)
    rows = rng.normal(size=(cfg.stream_records, cfg.feature_dim)).astype(np.float32)
    window, dim = cfg.window, cfg.feature_dim

    def seed_stream() -> float:
        stored: list[np.ndarray] = []
        t0 = time.perf_counter()
        for t in range(cfg.stream_records):
            stored.append(rows[t])
            chosen = stored[-window:]
            mat = np.stack(chosen)
            if len(chosen) < window:
                padded = np.zeros((window, dim), dtype=mat.dtype)
                padded[window - len(chosen) :] = mat
                mat = padded
            lstm_detector.scores(mat.reshape(1, -1))
        return (time.perf_counter() - t0) / cfg.stream_records

    def incremental_stream() -> float:
        arena = SessionWindowArena(dim, window)
        scorer = IncrementalLstmScorer(lstm_detector, HotpathSettings(incremental=True))
        t0 = time.perf_counter()
        for t in range(cfg.stream_records):
            arena.append(1, rows[t])
            scorer.push(1, rows[t])
            scorer.window_score(1)
        return (time.perf_counter() - t0) / cfg.stream_records

    seed_stream()  # warm-up (BLAS thread spin-up, allocator)
    seed_s = _best_of(cfg.repeats, seed_stream)
    incremental_stream()
    incremental_s = _best_of(cfg.repeats, incremental_stream)
    result.per_record = {
        "seed_us": seed_s * 1e6,
        "incremental_us": incremental_s * 1e6,
        "speedup": seed_s / incremental_s,
    }

    # Equality: the cached stream's errors must equal the batch replay.
    scorer = IncrementalLstmScorer(lstm_detector, HotpathSettings(incremental=True))
    check = rows[: min(cfg.stream_records, 64)]
    for row in check:
        scorer.push(1, row)
    result.equality["incremental_f64_exact"] = bool(
        np.array_equal(scorer.record_errors(1), scorer.replay_errors(check))
    )


def _bench_kernels(cfg: HotpathBenchConfig, detectors: dict, result: HotpathBenchResult) -> None:
    rng = np.random.default_rng(cfg.seed + 1)
    # float32 windows: what the live path (arena rows, pool batches)
    # actually feeds the detector. The seed path pays its float64
    # up-conversion here exactly as it does in production.
    windows = rng.normal(size=(cfg.kernel_batch, cfg.window * cfg.feature_dim)).astype(
        np.float32
    )

    for name, detector in detectors.items():
        seed_scores = detector.scores(windows)
        compiled32 = compile_detector(detector, "float32")
        compiled64 = compile_detector(detector, "float64")
        result.equality[f"compiled_f64_exact_{name}"] = bool(
            np.array_equal(seed_scores, compiled64.scores(windows))
        )
        result.equality[f"compiled_f32_close_{name}"] = bool(
            np.allclose(seed_scores, compiled32.scores(windows), rtol=1e-4, atol=1e-6)
        )

        def throughput(score_fn) -> float:
            def run() -> float:
                t0 = time.perf_counter()
                for _ in range(cfg.kernel_reps):
                    score_fn(windows)
                return (time.perf_counter() - t0) / cfg.kernel_reps

            run()  # warm-up
            return cfg.kernel_batch / _best_of(cfg.repeats, run)

        seed_wps = throughput(detector.scores)
        f32_wps = throughput(compiled32.scores)
        f64_wps = throughput(compiled64.scores)
        result.kernels[name] = {
            "seed_wps": seed_wps,
            "compiled_f32_wps": f32_wps,
            "compiled_f64_wps": f64_wps,
            "speedup": f32_wps / seed_wps,
        }


def _codec_batch(cfg: HotpathBenchConfig) -> list:
    return [
        MobiFlowRecord(
            timestamp=0.1 * i,
            msg="rrcSetupRequest" if i % 3 else "registrationRequest",
            protocol="RRC" if i % 3 else "NAS",
            direction="UL" if i % 2 else "DL",
            session_id=1 + i % 13,
            rnti=17000 + i % 97,
            s_tmsi=(2**33 + i) if i % 4 else None,
            suci=f"suci-0-999-70-0000-{i % 11}" if i % 5 == 0 else None,
            cipher_alg=2 if i % 2 else None,
            integrity_alg=2 if i % 2 else None,
            establishment_cause="mo-Signalling" if i % 3 == 0 else None,
        )
        for i in range(cfg.codec_records)
    ]


def _reference_encode_batch(records: list) -> bytes:
    """The seed encoder: per-value bytes objects joined recursively."""
    return wire.encode(
        [{k: v for k, v in r.to_dict().items() if v is not None} for r in records]
    )


def _bench_codec(cfg: HotpathBenchConfig, result: HotpathBenchResult) -> None:
    records = _codec_batch(cfg)
    reference_bytes = _reference_encode_batch(records)
    fast_bytes = telemetry_encoder.encode_batch(records)
    result.equality["codec_byte_identical"] = reference_bytes == fast_bytes
    size = len(fast_bytes)

    def mbps(run_once: Callable[[], object]) -> float:
        def run() -> float:
            t0 = time.perf_counter()
            for _ in range(cfg.codec_reps):
                run_once()
            return (time.perf_counter() - t0) / cfg.codec_reps

        run()  # warm-up
        return size / _best_of(cfg.repeats, run) / 1e6

    reference_mbps = mbps(lambda: _reference_encode_batch(records))
    fast_mbps = mbps(lambda: telemetry_encoder.encode_batch(records))
    decode_mbps = mbps(lambda: telemetry_encoder.decode_batch(fast_bytes))
    result.codec = {
        "batch_bytes": size,
        "reference_mbps": reference_mbps,
        "fast_mbps": fast_mbps,
        "decode_mbps": decode_mbps,
        "speedup": fast_mbps / reference_mbps,
    }


def run_bench(config: Optional[HotpathBenchConfig] = None, quick: bool = False) -> HotpathBenchResult:
    """Run all three measurements plus the equality re-verification."""
    cfg = config or (HotpathBenchConfig.quick() if quick else HotpathBenchConfig())
    result = HotpathBenchResult()
    result.meta = {
        "quick": quick,
        "window": cfg.window,
        "feature_dim": cfg.feature_dim,
        "stream_records": cfg.stream_records,
        "kernel_batch": cfg.kernel_batch,
    }
    lstm, ae = _make_detectors(cfg)
    _bench_per_record(cfg, lstm, result)
    _bench_kernels(cfg, {"lstm": lstm, "autoencoder": ae}, result)
    _bench_codec(cfg, result)
    return result


def violations(result: HotpathBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the hard floors and the committed baseline."""
    out: list[str] = []
    for key, ok in result.equality.items():
        if not ok:
            out.append(f"equality contract broken: {key}")
    speedup = result.per_record.get("speedup", 0.0)
    if speedup < PER_RECORD_SPEEDUP_MIN:
        out.append(
            f"per-record speedup {speedup:.2f}x below floor {PER_RECORD_SPEEDUP_MIN:.1f}x"
        )
    for name, k in result.kernels.items():
        if k["speedup"] < KERNEL_SPEEDUP_MIN:
            out.append(
                f"{name} kernel speedup {k['speedup']:.2f}x below floor "
                f"{KERNEL_SPEEDUP_MIN:.1f}x"
            )
    if result.codec.get("speedup", 0.0) < CODEC_SPEEDUP_MIN:
        out.append(
            f"codec speedup {result.codec['speedup']:.2f}x below floor "
            f"{CODEC_SPEEDUP_MIN:.1f}x"
        )
    if baseline:
        for path, current in (
            (("per_record", "speedup"), speedup),
            *(
                (("kernels", name, "speedup"), k["speedup"])
                for name, k in result.kernels.items()
            ),
            (("codec", "speedup"), result.codec.get("speedup", 0.0)),
        ):
            node = baseline
            for part in path:
                node = node.get(part, {}) if isinstance(node, dict) else {}
            if isinstance(node, (int, float)) and current < node * BASELINE_SLACK:
                out.append(
                    f"{'.'.join(path)} {current:.2f}x regressed below "
                    f"{BASELINE_SLACK:.0%} of committed baseline {node:.2f}x"
                )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: HotpathBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
