"""O(1)-amortized per-session LSTM scoring with carried hidden/cell state.

The seed live path re-runs the whole window through ``LstmPredictor.forward``
on every new record — O(window) gate matmuls per record, with fresh zero
state per window. This module instead carries each session's LSTM
hidden/cell state across records: scoring a new record costs **one** fused
LSTM step plus one head matmul, and follows the *session-context* semantics
of :meth:`repro.ml.detector.LstmDetector.session_window_scores` (the
offline evaluation path), so a record's prediction context is its entire
session prefix rather than the window prefix — the train/serve scoring
mismatch of the seed live path disappears.

Score of the live window ending at record ``t``:

    max(error[t - window + 1 .. t])        (fewer while the session is short)

where ``error[j]`` is the next-entry prediction error of record ``j`` given
state carried over records ``0..j-1``, and ``error[0] = 0`` (a session's
first record is unpredictable — exactly ``record_errors``' convention).

Equality contract (enforced by tests and the ``self_check`` mode):

- ``cached`` (the fast path) in **float64** produces scores *bitwise equal*
  to :meth:`replay_errors`, which recomputes every error from the session
  prefix using the seed's own plain-numpy expressions;
- in **float32** (only when riding compiled float32 kernels) scores match
  the float64 replay within the documented
  :class:`~repro.hotpath.settings.HotpathSettings` tolerances;
- ``replay`` mode runs the reference computation live, so a full pipeline
  run in either mode must emit identical anomaly events.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional

import numpy as np

from repro.hotpath.compiled import CompiledLstm
from repro.hotpath.settings import HotpathSettings
from repro.slo import profiler as _profiler

# Active-profiler sampling stride on the per-record scoring path: one call
# in this many is timed and extrapolated (repro.slo.profiler.record). The
# stride keeps the skip path to one attribute update; at fleet record
# rates even 1-in-128 yields dozens of samples per second.
_PROFILE_SAMPLE = 128


class _SessionState:
    """One session's carried LSTM state and per-record error history."""

    __slots__ = ("h", "c", "errors")

    def __init__(self, h: np.ndarray, c: np.ndarray) -> None:
        self.h = h
        self.c = c
        self.errors: list[float] = []


class ScoreMismatch(RuntimeError):
    """Raised by ``self_check`` when cached and replayed scores disagree."""


class IncrementalLstmScorer:
    """Carried-state scorer for a fitted :class:`LstmDetector`."""

    def __init__(
        self, detector, settings: Optional[HotpathSettings] = None, metrics=None
    ) -> None:
        from repro.ml.detector import LstmDetector

        if not isinstance(detector, LstmDetector):
            raise TypeError(
                f"incremental scoring needs an LstmDetector, got {type(detector).__name__}"
            )
        self.settings = settings if settings is not None else HotpathSettings(incremental=True)
        self.window = detector.window
        self.model = detector.model
        self.dtype = np.dtype(self.settings.incremental_dtype)
        self.mode = self.settings.incremental_mode
        self.self_check = self.settings.self_check
        # The fused single-step kernel; in float64 its ops mirror the seed
        # expressions exactly (same association, same sigmoid op sequence).
        self._core = CompiledLstm(self.model, str(self.dtype))
        self._sessions: Dict[int, _SessionState] = {}
        self.self_checks_passed = 0
        # Optional repro.obs counters. push() is the hottest per-record
        # call in the deployment, so the increment is inlined on the raw
        # counter value (no method dispatch) and skipped when unwired.
        self._steps_counter = None
        self._scores_counter = None
        self._prof_skip = _PROFILE_SAMPLE
        if metrics is not None:
            self._steps_counter = metrics.counter(
                "hotpath.incremental_steps_total",
                help="fused LSTM steps (one per ingested record)",
            )
            self._scores_counter = metrics.counter(
                "hotpath.incremental_window_scores_total",
                help="O(1) carried-state window scores",
            )
            metrics.gauge(
                "hotpath.incremental_sessions",
                fn=lambda: float(len(self._sessions)),
                help="sessions with carried LSTM state",
            )

    # -- cached fast path --------------------------------------------------------

    def push(self, session_id: int, row: np.ndarray) -> float:
        """Ingest one record; returns its session-context prediction error.

        One fused LSTM step + one head matmul per call. A no-op returning
        0.0 in ``replay`` mode (the reference mode recomputes from the
        session rows at scoring time instead).
        """
        if self.mode == "replay":
            return 0.0
        counter = self._steps_counter
        if counter is not None:
            counter.value += 1
        state = self._sessions.get(session_id)
        if state is None:
            h, c = self._core.new_state()
            state = self._sessions[session_id] = _SessionState(h, c)
            error = 0.0
        else:
            error = self._core.step_error(state.h, row)
        self._core.step(row, state.h, state.c)
        state.errors.append(error)
        return error

    def warm_up(self, session_id: int, rows: Iterable[np.ndarray]) -> None:
        """Replay pre-existing session rows through the cached state.

        Used at detector deployment when sessions already hold telemetry:
        afterwards the carried state is exactly what record-by-record
        ingest would have produced.
        """
        for row in np.asarray(rows):
            self.push(session_id, row)

    def session_length(self, session_id: int) -> int:
        state = self._sessions.get(session_id)
        return len(state.errors) if state is not None else 0

    def release(self, session_id: int) -> bool:
        """Drop one session's carried state and error history (eviction)."""
        return self._sessions.pop(session_id, None) is not None

    def record_errors(self, session_id: int) -> np.ndarray:
        """The session's per-record errors so far (cached mode)."""
        state = self._sessions.get(session_id)
        if state is None:
            return np.zeros(0)
        return np.asarray(state.errors, dtype=np.float64)

    # -- scoring -----------------------------------------------------------------

    def window_score(self, session_id: int, rows: Optional[np.ndarray] = None) -> float:
        """Score of the session's current last window.

        ``rows`` is the session's full row history ``[L, dim]`` (e.g. an
        arena view); required in ``replay`` mode and under ``self_check``,
        ignored otherwise.
        """
        # Sampled profiling: this runs once per record at fleet rate, so an
        # active profiler times one call in _PROFILE_SAMPLE and reports the
        # extrapolated total; every other call pays one decrement.
        prof = _profiler.CURRENT
        if prof is not None:
            skip = self._prof_skip - 1
            if skip <= 0:
                self._prof_skip = _PROFILE_SAMPLE
                start = time.perf_counter()
                score = self._window_score(session_id, rows)
                prof.record(
                    "hotpath.window_score",
                    (time.perf_counter() - start) * _PROFILE_SAMPLE,
                    calls=_PROFILE_SAMPLE,
                )
                return score
            self._prof_skip = skip
        return self._window_score(session_id, rows)

    def _window_score(self, session_id: int, rows: Optional[np.ndarray]) -> float:
        if self.mode == "replay":
            if rows is None:
                raise ValueError("replay mode needs the session rows")
            errors = self.replay_errors(rows)
            if len(errors) == 0:
                raise ValueError("cannot score an empty session")
            return float(errors[-self.window :].max())
        state = self._sessions.get(session_id)
        if state is None or not state.errors:
            raise KeyError(f"no records pushed for session {session_id}")
        score = max(state.errors[-self.window :])
        counter = self._scores_counter
        if counter is not None:
            counter.value += 1
        if self.self_check:
            self._verify(session_id, state, score, rows)
        return score

    # -- batch-replay reference --------------------------------------------------

    def replay_errors(self, rows: np.ndarray) -> np.ndarray:
        """Per-record session-context errors recomputed from scratch.

        Runs the seed's own float64 expressions step by step over the whole
        session: the state recursion is the body of
        ``LstmPredictor.forward`` and each step's prediction applies the
        head exactly as ``Dense.forward`` does on a single-row input. The
        float64 cached path must equal this bitwise.
        """
        from repro.ml.lstm import _sigmoid

        seq = np.asarray(rows, dtype=np.float64)
        if seq.ndim != 2 or seq.shape[1] != self.model.input_dim:
            raise ValueError(f"expected [L, {self.model.input_dim}] rows, got {seq.shape}")
        length = seq.shape[0]
        errors = np.zeros(length)
        if length < 2:
            return errors
        model = self.model
        hd = model.hidden_dim
        h = np.zeros((1, hd))
        c = np.zeros((1, hd))
        for t in range(length - 1):
            xt = seq[t : t + 1]
            z = xt @ model.Wx.value + h @ model.Wh.value + model.b.value
            i = _sigmoid(z[:, :hd])
            f = _sigmoid(z[:, hd : 2 * hd])
            g = np.tanh(z[:, 2 * hd : 3 * hd])
            o = _sigmoid(z[:, 3 * hd :])
            c = f * c + i * g
            h = o * np.tanh(c)
            pred = h @ model.head.W.value + model.head.b.value
            errors[t + 1] = np.mean((pred - seq[t + 1 : t + 2]) ** 2, axis=1)[0]
        return errors

    def replay_window_score(self, rows: np.ndarray) -> float:
        """Reference score of the last window of a session's rows."""
        errors = self.replay_errors(rows)
        if len(errors) == 0:
            raise ValueError("cannot score an empty session")
        return float(errors[-self.window :].max())

    # -- runtime self-check ------------------------------------------------------

    def _verify(
        self, session_id: int, state: _SessionState, score: float, rows: Optional[np.ndarray]
    ) -> None:
        if rows is None:
            raise ValueError("self_check needs the session rows")
        reference = self.replay_window_score(rows)
        if self.dtype == np.float64:
            ok = score == reference
        else:
            ok = bool(
                np.isclose(
                    score,
                    reference,
                    rtol=self.settings.float32_rtol,
                    atol=self.settings.float32_atol,
                )
            )
        if not ok:
            raise ScoreMismatch(
                f"session {session_id} record {len(state.errors)}: cached score "
                f"{score!r} != replayed {reference!r} ({self.dtype})"
            )
        self.self_checks_passed += 1
