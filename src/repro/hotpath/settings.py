"""Configuration knobs for the inference hot path (``repro.hotpath``).

Kept dependency-free (like :mod:`repro.scale.settings`) so every layer can
import it without cycles. **Every default preserves the seed's scoring
behaviour bit-for-bit**: full-window batch re-runs, uncompiled float64
kernels, list-of-rows window assembly.

The three independent switches:

- ``incremental`` — per-session carried LSTM hidden/cell state; each new
  record costs one fused LSTM step instead of re-running the whole window
  (O(1) amortized vs O(window) matmuls per record). Scores follow the
  session-context semantics of
  :meth:`repro.ml.detector.LstmDetector.session_window_scores` (the
  offline evaluation path), and are *exactly* reproducible by the batch
  replay in float64 mode — see docs/PERFORMANCE.md for the equality
  contract. Implies ``arena`` (the replay needs the session row history).
- ``compiled`` — snapshot detector weights into contiguous arrays and run
  inference through fused preallocated-buffer kernels
  (:mod:`repro.hotpath.compiled`). ``dtype`` selects the kernel precision:
  float64 keeps scores equal to the seed path; float32 trades a documented
  tolerance for ~2x+ kernel throughput.
- ``arena`` — per-session contiguous row arenas with a zero left-pad
  prefix, so the "last window" of any session (padded or not) is a single
  contiguous view: no per-score ``np.stack``, no padding allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

_DTYPES = ("float64", "float32")
_INCREMENTAL_MODES = ("cached", "replay")


@dataclass
class HotpathSettings:
    """Knobs of the ``repro.hotpath`` subsystem (see module docstring)."""

    # Per-session carried-state LSTM scoring (LSTM detector only; the flag
    # is ignored with a log line under the autoencoder).
    incremental: bool = False
    # "cached": O(1) carried-state scoring (the fast path).
    # "replay": recompute every window score from the session prefix with
    # the seed batch forward — the reference the cached path must equal
    # exactly in float64 mode. Exists for verification and tests.
    incremental_mode: str = "cached"
    # Re-verify every cached incremental score against the batch replay at
    # runtime (exact in float64, within the float32 tolerances below).
    # Costly — a debugging/validation mode, not a production default.
    self_check: bool = False

    # Fused contiguous-weight inference kernels for detector.scores().
    compiled: bool = False
    # Kernel precision when compiled: "float64" keeps scores equal to the
    # seed path; "float32" is the throughput mode.
    dtype: str = "float32"

    # Per-session ring/arena window assembly in MobiWatch.
    arena: bool = False

    # Documented float32 score tolerance (relative/absolute), used by the
    # runtime self-check and the equality test suite.
    float32_rtol: float = 1e-4
    float32_atol: float = 1e-7

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ValueError(f"dtype must be one of {_DTYPES}, got {self.dtype!r}")
        if self.incremental_mode not in _INCREMENTAL_MODES:
            raise ValueError(
                f"incremental_mode must be one of {_INCREMENTAL_MODES}, "
                f"got {self.incremental_mode!r}"
            )

    @property
    def arena_enabled(self) -> bool:
        """Incremental scoring needs the session row history for replay."""
        return self.arena or self.incremental

    @property
    def incremental_dtype(self) -> str:
        """Incremental step precision: float32 only when compiled kernels
        are on in float32 mode; exact float64 otherwise."""
        if self.compiled and self.dtype == "float32":
            return "float32"
        return "float64"

    @property
    def any_enabled(self) -> bool:
        return self.incremental or self.compiled or self.arena
