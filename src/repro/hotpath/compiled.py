"""Fused inference kernels over contiguous weight snapshots.

The training-grade model objects pay costs inference never needs: per-call
allocation of every intermediate, ``_StepCache`` bookkeeping for BPTT,
backward-state stashes in every ``Dense``/``ReLU``. A :class:`CompiledModel`
snapshots the detector's weights into contiguous arrays of the chosen
precision and runs scoring through preallocated-buffer kernels
(``np.dot(..., out=...)`` and in-place ufuncs).

Equality contract (enforced by tests/test_hotpath.py):

- **float64** kernels mirror the seed op sequence exactly — same GEMM
  shapes, same association, same clip/exp/tanh calls — so scores compare
  equal to the uncompiled path;
- **float32** kernels trade precision for throughput; scores match the
  float64 path within the documented
  :class:`~repro.hotpath.settings.HotpathSettings` tolerances.

Weight snapshots are taken at construction: recompile after any further
training (``AnomalyDetector.fit`` drops its compiled scorer for exactly
this reason).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.slo import profiler as _profiler


def _as_dtype(dtype: str) -> np.dtype:
    if dtype not in ("float64", "float32"):
        raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
    return np.dtype(dtype)


def _sigmoid_inplace(buf: np.ndarray) -> None:
    """In-place ``1 / (1 + exp(-clip(x, -60, 60)))`` — the seed's sigmoid."""
    np.clip(buf, -60, 60, out=buf)
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.divide(1.0, buf, out=buf)


class _DenseWeights:
    """One Dense layer's weights, contiguous in the kernel dtype."""

    __slots__ = ("w", "b")

    def __init__(self, layer, dtype: np.dtype) -> None:
        self.w = np.ascontiguousarray(layer.W.value, dtype=dtype)
        self.b = np.ascontiguousarray(layer.b.value, dtype=dtype)


class CompiledAutoencoder:
    """Fused Dense+ReLU chain scoring windows like ``AutoencoderDetector``."""

    def __init__(self, detector, dtype: str = "float32") -> None:
        from repro.ml.layers import Dense, ReLU  # local: avoid cycle at import

        self.dtype = _as_dtype(dtype)
        self.window = detector.window
        self.feature_dim = detector.feature_dim
        self.aggregate = detector.aggregate
        self.input_dim = detector.model.input_dim
        # (weights, relu_after) per Dense layer, in forward order.
        self._chain: list[tuple[_DenseWeights, bool]] = []
        layers = detector.model.model.layers
        for i, layer in enumerate(layers):
            if isinstance(layer, Dense):
                relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
                self._chain.append((_DenseWeights(layer, self.dtype), relu))
            elif not isinstance(layer, ReLU):
                raise TypeError(f"unsupported autoencoder layer {type(layer).__name__}")
        self._capacity = 0
        self._buffers: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._input: Optional[np.ndarray] = None
        self._diff: Optional[np.ndarray] = None
        self._slot: Optional[np.ndarray] = None

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        cap = max(n, self._capacity * 2, 16)
        self._input = np.empty((cap, self.input_dim), dtype=self.dtype)
        self._buffers = [
            np.empty((cap, weights.b.shape[0]), dtype=self.dtype)
            for weights, _ in self._chain
        ]
        self._masks = [
            np.empty((cap, weights.b.shape[0]), dtype=bool)
            for weights, _ in self._chain
        ]
        self._diff = np.empty((cap, self.input_dim), dtype=self.dtype)
        self._slot = np.empty((cap, self.window), dtype=self.dtype)
        self._capacity = cap

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Anomaly score per window — ``AutoencoderDetector.scores`` fused."""
        windows = np.asarray(windows)
        n = windows.shape[0]
        if n == 0:
            return np.zeros(0)
        self._ensure_capacity(n)
        x = self._input[:n]
        np.copyto(x, windows, casting="unsafe")
        mirror = self.dtype == np.float64
        out = x
        for (weights, relu), buf, mask in zip(self._chain, self._buffers, self._masks):
            layer_out = buf[:n]
            np.dot(out, weights.w, out=layer_out)
            layer_out += weights.b
            if relu:
                if mirror:
                    # x * (x > 0): the seed ReLU's exact expression (keeps
                    # the sign of -0.0, so float64 stays bit-identical).
                    np.greater(layer_out, 0, out=mask[:n])
                    layer_out *= mask[:n]
                else:
                    np.maximum(layer_out, 0, out=layer_out)
            out = layer_out
        diff = self._diff[:n]
        np.subtract(out, x, out=diff)
        np.multiply(diff, diff, out=diff)
        shaped = diff.reshape(n, self.window, self.feature_dim)
        if self.aggregate == "mean":
            return np.asarray(np.mean(diff, axis=1), dtype=np.float64)
        slot = self._slot[:n]
        np.mean(shaped, axis=2, out=slot)
        return np.asarray(slot.max(axis=1), dtype=np.float64)


class CompiledLstm:
    """Fused LSTM gate kernels: batch window scoring + the O(1) step.

    The four gate matmuls run as two GEMMs into one preallocated ``[*, 4H]``
    buffer; gate activations are in-place ufuncs on its quarter views. No
    ``_StepCache`` objects, no per-step allocation.
    """

    def __init__(self, model, dtype: str = "float32") -> None:
        self.dtype = _as_dtype(dtype)
        self.input_dim = model.input_dim
        self.hidden_dim = model.hidden_dim
        self.output_dim = model.output_dim
        hd = self.hidden_dim
        # Snapshot with the gate columns permuted [i, f, g, o] -> [i, f, o, g]
        # so the three sigmoid gates are one contiguous block: one fused
        # sigmoid call instead of three. Each GEMM output column is the dot
        # product of its own weight column alone, so permuting columns
        # leaves every value bit-identical (asserted by the equality tests).
        perm = np.concatenate(
            [np.arange(0, 2 * hd), np.arange(3 * hd, 4 * hd), np.arange(2 * hd, 3 * hd)]
        )
        self.wx = np.ascontiguousarray(model.Wx.value[:, perm], dtype=self.dtype)
        self.wh = np.ascontiguousarray(model.Wh.value[:, perm], dtype=self.dtype)
        self.b = np.ascontiguousarray(model.b.value[perm], dtype=self.dtype)
        self.head = _DenseWeights(model.head, self.dtype)
        # Batch buffers (windows scoring), grown on demand.
        self._capacity = 0
        self._steps = 0
        self._bufs: dict[str, np.ndarray] = {}
        # Single-step buffers (incremental scoring), batch == 1.
        h4 = 4 * hd
        self._z1 = np.empty((1, h4), dtype=self.dtype)
        self._z2 = np.empty((1, h4), dtype=self.dtype)
        self._gtmp = np.empty((1, hd), dtype=self.dtype)
        self._x1 = np.empty((1, self.input_dim), dtype=self.dtype)
        self._pred1 = np.empty((1, self.output_dim), dtype=self.dtype)
        self._diff1 = np.empty((1, self.output_dim), dtype=self.dtype)

    # -- O(1) incremental step --------------------------------------------------

    def new_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Fresh per-session (hidden, cell) state."""
        h = np.zeros((1, self.hidden_dim), dtype=self.dtype)
        c = np.zeros((1, self.hidden_dim), dtype=self.dtype)
        return h, c

    def step(self, row: np.ndarray, h: np.ndarray, c: np.ndarray) -> None:
        """One fused LSTM step; updates ``h``/``c`` in place.

        Mirrors the seed per-step ops exactly: in float64 the resulting
        states are bit-identical to ``LstmPredictor.forward``'s recursion.
        """
        hd = self.hidden_dim
        x = self._x1
        np.copyto(x[0], row, casting="unsafe")
        z = self._z1
        np.dot(x, self.wx, out=z)
        np.dot(h, self.wh, out=self._z2)
        z += self._z2
        z += self.b
        # Permuted layout: [i | f | o] sigmoid block, then g.
        i = z[:, :hd]
        f = z[:, hd : 2 * hd]
        o = z[:, 2 * hd : 3 * hd]
        g = z[:, 3 * hd :]
        _sigmoid_inplace(z[:, : 3 * hd])
        np.tanh(g, out=g)
        # c = f * c + i * g
        np.multiply(f, c, out=c)
        np.multiply(i, g, out=self._gtmp)
        c += self._gtmp
        # h = o * tanh(c)
        np.tanh(c, out=self._gtmp)
        np.multiply(o, self._gtmp, out=h)

    def predict(self, h: np.ndarray) -> np.ndarray:
        """Next-entry prediction from a carried state (``[1, output_dim]``).

        Returns an internal buffer — consume before the next call.
        """
        np.dot(h, self.head.w, out=self._pred1)
        self._pred1 += self.head.b
        return self._pred1

    def step_error(self, h: np.ndarray, target_row: np.ndarray) -> float:
        """Prediction error of ``target_row`` given carried state ``h``."""
        pred = self.predict(h)
        diff = self._diff1
        np.copyto(diff[0], target_row, casting="unsafe")
        np.subtract(pred, diff, out=diff)
        np.multiply(diff, diff, out=diff)
        return float(np.mean(diff))

    # -- batch window scoring ----------------------------------------------------

    def _ensure_capacity(self, n: int, steps: int) -> None:
        if n <= self._capacity and steps == self._steps:
            return
        cap = max(n, self._capacity * 2 if steps == self._steps else n, 16)
        hd, h4 = self.hidden_dim, 4 * self.hidden_dim
        self._bufs = {
            "x": np.empty((cap, steps, self.input_dim), dtype=self.dtype),
            "z": np.empty((cap, h4), dtype=self.dtype),
            "zh": np.empty((cap, h4), dtype=self.dtype),
            "h": np.empty((cap, hd), dtype=self.dtype),
            "c": np.empty((cap, hd), dtype=self.dtype),
            "tmp": np.empty((cap, hd), dtype=self.dtype),
            "hs": np.empty((cap, steps, hd), dtype=self.dtype),
            "pred": np.empty((cap * steps, self.output_dim), dtype=self.dtype),
            "err": np.empty((cap, steps), dtype=self.dtype),
        }
        self._capacity = cap
        self._steps = steps

    def window_scores(self, windows: np.ndarray, window: int) -> np.ndarray:
        """``LstmDetector.scores`` fused: worst next-step error per window."""
        windows = np.asarray(windows)
        n = windows.shape[0]
        if n == 0:
            return np.zeros(0)
        steps = window - 1
        self._ensure_capacity(n, steps)
        b = self._bufs
        hd = self.hidden_dim
        # Unflatten into the kernel dtype once; inputs are entries 0..N-2,
        # targets entries 1..N-1 (the seed's _split).
        shaped = windows.reshape(n, window, self.input_dim)
        xbuf = b["x"][:n]
        np.copyto(xbuf, shaped[:, :-1, :], casting="unsafe")
        h = b["h"][:n]
        c = b["c"][:n]
        h.fill(0.0)
        c.fill(0.0)
        z = b["z"][:n]
        zh = b["zh"][:n]
        tmp = b["tmp"][:n]
        hs = b["hs"][:n]
        for t in range(steps):
            np.dot(xbuf[:, t, :], self.wx, out=z)
            np.dot(h, self.wh, out=zh)
            z += zh
            z += self.b
            # Permuted layout: [i | f | o] sigmoid block, then g.
            i, f, o, g = (
                z[:, :hd],
                z[:, hd : 2 * hd],
                z[:, 2 * hd : 3 * hd],
                z[:, 3 * hd :],
            )
            _sigmoid_inplace(z[:, : 3 * hd])
            np.tanh(g, out=g)
            np.multiply(f, c, out=c)
            np.multiply(i, g, out=tmp)
            c += tmp
            np.tanh(c, out=tmp)
            np.multiply(o, tmp, out=h)
            hs[:, t, :] = h
        pred = b["pred"][: n * steps]
        np.dot(hs.reshape(n * steps, hd), self.head.w, out=pred)
        pred += self.head.b
        # Per-step errors against the targets, then the window max.
        shaped_pred = pred.reshape(n, steps, self.output_dim)
        targets = xbuf  # reuse: overwrite inputs with the diff
        np.copyto(targets, shaped[:, 1:, :], casting="unsafe")
        np.subtract(shaped_pred, targets, out=shaped_pred)
        np.multiply(shaped_pred, shaped_pred, out=shaped_pred)
        err = b["err"][:n]
        np.mean(shaped_pred, axis=2, out=err)
        return np.asarray(err.max(axis=1), dtype=np.float64)


class CompiledModel:
    """Detector-agnostic fused scorer: ``scores(windows)`` like the seed."""

    def __init__(self, detector, dtype: str = "float32") -> None:
        from repro.ml.detector import AutoencoderDetector, LstmDetector

        self.dtype = dtype
        self.window = detector.window
        if isinstance(detector, AutoencoderDetector):
            self._impl = CompiledAutoencoder(detector, dtype)
            self._kind = "autoencoder"
        elif isinstance(detector, LstmDetector):
            self._impl = CompiledLstm(detector.model, dtype)
            self._kind = "lstm"
        else:
            raise TypeError(f"cannot compile {type(detector).__name__}")
        self._calls_counter = None
        self._windows_counter = None

    def attach_metrics(self, metrics) -> None:
        """Wire repro.obs counters (one series per model kind + dtype)."""
        labels = {"model": self._kind, "dtype": self.dtype}
        self._calls_counter = metrics.counter(
            "hotpath.compiled_calls_total",
            labels=labels,
            help="fused-kernel scoring calls",
        )
        self._windows_counter = metrics.counter(
            "hotpath.compiled_windows_total",
            labels=labels,
            help="windows scored through fused kernels",
        )

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def lstm(self) -> CompiledLstm:
        if self._kind != "lstm":
            raise TypeError("not an LSTM compiled model")
        return self._impl

    def scores(self, windows: np.ndarray) -> np.ndarray:
        counter = self._calls_counter
        if counter is not None:
            counter.value += 1
            self._windows_counter.value += len(windows)
        prof = _profiler.CURRENT
        if prof is not None:
            start = time.perf_counter()
            result = self._scores(windows)
            prof.record("hotpath.compiled.scores", time.perf_counter() - start)
            return result
        return self._scores(windows)

    def _scores(self, windows: np.ndarray) -> np.ndarray:
        if self._kind == "autoencoder":
            return self._impl.scores(windows)
        return self._impl.window_scores(windows, self.window)


def compile_detector(detector, dtype: str = "float32") -> CompiledModel:
    """Snapshot a fitted detector's weights into fused kernels."""
    return CompiledModel(detector, dtype)
