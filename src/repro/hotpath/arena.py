"""Per-session row arenas: zero-copy window assembly for MobiWatch.

The seed keeps every featurized record in a Python list and builds each
scoring window with ``np.stack([rows[i] for i in chosen])`` plus a padding
allocation for short sessions — two allocations and a Python loop per
score. The arena instead appends each session's rows into one growing 2D
buffer whose first ``window - 1`` rows are zeros, so *the last window of
any session is always a single contiguous slice*:

- a session with ``L >= window`` records: the slice is its last ``window``
  rows;
- a shorter session: the slice naturally left-pads with the zero prefix —
  exactly the seed's padded window, with no branch and no copy.

Appends never mutate previously returned slices (they write one row past
the last view), and capacity growth reallocates, leaving old views valid
on the retired buffer — so views handed to a deferred scorer (e.g. the
inference pool) stay correct.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class SessionWindowArena:
    """Growing per-session row buffers with a zero left-pad prefix."""

    def __init__(self, dim: int, window: int, dtype=np.float32, initial_rows: int = 8) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.dim = dim
        self.window = window
        self.dtype = np.dtype(dtype)
        self._initial = max(initial_rows, window)
        # session id -> [buffer, record_count]; buffer rows [0, window-1)
        # are the permanent zero pad, records start at index window - 1.
        self._sessions: Dict[int, list] = {}

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def session_ids(self) -> list:
        return list(self._sessions)

    def _entry(self, session_id: int) -> list:
        entry = self._sessions.get(session_id)
        if entry is None:
            buf = np.zeros((self.window - 1 + self._initial, self.dim), dtype=self.dtype)
            entry = self._sessions[session_id] = [buf, 0]
        return entry

    def append(self, session_id: int, row: np.ndarray) -> int:
        """Append one feature row; returns the session's new record count."""
        entry = self._entry(session_id)
        buf, count = entry
        index = self.window - 1 + count
        if index >= buf.shape[0]:
            # Double capacity; np.zeros keeps the pad prefix semantics for
            # free and old views stay valid on the retired buffer.
            grown = np.zeros((buf.shape[0] * 2, self.dim), dtype=self.dtype)
            grown[: buf.shape[0]] = buf
            entry[0] = buf = grown
        buf[index] = row
        entry[1] = count + 1
        return entry[1]

    def session_length(self, session_id: int) -> int:
        entry = self._sessions.get(session_id)
        return entry[1] if entry is not None else 0

    def window_rows(self, session_id: int) -> np.ndarray:
        """The session's last-window slice ``[window, dim]`` (a view).

        Left-padded with zeros while the session is shorter than the
        window — bit-identical to the seed's padded ``np.stack`` assembly.
        """
        entry = self._sessions.get(session_id)
        if entry is None or entry[1] == 0:
            raise KeyError(f"no rows for session {session_id}")
        buf, count = entry
        start = count - 1
        return buf[start : start + self.window]

    def release(self, session_id: int) -> bool:
        """Drop one session's buffer (eviction). Old views stay valid.

        Returns whether the session held rows. Previously handed-out views
        keep the retired buffer alive via refcount, so deferred scorers are
        unaffected; a re-appearing session starts a fresh buffer.
        """
        return self._sessions.pop(session_id, None) is not None

    def session_rows(self, session_id: int) -> np.ndarray:
        """Every row of one session ``[L, dim]`` (a view, no pad)."""
        entry = self._sessions.get(session_id)
        if entry is None:
            raise KeyError(f"no rows for session {session_id}")
        buf, count = entry
        return buf[self.window - 1 : self.window - 1 + count]

    def stats(self) -> Tuple[int, int]:
        """(sessions, total allocated rows) — capacity accounting."""
        return len(self._sessions), sum(e[0].shape[0] for e in self._sessions.values())
