"""Scale bench: sustained ingest+scoring throughput under the near-RT budget.

Drives the real scaling substrate — :class:`~repro.scale.batcher.BoundedBatcher`
-> :class:`~repro.scale.sharded_sdl.ShardedSdl` ->
:class:`~repro.scale.pool.InferencePool` with a real trained detector and
real MobiFlow featurization — inside the discrete-event simulator, and
answers the capacity-planning question: *what telemetry rate can N shards
and N inference workers sustain while every record's capture -> verdict
latency stays inside the 1 s near-RT control budget?*

Per shard count the harness ramps the offered record rate geometrically
and keeps the highest rate whose trial finishes with **zero drops, every
record scored, and max latency <= budget** — the standard max-throughput-
under-SLO methodology. Shards and workers are modeled as servers with a
per-operation service time (defaults in the neighbourhood of a Redis SET
and a small-window inference), so capacity grows with the shard count the
way the OSC RIC's clustered SDL scales, while the vectorized inference
pool delivers a genuine wall-clock win on top.

A separate fault-injection run kills one shard mid-run (replication >= 2)
and verifies that **zero acknowledged writes are lost** and the pipeline
keeps producing verdicts at degraded throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.detector import AnomalyDetector, AutoencoderDetector
from repro.scale.batcher import DROP_OLDEST, BoundedBatcher
from repro.scale.pool import InferencePool
from repro.scale.sharded_sdl import ShardedSdl
from repro.sim.engine import Simulator
from repro.telemetry.features import FeatureSpec
from repro.telemetry.mobiflow import MobiFlowRecord

TELEMETRY_NS = "xsec.mobiflow"


@dataclass
class ScaleBenchConfig:
    """Sweep shape and the modeled substrate costs."""

    shards: tuple = (1, 2, 4, 8)
    replication: int = 1  # throughput sweep; the fault run uses >= 2
    workers: Optional[int] = None  # inference workers per point; None = shard count
    duration_s: float = 2.0
    sessions: int = 256
    window: int = 6
    # Modeled service times: one SDL shard write (~a Redis SET over
    # loopback) and one window's share of a vectorized inference call.
    sdl_service_time_s: float = 400e-6
    pool_service_time_s: float = 120e-6
    flush_records: int = 64
    flush_interval_s: float = 0.02
    capacity: int = 32768
    budget_s: float = 1.0
    # Detector size: the default is deliberately small (sweep speed); the
    # runtime soak raises it so inference compute dominates transport.
    hidden_dim: int = 32
    latent_dim: int = 8
    start_rate: float = 500.0  # records per simulated second
    rate_step: float = 1.6
    max_rate: float = 64000.0
    bank_records: int = 1024
    train_epochs: int = 2
    # Build the feature bank with the repro.genfast one-pass vectorized
    # encoder instead of per-record StreamingEncoder.push. Value-identical
    # (the vectorized encoder is bit-for-bit equal to the streaming one);
    # the runtime soak flips this on for large banks.
    vectorized_features: bool = False
    seed: int = 9
    # Fault-injection run (kill one shard mid-run, replication >= 2).
    fault_shards: int = 4
    fault_replication: int = 2
    fault_kill_at_s: float = 0.8
    fault_load_fraction: float = 0.4  # of the fault topology's capacity


@dataclass
class TrialResult:
    """One (shards, workers, rate) run of the substrate."""

    offered_rate: float
    offered: int
    completed: int
    dropped: int
    makespan_s: float
    max_latency_s: float
    p99_latency_s: float
    wall_s: float

    @property
    def throughput(self) -> float:
        """Records fully processed per simulated second."""
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    def ok(self, budget_s: float) -> bool:
        return (
            self.dropped == 0
            and self.completed == self.offered
            and self.max_latency_s <= budget_s
        )


@dataclass
class ScaleBenchPoint:
    shards: int
    workers: int
    sustained: TrialResult
    trials: int

    def row(self) -> list:
        t = self.sustained
        return [
            str(self.shards),
            str(self.workers),
            f"{t.offered_rate:.0f}/s",
            f"{t.throughput:.0f}/s",
            f"{1000 * t.p99_latency_s:.1f}ms",
            f"{1000 * t.max_latency_s:.1f}ms",
            str(t.dropped),
            f"{t.wall_s:.2f}s",
        ]


@dataclass
class FaultResult:
    shards: int
    replication: int
    offered_rate: float
    records: int
    completed: int
    lost_acknowledged: int
    failovers: int
    read_repairs: int
    max_latency_s: float

    def summary(self) -> str:
        return (
            f"fault injection: killed 1/{self.shards} shards mid-run "
            f"(replication={self.replication}) at {self.offered_rate:.0f} rec/s -> "
            f"{self.completed}/{self.records} verdicts, "
            f"{self.lost_acknowledged} acknowledged writes lost, "
            f"{self.failovers} failovers, {self.read_repairs} read repairs, "
            f"max latency {1000 * self.max_latency_s:.1f}ms"
        )


@dataclass
class ScaleBenchResult:
    config: ScaleBenchConfig
    points: List[ScaleBenchPoint]
    fault: Optional[FaultResult] = None
    workload_wall_s: float = 0.0

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        text = render_table(
            ["Shards", "Workers", "Sustained", "Throughput", "p99Lat", "MaxLat", "Drops", "Wall"],
            [point.row() for point in self.points],
            title=(
                "scale-bench — max sustained ingest+scoring rate with every "
                f"capture->verdict latency <= {self.config.budget_s:g}s"
            ),
        )
        if self.fault is not None:
            text += "\n" + self.fault.summary()
        return text

    def speedup(self) -> float:
        """Sustained-throughput ratio of the largest vs the smallest point."""
        if len(self.points) < 2:
            return 1.0
        return self.points[-1].sustained.throughput / max(
            self.points[0].sustained.throughput, 1e-9
        )

    def check(self, min_speedup: Optional[float] = None) -> List[str]:
        """Acceptance checks; returns a list of violations (empty = pass)."""
        violations: list[str] = []
        budget = self.config.budget_s
        previous = None
        for point in self.points:
            trial = point.sustained
            if trial.max_latency_s > budget:
                violations.append(
                    f"{point.shards} shards: max latency {trial.max_latency_s:.3f}s "
                    f"breaks the {budget:g}s near-RT budget"
                )
            if trial.dropped:
                violations.append(f"{point.shards} shards: {trial.dropped} drops")
            if previous is not None and trial.throughput < 0.98 * previous:
                violations.append(
                    f"throughput not monotonic: {point.shards} shards sustained "
                    f"{trial.throughput:.0f}/s < previous {previous:.0f}/s"
                )
            previous = trial.throughput
        if min_speedup is None:
            span = self.points[-1].shards / self.points[0].shards if self.points else 1
            min_speedup = 3.0 if span >= 8 else (1.2 if span >= 2 else 1.0)
        if len(self.points) >= 2 and self.speedup() < min_speedup:
            violations.append(
                f"speedup {self.speedup():.2f}x from {self.points[0].shards} -> "
                f"{self.points[-1].shards} shards is below {min_speedup:g}x"
            )
        if self.fault is not None:
            if self.fault.lost_acknowledged:
                violations.append(
                    f"fault run lost {self.fault.lost_acknowledged} acknowledged writes"
                )
            if self.fault.completed < self.fault.records:
                violations.append(
                    f"fault run stalled: {self.fault.completed}/{self.fault.records} verdicts"
                )
        return violations

    def to_dict(self) -> dict:
        return {
            "points": [
                {
                    "shards": p.shards,
                    "workers": p.workers,
                    "sustained_rate": p.sustained.offered_rate,
                    "throughput": p.sustained.throughput,
                    "p99_latency_s": p.sustained.p99_latency_s,
                    "max_latency_s": p.sustained.max_latency_s,
                    "dropped": p.sustained.dropped,
                    "trials": p.trials,
                    "wall_s": p.sustained.wall_s,
                }
                for p in self.points
            ],
            "speedup": self.speedup(),
            "fault": None
            if self.fault is None
            else {
                "shards": self.fault.shards,
                "replication": self.fault.replication,
                "offered_rate": self.fault.offered_rate,
                "records": self.fault.records,
                "completed": self.fault.completed,
                "lost_acknowledged": self.fault.lost_acknowledged,
                "failovers": self.fault.failovers,
                "read_repairs": self.fault.read_repairs,
                "max_latency_s": self.fault.max_latency_s,
            },
            "violations": self.check(),
        }


# -- workload -----------------------------------------------------------------


def build_workload(
    config: ScaleBenchConfig,
) -> tuple[list, AnomalyDetector]:
    """Featurized window bank + a small trained detector.

    Synthesizes benign-shaped MobiFlow session streams, featurizes them
    with the real :class:`StreamingEncoder`, flattens per-session sliding
    windows exactly like MobiWatch's live path, and trains a compact
    autoencoder so pool scoring exercises the production inference code.
    """
    spec = FeatureSpec()
    window = config.window
    # A benign-looking registration flow, cycled per session.
    flow = (
        ("RRCSetupRequest", "RRC", "UL"),
        ("RRCSetup", "RRC", "DL"),
        ("RRCSetupComplete", "RRC", "UL"),
        ("RegistrationRequest", "NAS", "UL"),
        ("AuthenticationRequest", "NAS", "DL"),
        ("AuthenticationResponse", "NAS", "UL"),
        ("NASSecurityModeCommand", "NAS", "DL"),
        ("NASSecurityModeComplete", "NAS", "UL"),
        ("RegistrationAccept", "NAS", "DL"),
        ("RRCRelease", "RRC", "DL"),
    )
    def field_stream():
        for index in range(config.bank_records):
            session_id = 1 + index % config.sessions
            step = index // config.sessions
            msg, protocol, direction = flow[step % len(flow)]
            yield index, session_id, msg, protocol, direction

    if config.vectorized_features:
        # One-pass fast lane: columnar append (no MobiFlowRecord objects)
        # plus the vectorized encoder — same rows, bit for bit.
        from repro.telemetry.batch import MobiFlowBatchBuilder
        from repro.telemetry.vectorized import encode_batch

        builder = MobiFlowBatchBuilder()
        for index, session_id, msg, protocol, direction in field_stream():
            builder.append_fields(
                timestamp=index * 0.01,
                msg=msg,
                protocol=protocol,
                direction=direction,
                session_id=session_id,
                rnti=0x4000 + session_id,
                s_tmsi=0x00C0_0000 + session_id,
                cipher_alg=2,
                integrity_alg=2,
                establishment_cause="mo-Signalling" if msg == "RRCSetupRequest" else None,
            )
        per_record = encode_batch(spec, builder.build())

        def row_for(index: int, session_id: int) -> np.ndarray:
            return per_record[index]
    else:
        encoder = spec.streaming_encoder()

        def row_for(index: int, session_id: int) -> np.ndarray:
            step = index // config.sessions
            msg, protocol, direction = flow[step % len(flow)]
            record = MobiFlowRecord(
                timestamp=index * 0.01,
                msg=msg,
                protocol=protocol,
                direction=direction,
                session_id=session_id,
                rnti=0x4000 + session_id,
                s_tmsi=0x00C0_0000 + session_id,
                cipher_alg=2,
                integrity_alg=2,
                establishment_cause="mo-Signalling" if msg == "RRCSetupRequest" else None,
            )
            return encoder.push(record)

    session_rows: dict[int, list[np.ndarray]] = {}
    bank: list[tuple[int, np.ndarray]] = []
    for index in range(config.bank_records):
        session_id = 1 + index % config.sessions
        row = row_for(index, session_id)
        rows = session_rows.setdefault(session_id, [])
        rows.append(row)
        chosen = rows[-window:]
        stacked = np.stack(chosen)
        if len(chosen) < window:
            padded = np.zeros((window, spec.dim), dtype=stacked.dtype)
            padded[window - len(chosen) :] = stacked
            stacked = padded
        bank.append((session_id, stacked.reshape(-1)))
    detector = AutoencoderDetector(
        window=window,
        feature_dim=spec.dim,
        hidden_dim=config.hidden_dim,
        latent_dim=config.latent_dim,
        seed=config.seed,
    )
    detector.fit(
        np.stack([vector for _, vector in bank]),
        epochs=config.train_epochs,
        lr=2e-3,
    )
    return bank, detector


# -- trial driver ---------------------------------------------------------------


def _run_trial(
    config: ScaleBenchConfig,
    shards: int,
    workers: int,
    replication: int,
    rate: float,
    bank: list,
    detector: AnomalyDetector,
    kill_at_s: Optional[float] = None,
) -> tuple[TrialResult, ShardedSdl, list]:
    sim = Simulator(seed=config.seed)
    metrics = sim.obs.metrics
    sdl = ShardedSdl(
        shards=shards,
        replication=min(replication, shards),
        service_time_s=config.sdl_service_time_s,
        metrics=metrics,
        clock=lambda: sim.now,
    )
    pool = InferencePool(
        detector.scores,
        workers=workers,
        batch_windows=config.flush_records,
        service_time_per_window_s=config.pool_service_time_s,
        metrics=metrics,
        clock=lambda: sim.now,
        name="scale-bench",
    )
    latencies: list[float] = []
    acked: list[tuple[str, str]] = []  # (key, shard_key) acknowledged by the SDL
    makespan = [0.0]

    def deliver(batch: list) -> None:
        for capture_ts, session_id, vector, index in batch:
            shard_key = str(session_id)
            done_sdl = sdl.set(
                TELEMETRY_NS,
                f"{index:09d}",
                {"t": capture_ts, "s": session_id},
                shard_key=shard_key,
            )
            acked.append((f"{index:09d}", shard_key))

            def on_score(score: float, done_pool: float, c=capture_ts, s=done_sdl) -> None:
                done = done_pool if done_pool > s else s
                latencies.append(done - c)
                if done > makespan[0]:
                    makespan[0] = done

            pool.submit(session_id, vector, on_score)
        pool.flush()

    batcher = BoundedBatcher(
        deliver,
        capacity=config.capacity,
        flush_records=config.flush_records,
        flush_interval_s=config.flush_interval_s,
        drop_policy=DROP_OLDEST,
        scheduler=sim.schedule,
        clock=lambda: sim.now,
        metrics=metrics,
        name="scale-bench",
    )
    n_records = max(1, int(rate * config.duration_s))
    bank_size = len(bank)
    for j in range(n_records):
        arrival = j / rate
        session_id, vector = bank[j % bank_size]
        sim.schedule_at(
            arrival,
            lambda item=(arrival, session_id, vector, j): batcher.offer(item),
            name="scale-bench.offer",
        )
    if kill_at_s is not None:
        sim.schedule_at(kill_at_s, lambda: sdl.kill_shard(0), name="scale-bench.kill")
    sim.schedule_at(
        config.duration_s + config.flush_interval_s,
        lambda: batcher.close(),
        name="scale-bench.close",
    )
    wall_start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - wall_start
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] if ordered else 0.0
    trial = TrialResult(
        offered_rate=rate,
        offered=n_records,
        completed=len(latencies),
        dropped=batcher.dropped,
        makespan_s=makespan[0],
        max_latency_s=ordered[-1] if ordered else 0.0,
        p99_latency_s=p99,
        wall_s=wall,
    )
    return trial, sdl, acked


# -- sweep -----------------------------------------------------------------------


def run_scale_bench(config: Optional[ScaleBenchConfig] = None) -> ScaleBenchResult:
    """Sweep shard counts; per point keep the max rate inside the budget."""
    config = config or ScaleBenchConfig()
    wall_start = time.perf_counter()
    bank, detector = build_workload(config)
    points: list[ScaleBenchPoint] = []
    warm_rate = config.start_rate
    for shards in config.shards:
        workers = config.workers or shards
        rate = warm_rate
        best: Optional[TrialResult] = None
        trials = 0
        while rate <= config.max_rate:
            trial, _, _ = _run_trial(
                config, shards, workers, config.replication, rate, bank, detector
            )
            trials += 1
            if not trial.ok(config.budget_s):
                break
            best = trial
            rate *= config.rate_step
        while best is None and rate > 1.0:
            # The warm start overshot this point's capacity; back off.
            rate /= config.rate_step
            trial, _, _ = _run_trial(
                config, shards, workers, config.replication, rate, bank, detector
            )
            trials += 1
            if trial.ok(config.budget_s):
                best = trial
        if best is None:
            raise RuntimeError(f"no sustainable rate found for {shards} shards")
        points.append(
            ScaleBenchPoint(shards=shards, workers=workers, sustained=best, trials=trials)
        )
        warm_rate = best.offered_rate
    fault = run_fault_injection(config, bank, detector)
    return ScaleBenchResult(
        config=config,
        points=points,
        fault=fault,
        workload_wall_s=time.perf_counter() - wall_start,
    )


def run_fault_injection(
    config: ScaleBenchConfig, bank: Optional[list] = None, detector: Optional[AnomalyDetector] = None
) -> FaultResult:
    """Kill one shard mid-run; verify zero acknowledged writes are lost."""
    if bank is None or detector is None:
        bank, detector = build_workload(config)
    shards = config.fault_shards
    replication = min(config.fault_replication, shards)
    if config.sdl_service_time_s > 0:
        capacity = shards / (replication * config.sdl_service_time_s)
    else:
        capacity = 4000.0
    rate = max(1.0, config.fault_load_fraction * capacity)
    trial, sdl, acked = _run_trial(
        config,
        shards,
        config.workers or shards,
        replication,
        rate,
        bank,
        detector,
        kill_at_s=config.fault_kill_at_s,
    )
    lost = sum(
        1
        for key, shard_key in acked
        if sdl.get(TELEMETRY_NS, key, shard_key=shard_key) is None
    )
    health = sdl.health()
    return FaultResult(
        shards=shards,
        replication=replication,
        offered_rate=rate,
        records=trial.offered,
        completed=trial.completed,
        lost_acknowledged=lost,
        failovers=health["failovers"],
        read_repairs=health["read_repairs"],
        max_latency_s=trial.max_latency_s,
    )


def smoke_config() -> ScaleBenchConfig:
    """Small sweep for CI: seconds of simulated traffic, 1/2/4 shards."""
    return ScaleBenchConfig(
        shards=(1, 2, 4),
        duration_s=1.0,
        bank_records=512,
        sessions=128,
        max_rate=24000.0,
        fault_shards=2,
        fault_kill_at_s=0.4,
    )
