"""repro.scale — horizontal-scaling substrate for the detection pipeline.

The near-RT RIC of the seed stores all MobiFlow telemetry in a single
Shared Data Layer and scores one session window per detector call, which
caps the reproduction far below fleet scale. This package supplies the
four pieces that remove those ceilings, mirroring how the OSC RIC scales
its own platform services:

- :mod:`.hashring` — consistent-hash ring (virtual nodes, deterministic)
  keyed on RNTI/UE/session ids;
- :mod:`.sharded_sdl` — the ``SharedDataLayer`` contract over N shard
  instances with per-shard replication, failover + read repair, and a
  fault-injection hook (the Redis-cluster SDL topology);
- :mod:`.batcher` — bounded-queue telemetry ingest batching with counted,
  never-silent drops;
- :mod:`.pool` — batched inference: many session windows per vectorized
  detector call, optionally sharded across workers by UE;
- :mod:`.bench` — the ``scale-bench`` harness: sweeps shard/worker counts
  and measures sustained throughput under the 1 s near-RT budget, plus a
  kill-a-shard fault-injection run;
- :mod:`.settings` — config knobs; all defaults preserve the seed's
  single-node behaviour bit-for-bit.

Everything is wired behind :class:`~repro.scale.settings.ScaleSettings`
flags on :class:`~repro.core.config.XsecConfig` — see ``docs/SCALING.md``.
"""

from repro.scale.batcher import DROP_NEWEST, DROP_OLDEST, BoundedBatcher
from repro.scale.hashring import ConsistentHashRing, HashRingError, stable_hash
from repro.scale.pool import InferencePool
from repro.scale.settings import ScaleSettings
from repro.scale.sharded_sdl import ShardedSdl, ShardUnavailableError

__all__ = [
    "BoundedBatcher",
    "ConsistentHashRing",
    "DROP_NEWEST",
    "DROP_OLDEST",
    "HashRingError",
    "InferencePool",
    "ScaleSettings",
    "ShardedSdl",
    "ShardUnavailableError",
    "stable_hash",
]
