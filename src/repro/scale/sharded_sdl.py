"""Sharded Shared Data Layer: the SDL contract over N shard instances.

The OSC near-RT RIC runs its SDL on a clustered Redis because a single
node cannot absorb fleet-scale E2 indication rates. ``ShardedSdl``
reproduces that topology in-process: it presents the exact
:class:`~repro.oran.sdl.SharedDataLayer` contract (``set``/``get``/
``watch``, values stored as wire-encoded bytes) while placing every key on
``replication`` shards chosen by a consistent-hash ring.

Semantics:

- **writes** go to every *alive* replica of the key; a write is
  acknowledged iff at least one replica stored it, so killing a shard
  mid-run never loses acknowledged data while ``replication >= 2``;
- **reads** walk the replica list in ring order; a dead primary is
  *failed over* (counted) and an alive replica that missed a write (it
  was dead at write time) is *read-repaired* from a fresher replica
  (counted) — the lazy anti-entropy a Redis cluster performs on failover;
- **fault injection** — :meth:`kill_shard` / :meth:`revive_shard` flip a
  shard's availability so failover and repair paths can be exercised;
- **time model** (optional) — each shard is a server with a configurable
  per-write service time; ``set`` returns the simulated completion time so
  the scale bench can measure queueing delay and per-shard saturation.
  With ``service_time_s=0`` (the default) the model is inert.

Watch callbacks fire once per logical write, are isolated from each other
(a raising watcher is counted in ``sdl.watch_errors_total``, never aborts
the write), and run only for acknowledged writes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, List, Optional

from repro import wire
from repro.obs.metrics import MetricsRegistry
from repro.scale.hashring import ConsistentHashRing
from repro.slo import profiler as _profiler

WatchCallback = Callable[[str, str, Any], None]  # (namespace, key, value)


class ShardUnavailableError(RuntimeError):
    """Raised when no alive replica can serve a write."""


class _Shard:
    """One shard instance: a namespaced byte store plus a service model."""

    __slots__ = ("name", "data", "alive", "busy_until", "writes", "reads")

    def __init__(self, name: str) -> None:
        self.name = name
        self.data: dict[str, dict[str, bytes]] = {}
        self.alive = True
        self.busy_until = 0.0
        self.writes = 0
        self.reads = 0


class ShardedSdl:
    """The ``SharedDataLayer`` contract over N shards with replication."""

    def __init__(
        self,
        shards: int = 4,
        replication: int = 1,
        *,
        vnodes: int = 128,
        service_time_s: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not 1 <= replication <= shards:
            raise ValueError(
                f"replication must be in [1, shards={shards}], got {replication}"
            )
        self.replication = replication
        self.service_time_s = service_time_s
        self._clock = clock or (lambda: 0.0)
        self._shards = {f"shard-{i}": _Shard(f"shard-{i}") for i in range(shards)}
        self._ring = ConsistentHashRing(self._shards, vnodes=vnodes)
        self._watchers: dict[str, list[WatchCallback]] = {}
        self.writes = 0
        self.reads = 0
        metrics = metrics or MetricsRegistry()
        # Same family names as the single-node SDL so dashboards carry over.
        self._writes_counter = metrics.counter("sdl.writes_total")
        self._reads_counter = metrics.counter("sdl.reads_total")
        self._value_bytes = metrics.histogram(
            "sdl.value_bytes",
            buckets=(16, 64, 256, 1024, 4096, 16384, 65536),
            help="encoded value sizes",
        )
        self._write_wall = metrics.histogram(
            "sdl.write_wall_s", help="wall-clock cost of encode+store+watch"
        )
        self._watch_errors = metrics.counter(
            "sdl.watch_errors_total", help="watch callbacks that raised"
        )
        # Shard-topology metrics.
        self._shard_writes = {
            name: metrics.counter("sdl.shard_writes_total", labels={"shard": name})
            for name in self._shards
        }
        self._shard_reads = {
            name: metrics.counter("sdl.shard_reads_total", labels={"shard": name})
            for name in self._shards
        }
        self._failovers = metrics.counter(
            "sdl.failovers_total", help="reads served with the primary shard dead"
        )
        self._read_repairs = metrics.counter(
            "sdl.read_repairs_total", help="stale replicas healed on read"
        )
        self._kills = metrics.counter(
            "sdl.shard_kills_total", help="fault injections via kill_shard"
        )
        metrics.gauge(
            "sdl.shards_alive",
            fn=lambda: sum(1 for s in self._shards.values() if s.alive),
            help="shards currently serving",
        )
        self._queue_delay = metrics.histogram(
            "sdl.shard_queue_delay_s",
            help="modeled wait for a busy shard (service-time model only)",
        )

    # -- topology -----------------------------------------------------------

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shards_alive(self) -> int:
        return sum(1 for shard in self._shards.values() if shard.alive)

    def replicas_for(self, shard_key: str) -> List[str]:
        """Replica shard names for a key, primary first (ring order)."""
        return self._ring.lookup_n(shard_key, self.replication)

    def _resolve(self, shard: "str | int") -> _Shard:
        name = f"shard-{shard}" if isinstance(shard, int) else shard
        try:
            return self._shards[name]
        except KeyError:
            raise KeyError(f"no shard named {name!r}") from None

    # -- fault injection -------------------------------------------------------

    def kill_shard(self, shard: "str | int") -> str:
        """Mark a shard dead: its data stops being readable or writable."""
        target = self._resolve(shard)
        if target.alive:
            target.alive = False
            self._kills.inc()
        return target.name

    def revive_shard(self, shard: "str | int") -> str:
        """Bring a shard back; stale keys heal lazily via read repair."""
        target = self._resolve(shard)
        target.alive = True
        return target.name

    # -- service-time model ------------------------------------------------------

    def _serve(self, shard: _Shard) -> float:
        """Advance the shard's busy horizon by one service; return completion."""
        if not self.service_time_s:
            return self._clock()
        now = self._clock()
        start = shard.busy_until if shard.busy_until > now else now
        self._queue_delay.observe(start - now)
        shard.busy_until = start + self.service_time_s
        return shard.busy_until

    # -- core KV -------------------------------------------------------------

    def set(self, namespace: str, key: str, value: Any, shard_key: Optional[str] = None) -> float:
        """Store ``value`` on every alive replica of the key.

        ``shard_key`` overrides the placement key (e.g. a UE/session id so
        one UE's telemetry stays on one shard); it defaults to
        ``namespace/key``. Returns the modeled completion time (== now when
        the service-time model is off). Raises
        :class:`ShardUnavailableError` — the write is *not* acknowledged —
        when every replica is dead.
        """
        start_wall = time.perf_counter()
        encoded = wire.encode(value)
        names = self.replicas_for(shard_key if shard_key is not None else f"{namespace}/{key}")
        alive = [self._shards[name] for name in names if self._shards[name].alive]
        if not alive:
            raise ShardUnavailableError(
                f"no alive replica for {namespace}/{key} (replicas: {names})"
            )
        completed = self._clock()
        for shard in alive:
            shard.data.setdefault(namespace, {})[key] = encoded
            shard.writes += 1
            self._shard_writes[shard.name].inc()
            done = self._serve(shard)
            if done > completed:
                completed = done
        self.writes += 1
        self._writes_counter.inc()
        self._value_bytes.observe(len(encoded))
        for callback in self._watchers.get(namespace, []):
            try:
                callback(namespace, key, value)
            except Exception:
                self._watch_errors.inc()
        elapsed = time.perf_counter() - start_wall
        self._write_wall.observe(elapsed)
        prof = _profiler.CURRENT
        if prof is not None:
            # Leaf timing via record(): the per-write cost is already
            # measured, so the profiler pays no extra perf_counter calls.
            prof.record("sdl.set", elapsed)
        return completed

    def set_many(
        self, namespace: str, pairs: list[tuple[str, Any]], shard_key: str
    ) -> float:
        """Store a batch of ``(key, value)`` pairs that share one placement
        key as **one acked write** (repro.genfast).

        One ring lookup, one liveness check, and one service-model round
        per replica cover the whole batch; values are encoded and watchers
        notified per pair exactly as ``set`` does. Raises
        :class:`ShardUnavailableError` (nothing stored) when every replica
        is dead. Returns the modeled completion time.
        """
        if not pairs:
            return self._clock()
        start_wall = time.perf_counter()
        encoded_pairs = [(key, wire.encode(value)) for key, value in pairs]
        names = self.replicas_for(shard_key)
        alive = [self._shards[name] for name in names if self._shards[name].alive]
        if not alive:
            raise ShardUnavailableError(
                f"no alive replica for {namespace} batch (replicas: {names})"
            )
        completed = self._clock()
        for shard in alive:
            ns = shard.data.setdefault(namespace, {})
            for key, encoded in encoded_pairs:
                ns[key] = encoded
            shard.writes += 1
            self._shard_writes[shard.name].inc()
            done = self._serve(shard)
            if done > completed:
                completed = done
        self.writes += 1
        self._writes_counter.inc()
        self._value_bytes.observe(sum(len(encoded) for _, encoded in encoded_pairs))
        watchers = self._watchers.get(namespace, [])
        for callback in watchers:
            for key, value in pairs:
                try:
                    callback(namespace, key, value)
                except Exception:
                    self._watch_errors.inc()
        elapsed = time.perf_counter() - start_wall
        self._write_wall.observe(elapsed)
        prof = _profiler.CURRENT
        if prof is not None:
            prof.record("sdl.set_many", elapsed)
        return completed

    def get(
        self,
        namespace: str,
        key: str,
        default: Any = None,
        shard_key: Optional[str] = None,
    ) -> Any:
        self.reads += 1
        self._reads_counter.inc()
        names = self.replicas_for(shard_key if shard_key is not None else f"{namespace}/{key}")
        behind: list[_Shard] = []  # alive replicas that missed the write
        for position, name in enumerate(names):
            shard = self._shards[name]
            if not shard.alive:
                if position == 0:
                    self._failovers.inc()
                continue
            shard.reads += 1
            self._shard_reads[name].inc()
            ns = shard.data.get(namespace)
            if ns is not None and key in ns:
                encoded = ns[key]
                for stale in behind:
                    stale.data.setdefault(namespace, {})[key] = encoded
                    self._read_repairs.inc()
                return wire.decode(encoded)
            behind.append(shard)
        return default

    def require(self, namespace: str, key: str) -> Any:
        value = self.get(namespace, key, default=_MISSING)
        if value is _MISSING:
            # Late import: repro.oran.sdl must stay importable before this
            # package (oran.ric imports us at module load).
            from repro.oran.sdl import SdlError

            raise SdlError(f"{namespace}/{key} not found")
        return value

    def delete(self, namespace: str, key: str, shard_key: Optional[str] = None) -> bool:
        names = self.replicas_for(shard_key if shard_key is not None else f"{namespace}/{key}")
        deleted = False
        for name in names:
            shard = self._shards[name]
            if not shard.alive:
                continue
            ns = shard.data.get(namespace)
            if ns is not None and key in ns:
                del ns[key]
                deleted = True
        return deleted

    def keys(self, namespace: str) -> List[str]:
        found: set[str] = set()
        for shard in self._shards.values():
            if shard.alive:
                found.update(shard.data.get(namespace, ()))
        return sorted(found)

    def namespaces(self) -> List[str]:
        found: set[str] = set()
        for shard in self._shards.values():
            if shard.alive:
                found.update(shard.data)
        return sorted(found)

    # -- append-only lists (telemetry queues) ----------------------------------

    def append(self, namespace: str, key: str, item: Any) -> int:
        """Append to a list value, creating it if needed. Returns new length."""
        current = self.get(namespace, key, default=[])
        if not isinstance(current, list):
            raise TypeError(f"{namespace}/{key} is not a list")
        current.append(item)
        self.set(namespace, key, current)
        return len(current)

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        for key in self.keys(namespace):
            yield key, self.get(namespace, key)

    # -- watches -----------------------------------------------------------------

    def watch(self, namespace: str, callback: WatchCallback) -> None:
        """Call ``callback`` on every acknowledged write into ``namespace``."""
        self._watchers.setdefault(namespace, []).append(callback)

    def unwatch(self, namespace: str, callback: WatchCallback) -> None:
        watchers = self._watchers.get(namespace, [])
        if callback in watchers:
            watchers.remove(callback)

    # -- reporting ------------------------------------------------------------------

    def health(self) -> dict:
        """Topology snapshot for the pipeline's scale report."""
        return {
            "shards": self.num_shards,
            "alive": self.shards_alive(),
            "replication": self.replication,
            "per_shard_writes": {
                name: shard.writes for name, shard in sorted(self._shards.items())
            },
            "failovers": int(self._failovers.value),
            "read_repairs": int(self._read_repairs.value),
        }


_MISSING = object()
