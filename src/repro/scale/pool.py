"""Batched inference pool: score many session windows per detector call.

MobiWatch's seed path runs the detector once per telemetry indication per
session — a ``[1, window * dim]`` matrix per call, so Python and BLAS
dispatch overhead dominate at fleet scale. The pool accumulates pending
window-scoring requests and scores them as one ``[batch, window * dim]``
matrix (the detectors are already vectorized across the batch dimension),
optionally sharded across logical workers by UE/session id on a
consistent-hash ring so one UE's windows always score on one worker.

Like the sharded SDL, each worker carries an optional per-window service
time; ``flush`` reports per-request completion times so the scale bench
can model parallel inference workers in simulated time while the
vectorized call delivers the real wall-clock win.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, WallTimer
from repro.scale.hashring import ConsistentHashRing
from repro.slo import profiler as _profiler

# callback(score, completed_at_sim_s)
ScoreCallback = Callable[[float, float], None]


class InferencePool:
    """Accumulate window-scoring requests; flush them as vectorized batches."""

    def __init__(
        self,
        score_fn: Callable[[np.ndarray], np.ndarray],
        *,
        workers: int = 1,
        batch_windows: int = 64,
        vnodes: int = 32,
        service_time_per_window_s: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        name: str = "pool",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_windows < 1:
            raise ValueError(f"batch_windows must be >= 1, got {batch_windows}")
        self._score_fn = score_fn
        self.batch_windows = batch_windows
        self.service_time_per_window_s = service_time_per_window_s
        self._clock = clock or (lambda: 0.0)
        self._worker_names = [f"worker-{i}" for i in range(workers)]
        self._ring = (
            ConsistentHashRing(self._worker_names, vnodes=vnodes)
            if workers > 1
            else None
        )
        self._busy_until = {name: 0.0 for name in self._worker_names}
        # (worker, session_id, vector, callback) in submission order.
        self._pending: list[tuple[str, Any, np.ndarray, ScoreCallback]] = []
        # Reusable flush batch buffer, grown on demand (repro.hotpath: one
        # np.stack allocation per flush otherwise).
        self._batch_buf: Optional[np.ndarray] = None
        self.windows_scored = 0
        self.batches = 0
        self.callback_errors = 0
        self.closed = False
        self.name = name
        metrics = metrics or MetricsRegistry()
        # Every series carries a {pool=...} label so multiple pools (the
        # deployment's and a bench's) share one registry without colliding.
        pool_label = {"pool": name}
        self._batches_counter = metrics.counter(
            "pool.batches_total", labels=pool_label, help="vectorized detector calls"
        )
        self._windows_hist = metrics.histogram(
            "pool.windows_per_batch",
            labels=pool_label,
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            help="windows scored per detector call",
        )
        self._callback_errors_counter = metrics.counter(
            "pool.callback_errors_total",
            labels=pool_label,
            help="score callbacks that raised during flush",
        )
        self._wall_hist = metrics.histogram(
            "pool.inference_wall_s",
            labels=pool_label,
            help="wall-clock cost per vectorized call",
        )
        self._worker_counters = {
            worker: metrics.counter(
                "pool.worker_windows_total", labels={"pool": name, "worker": worker}
            )
            for worker in self._worker_names
        }
        metrics.gauge(
            "pool.queue_depth",
            labels=pool_label,
            fn=lambda: len(self._pending),
            help="queued window-scoring requests",
        )
        for worker in self._worker_names:
            metrics.gauge(
                "pool.worker_backlog",
                labels={"pool": name, "worker": worker},
                fn=lambda w=worker: float(self.worker_backlog(w)),
                help="queued requests assigned to the worker",
            )

    @property
    def workers(self) -> int:
        return len(self._worker_names)

    @property
    def worker_names(self) -> List[str]:
        return list(self._worker_names)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def worker_backlog(self, worker: str) -> int:
        """Pending requests assigned to one worker (health-probe input)."""
        return sum(1 for entry in self._pending if entry[0] == worker)

    def worker_for(self, session_id: Any) -> str:
        """Deterministic worker assignment (UE/session sharding)."""
        if self._ring is None:
            return self._worker_names[0]
        return self._ring.lookup(str(session_id))

    def submit(self, session_id: Any, vector: np.ndarray, callback: ScoreCallback) -> None:
        """Queue one flattened window; auto-flush at ``batch_windows``."""
        if self.closed:
            raise RuntimeError(f"pool {self.name!r} is closed")
        self._pending.append((self.worker_for(session_id), session_id, vector, callback))
        if len(self._pending) >= self.batch_windows:
            self.flush()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> int:
        """Deliver every pending score, then refuse further submits.

        Idempotent: a second (or later) ``close`` is a no-op returning 0,
        so a supervisor can tear a worker set down without tracking
        whether an error path already closed it.
        """
        if self.closed:
            return 0
        delivered = self.flush()
        self.closed = True
        return delivered

    def __enter__(self) -> "InferencePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def flush(self) -> int:
        """Score every pending window, one detector call per worker."""
        if not self._pending:
            return 0
        with _profiler.profile_block("pool.flush"):
            return self._flush()

    def _flush(self) -> int:
        pending, self._pending = self._pending, []
        groups: dict[str, list[int]] = {}
        for index, (worker, _, _, _) in enumerate(pending):
            groups.setdefault(worker, []).append(index)
        now = self._clock()
        # A raising callback must not drop the other verdicts in the batch:
        # every computed score is delivered, failures are collected and the
        # first one re-raised after the loop.
        failures: list[BaseException] = []
        for worker in self._worker_names:
            indices = groups.get(worker)
            if not indices:
                continue
            matrix = self._gather(pending, indices)
            with WallTimer(self._wall_hist):
                scores = self._score_fn(matrix)
            completed = now
            if self.service_time_per_window_s:
                start = max(now, self._busy_until[worker])
                completed = start + self.service_time_per_window_s * len(indices)
                self._busy_until[worker] = completed
            self.batches += 1
            self._batches_counter.inc()
            self._windows_hist.observe(len(indices))
            self._worker_counters[worker].inc(len(indices))
            self.windows_scored += len(indices)
            for row, i in enumerate(indices):
                try:
                    pending[i][3](float(scores[row]), completed)
                except Exception as exc:  # noqa: BLE001 - reported below
                    self.callback_errors += 1
                    self._callback_errors_counter.inc()
                    failures.append(exc)
        if failures:
            raise failures[0]
        return len(pending)

    def _gather(self, pending: list, indices: List[int]) -> np.ndarray:
        """Copy the group's vectors into the reusable batch buffer."""
        dim = pending[indices[0]][2].shape[0]
        buf = self._batch_buf
        if buf is None or buf.shape[0] < len(indices) or buf.shape[1] != dim:
            capacity = max(len(indices), self.batch_windows)
            dtype = pending[indices[0]][2].dtype
            buf = self._batch_buf = np.empty((capacity, dim), dtype=dtype)
        matrix = buf[: len(indices)]
        for row, i in enumerate(indices):
            matrix[row] = pending[i][2]
        return matrix

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "batch_windows": self.batch_windows,
            "windows_scored": self.windows_scored,
            "batches": self.batches,
            "pending": self.pending,
            "callback_errors": self.callback_errors,
            "closed": self.closed,
        }
