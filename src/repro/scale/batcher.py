"""Bounded-queue ingest batcher with an explicit, counted drop policy.

Sits between a producer (the E2 termination fanning out indications, or
the scale bench's synthetic record source) and a consumer (the RMR fan-out
toward MobiWatch, or the sharded SDL + inference pool). Provides the three
things a fleet-scale ingest path needs and a single in-process loop lacks:

- **bounded memory** — the queue never exceeds ``capacity``;
- **batched hand-off** — the consumer sees batches of up to
  ``flush_records`` items, flushed on size and (optionally) on a periodic
  interval driven by the simulator's scheduler;
- **backpressure that is never silent** — when the queue is full the
  configured drop policy runs and every drop is counted, so
  ``offered == ingested + dropped + pending`` holds at all times.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from repro.obs.metrics import MetricsRegistry

# Drop the oldest queued item to admit the new one (favor fresh telemetry),
# or reject the newly offered item (favor already-queued telemetry).
DROP_OLDEST = "oldest"
DROP_NEWEST = "newest"
_POLICIES = (DROP_OLDEST, DROP_NEWEST)


class BoundedBatcher:
    """Bounded FIFO queue that delivers items to ``flush`` in batches."""

    def __init__(
        self,
        flush: Callable[[List[Any]], None],
        *,
        capacity: int = 8192,
        flush_records: int = 64,
        flush_interval_s: float = 0.0,
        drop_policy: str = DROP_OLDEST,
        scheduler: Optional[Callable[..., Any]] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "ingest",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if flush_records < 1:
            raise ValueError(f"flush_records must be >= 1, got {flush_records}")
        if drop_policy not in _POLICIES:
            raise ValueError(f"drop_policy must be one of {_POLICIES}, got {drop_policy!r}")
        self._flush = flush
        self.capacity = capacity
        self.flush_records = flush_records
        self.flush_interval_s = flush_interval_s
        self.drop_policy = drop_policy
        self._scheduler = scheduler
        self._clock = clock or (lambda: 0.0)
        self.name = name
        self._queue: deque[tuple[float, Any]] = deque()
        self.offered = 0
        self.ingested = 0
        self.dropped = 0
        self.flushes = 0
        self.closed = False
        self._ticking = False
        metrics = metrics or MetricsRegistry()
        labels = {"queue": name}
        self._offered_counter = metrics.counter(
            "batcher.offered_total", labels=labels, help="items offered to the queue"
        )
        self._ingested_counter = metrics.counter(
            "batcher.ingested_total", labels=labels, help="items delivered downstream"
        )
        self._dropped_counter = metrics.counter(
            "batcher.dropped_total",
            labels={**labels, "policy": drop_policy},
            help="items shed by the bounded queue (explicit, never silent)",
        )
        self._flushes_counter = metrics.counter(
            "batcher.flushes_total", labels=labels, help="batches delivered"
        )
        metrics.gauge(
            "batcher.queue_depth",
            labels=labels,
            fn=lambda: len(self._queue),
            help="items waiting in the queue",
        )
        self._batch_hist = metrics.histogram(
            "batcher.batch_records",
            labels=labels,
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            help="items per delivered batch",
        )
        self._wait_hist = metrics.histogram(
            "batcher.queue_wait_s", labels=labels, help="enqueue -> flush latency"
        )

    # -- producer side ----------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    def offer(self, item: Any) -> bool:
        """Enqueue ``item``; returns False iff it was shed by the drop policy."""
        if self.closed:
            raise RuntimeError(f"batcher {self.name!r} is closed")
        self.offered += 1
        self._offered_counter.inc()
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            self._dropped_counter.inc()
            if self.drop_policy == DROP_NEWEST:
                return False
            self._queue.popleft()
        self._queue.append((self._clock(), item))
        if len(self._queue) >= self.flush_records:
            self._flush_one_batch()
        elif self._scheduler is not None and self.flush_interval_s > 0 and not self._ticking:
            self._ticking = True
            self._scheduler(self.flush_interval_s, self._tick)
        return True

    def offer_many(self, items: List[Any]) -> int:
        """Enqueue a whole batch (repro.genfast); returns how many were
        admitted.

        Per-item drop-policy semantics are identical to calling ``offer``
        in a loop, but the counter updates, timestamp read, and flush
        checks are batched: one clock read stamps the batch and size-based
        flushing runs after the batch is admitted instead of per item.
        """
        if self.closed:
            raise RuntimeError(f"batcher {self.name!r} is closed")
        if not items:
            return 0
        count = len(items)
        self.offered += count
        self._offered_counter.inc(count)
        now = self._clock()
        admitted = 0
        for item in items:
            if len(self._queue) >= self.capacity:
                self.dropped += 1
                self._dropped_counter.inc()
                if self.drop_policy == DROP_NEWEST:
                    continue
                self._queue.popleft()
            self._queue.append((now, item))
            admitted += 1
        if len(self._queue) >= self.flush_records:
            while len(self._queue) >= self.flush_records:
                self._flush_one_batch()
        elif self._scheduler is not None and self.flush_interval_s > 0 and not self._ticking:
            self._ticking = True
            self._scheduler(self.flush_interval_s, self._tick)
        return admitted

    # -- consumer side ------------------------------------------------------------

    def _flush_one_batch(self) -> int:
        take = min(len(self._queue), self.flush_records)
        if not take:
            return 0
        now = self._clock()
        batch = []
        for _ in range(take):
            enqueued_at, item = self._queue.popleft()
            self._wait_hist.observe(now - enqueued_at)
            batch.append(item)
        self.ingested += take
        self._ingested_counter.inc(take)
        self.flushes += 1
        self._flushes_counter.inc()
        self._batch_hist.observe(take)
        self._flush(batch)
        return take

    def flush_now(self) -> int:
        """Drain the whole queue (in flush_records-sized batches)."""
        total = 0
        while self._queue:
            total += self._flush_one_batch()
        return total

    def _tick(self) -> None:
        self._ticking = False
        if self.closed:
            return
        self.flush_now()
        # Keep ticking while there is still a scheduler and traffic may come;
        # the next offer re-arms the timer, so an idle queue costs no events.

    def close(self) -> int:
        """Final drain; further offers raise."""
        drained = self.flush_now()
        self.closed = True
        return drained

    def stats(self) -> dict:
        return {
            "offered": self.offered,
            "ingested": self.ingested,
            "dropped": self.dropped,
            "pending": self.pending,
            "flushes": self.flushes,
            "drop_policy": self.drop_policy,
            "capacity": self.capacity,
        }
