"""Configuration knobs for the horizontal-scaling substrate.

Kept dependency-free so every layer (``repro.core.config``, ``repro.oran``)
can import it without cycles. **Every default preserves the seed's
single-node behaviour bit-for-bit**: one SDL shard, no ingest batching,
inline per-window scoring.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ScaleSettings:
    """Knobs of the ``repro.scale`` subsystem (SDL shards, batcher, pool)."""

    # Sharded SDL. ``sdl_shards=1`` keeps the plain single-node
    # SharedDataLayer — the exact seed data path.
    sdl_shards: int = 1
    sdl_replication: int = 1
    sdl_vnodes: int = 128
    # Per-write service time of one shard (simulated seconds). 0 disables
    # the queueing model; the scale bench uses ~Redis-SET cost.
    sdl_service_time_s: float = 0.0

    # Telemetry ingest batcher between the E2 termination and the xApps.
    # 0 = no batcher: indications fan out inline, as in the seed.
    ingest_flush_records: int = 0
    ingest_flush_interval_s: float = 0.01
    ingest_capacity: int = 8192
    ingest_drop_policy: str = "oldest"

    # Batched inference pool inside MobiWatch. 1 = score each window
    # inline as it arrives (seed behaviour).
    pool_batch_windows: int = 1
    pool_workers: int = 1
    # Per-window service time of one inference worker (simulated seconds).
    pool_service_time_s: float = 0.0

    @property
    def sharding_enabled(self) -> bool:
        return self.sdl_shards > 1

    @property
    def batching_enabled(self) -> bool:
        return self.ingest_flush_records > 0

    @property
    def pooling_enabled(self) -> bool:
        return self.pool_batch_windows > 1
