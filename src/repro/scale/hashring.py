"""Consistent-hash ring with virtual nodes.

Maps telemetry shard keys (RNTI / UE / session ids, or ``namespace/key``
strings) onto shard names the way the OSC RIC's clustered Redis SDL maps
keys onto hash slots: each physical node owns many virtual points on a
ring, a key belongs to the first virtual point clockwise from its hash,
and adding or removing one node relocates only ~K/N of the keys instead
of rehashing everything.

Hashing is SHA-1 based, so lookups are deterministic across processes and
runs — a requirement for the reproduction's byte-stable captures.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, List


def stable_hash(data: str) -> int:
    """64-bit deterministic hash (never ``hash()``: that is salted per run)."""
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRingError(ValueError):
    """Raised on invalid ring operations (duplicate/unknown node, empty ring)."""


class ConsistentHashRing:
    """Deterministic consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 128) -> None:
        if vnodes < 1:
            raise HashRingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        # Sorted list of (point, node) pairs; ties broken by node name.
        self._ring: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def _points(self, node: str) -> list[tuple[int, str]]:
        return [(stable_hash(f"{node}#{v}"), node) for v in range(self.vnodes)]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise HashRingError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for point in self._points(node):
            insort(self._ring, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise HashRingError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        drop = set(self._points(node))
        self._ring = [point for point in self._ring if point not in drop]

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (first virtual point clockwise)."""
        return self.lookup_n(key, 1)[0]

    def lookup_n(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``'s hash.

        Used for replica placement: element 0 is the primary, the rest are
        successive replicas. Returns fewer than ``n`` names only when the
        ring holds fewer than ``n`` nodes.
        """
        if not self._ring:
            raise HashRingError("ring is empty")
        n = min(n, len(self._nodes))
        start = bisect_right(self._ring, (stable_hash(str(key)), "￿"))
        owners: list[str] = []
        for i in range(len(self._ring)):
            node = self._ring[(start + i) % len(self._ring)][1]
            if node not in owners:
                owners.append(node)
                if len(owners) == n:
                    break
        return owners

    def distribution(self, keys: Iterable[str]) -> dict:
        """Node -> key count, for balance checks and shard dashboards."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
