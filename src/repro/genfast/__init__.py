"""repro.genfast — vectorized telemetry generation & ingest.

The generation/ingest fast lane behind ``XsecConfig.genfast``:

- columnar :class:`~repro.telemetry.batch.MobiFlowBatch` indications with
  interned vocab ids, one acked SDL write per batch;
- one-pass vectorized featurization (`repro.telemetry.vectorized`) with a
  float64 equality contract against the seed ``StreamingEncoder``;
- sim fast-lane: ``__slots__`` events, template-cached RAN message
  construction (`repro.ran.templates`) and batched timer scheduling
  (`repro.sim.fastlane`).

Defaults keep the seed per-record path bit-identical.
"""

from repro.genfast.settings import GenfastSettings

__all__ = ["GenfastSettings"]
