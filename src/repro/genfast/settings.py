"""Configuration for the repro.genfast generation & ingest fast lane.

All flags default to the seed behavior (off).  As with the other
fast-path subsystems, the enabled paths are *contracted* against the
seed: columnar indications decode to byte-identical per-record streams,
the vectorized featurizer is float64 bit-identical to the seed
``StreamingEncoder``, so enabling the lane never changes ``AnomalyEvent``
streams — it only changes how fast they are produced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GenfastSettings:
    """Flags for the telemetry generation/ingest fast lane.

    columnar_batches
        The RIC agent ships each report tick as one columnar
        ``MobiFlowBatch`` indication (struct-of-arrays TLV with interned
        message/direction/cause vocab ids) instead of a list of
        per-record dicts.  MobiWatch decodes it back to the identical
        per-record stream, so everything downstream is unchanged.

    batched_sdl_writes
        MobiWatch persists each indication's telemetry with one acked
        SDL write per shard (``set_many``) instead of one write per
        record.  Stored values are identical; only the write batching
        changes.

    vectorized_features
        Offline dataset builds (``WindowedDataset.from_series`` /
        ``LabeledDataset.build``) encode the whole series in a single
        numpy pass instead of the per-entry ``StreamingEncoder`` loop.
        Float64 bit-identical to the seed encoder.  The *live* xApp keeps
        the streaming encoder either way (scoring is causal, one row per
        arriving record).

    sim_fastlane
        Synthetic workload generators (benches, soak) build their record
        streams through the columnar builder and template-cached message
        construction instead of per-record dataclass churn.
    """

    columnar_batches: bool = False
    batched_sdl_writes: bool = False
    vectorized_features: bool = False
    sim_fastlane: bool = False

    @property
    def any_enabled(self) -> bool:
        return (
            self.columnar_batches
            or self.batched_sdl_writes
            or self.vectorized_features
            or self.sim_fastlane
        )

    @classmethod
    def all_on(cls) -> "GenfastSettings":
        """Every fast-lane flag enabled (benches, tests)."""
        return cls(
            columnar_batches=True,
            batched_sdl_writes=True,
            vectorized_features=True,
            sim_fastlane=True,
        )
