"""Genfast benchmark: capture -> featurized-window ingest throughput.

Three measurements, mirroring the three genfast fast lanes:

- **end-to-end ingest** — the seed per-record path (record objects,
  per-record TLV wire, one SDL write per record, streaming featurization)
  vs the columnar path (field appends, packed columnar TLV, one acked SDL
  write per batch, one-pass vectorized featurization), in records/second
  over the same synthetic capture stream;
- **featurization alone** — seed ``StreamingEncoder.push`` vs the
  vectorized ``encode_batch`` on the identical record stream;
- **sim event churn** — per-member ``Simulator.schedule`` fleet ticking vs
  the ``schedule_batch``-backed :class:`FleetTicker` (informational, no
  floor: it gates nothing but shows the fast lane's third leg).

Every run re-verifies the equality contracts (bit-identical feature
windows, byte-identical columnar wire roundtrip). :func:`violations`
gates a result against the hard speedup floors and the committed
baseline (``BENCH_genfast.json``). The end-to-end floor is CPU-gated
like the runtime bench: numpy's vectorized pass benefits from multiple
cores, so a single-core runner gets a documented lower floor.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.genfast.workload import (
    GenfastWorkloadConfig,
    field_stream,
    lanes_equal,
    run_fast_lane,
    run_seed_lane,
)
from repro.runtime.settings import usable_cpus
from repro.sim.engine import Simulator
from repro.sim.fastlane import FleetTicker
from repro.telemetry.batch import MobiFlowBatch
from repro.telemetry.features import FeatureSpec
from repro.telemetry.mobiflow import MobiFlowRecord
from repro.telemetry.vectorized import encode_batch

# Hard floors from the perf-trajectory acceptance gates.
END_TO_END_SPEEDUP_MIN = 3.0  # >= 2 usable CPUs
END_TO_END_CPUS_MIN = 2
END_TO_END_SINGLE_CORE_MIN = 2.5  # documented single-core floor
FEATURIZATION_SPEEDUP_MIN = 4.0  # unconditional: no parallelism needed
# A fresh run may regress this far below the committed baseline's measured
# ratio before we call it a regression (shared-runner noise allowance).
BASELINE_SLACK = 0.5


@dataclass
class GenfastBenchConfig:
    records: int = 6000
    sessions: int = 48
    batch_records: int = 64
    window: int = 6
    # Fleet-tick micro-measurement (informational).
    fleet_ues: int = 200
    fleet_ticks: int = 50
    repeats: int = 3  # best-of repeats for every timing loop

    @classmethod
    def quick(cls) -> "GenfastBenchConfig":
        return cls(records=2000, sessions=24, fleet_ues=64, fleet_ticks=20, repeats=2)

    def workload(self) -> GenfastWorkloadConfig:
        return GenfastWorkloadConfig(
            records=self.records,
            sessions=self.sessions,
            batch_records=self.batch_records,
            window=self.window,
        )


@dataclass
class GenfastBenchResult:
    end_to_end: dict = field(default_factory=dict)
    featurization: dict = field(default_factory=dict)
    sim: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    cpus: int = field(default_factory=usable_cpus)

    @property
    def multi_core_floor_applies(self) -> bool:
        return self.cpus >= END_TO_END_CPUS_MIN

    @property
    def end_to_end_floor(self) -> float:
        return (
            END_TO_END_SPEEDUP_MIN
            if self.multi_core_floor_applies
            else END_TO_END_SINGLE_CORE_MIN
        )

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "cpus": self.cpus,
            "floor_applied": "multi-core" if self.multi_core_floor_applies else "single-core",
            "end_to_end": self.end_to_end,
            "featurization": self.featurization,
            "sim": self.sim,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        floor_kind = (
            f"floor {END_TO_END_SPEEDUP_MIN:g}x"
            if self.multi_core_floor_applies
            else f"single-core floor {END_TO_END_SINGLE_CORE_MIN:g}x "
            f"({self.cpus} usable CPU)"
        )
        lines = [
            "genfast bench"
            + (" (quick)" if self.meta.get("quick") else "")
            + f" — {self.cpus} usable CPU(s)"
        ]
        e = self.end_to_end
        lines.append(
            f"  end-to-end ingest: seed {e['seed_rps']:.0f} rec/s -> columnar "
            f"{e['fast_rps']:.0f} rec/s ({e['speedup']:.2f}x, {floor_kind})"
        )
        f_ = self.featurization
        lines.append(
            f"  featurization: streaming {f_['seed_rps']:.0f} rec/s -> vectorized "
            f"{f_['fast_rps']:.0f} rec/s ({f_['speedup']:.2f}x, floor "
            f"{FEATURIZATION_SPEEDUP_MIN:g}x)"
        )
        s = self.sim
        lines.append(
            f"  sim fleet ticks: per-member {s['per_member_tps']:.0f} ticks/s -> "
            f"batched {s['batched_tps']:.0f} ticks/s ({s['speedup']:.2f}x, "
            "informational)"
        )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) measurement across repeats — noise-robust timing."""
    return min(run() for _ in range(repeats))


def _bench_end_to_end(cfg: GenfastBenchConfig, result: GenfastBenchResult) -> None:
    workload = cfg.workload()
    spec = FeatureSpec()

    def seed_run() -> float:
        t0 = time.perf_counter()
        run_seed_lane(workload, spec)
        return time.perf_counter() - t0

    def fast_run() -> float:
        t0 = time.perf_counter()
        run_fast_lane(workload, spec)
        return time.perf_counter() - t0

    seed_run()  # warm-up (allocator, wire caches, BLAS spin-up)
    seed_s = _best_of(cfg.repeats, seed_run)
    fast_run()
    fast_s = _best_of(cfg.repeats, fast_run)
    result.end_to_end = {
        "records": workload.records,
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_rps": workload.records / seed_s,
        "fast_rps": workload.records / fast_s,
        "speedup": seed_s / fast_s,
    }
    result.equality.update(
        lanes_equal(run_seed_lane(workload, spec), run_fast_lane(workload, spec))
    )


def _bench_featurization(cfg: GenfastBenchConfig, result: GenfastBenchResult) -> None:
    workload = cfg.workload()
    spec = FeatureSpec()
    records = [MobiFlowRecord(**fields) for fields in field_stream(workload)]
    batch = MobiFlowBatch.from_records(records)

    def seed_run() -> float:
        encoder = spec.streaming_encoder()
        push = encoder.push
        t0 = time.perf_counter()
        for record in records:
            push(record)
        return time.perf_counter() - t0

    def fast_run() -> float:
        t0 = time.perf_counter()
        encode_batch(spec, batch)
        return time.perf_counter() - t0

    seed_run()
    seed_s = _best_of(cfg.repeats, seed_run)
    fast_run()
    fast_s = _best_of(cfg.repeats, fast_run)
    result.featurization = {
        "records": len(records),
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_rps": len(records) / seed_s,
        "fast_rps": len(records) / fast_s,
        "speedup": seed_s / fast_s,
    }
    # Bit-identity of the vectorized rows against the streaming encoder.
    encoder = spec.streaming_encoder()
    seed_rows = np.stack([encoder.push(record) for record in records])
    result.equality["vectorized_rows_identical"] = bool(
        np.array_equal(seed_rows, encode_batch(spec, batch))
    )


def _bench_sim(cfg: GenfastBenchConfig, result: GenfastBenchResult) -> None:
    fires = [0]

    def tick() -> None:
        fires[0] += 1

    total_ticks = cfg.fleet_ues * cfg.fleet_ticks

    def per_member_run() -> float:
        sim = Simulator(seed=1)

        def arm(round_index: int) -> None:
            if round_index >= cfg.fleet_ticks:
                return
            for _ in range(cfg.fleet_ues):
                sim.schedule(0.1, tick)
            sim.schedule(0.1, lambda: arm(round_index + 1))

        t0 = time.perf_counter()
        arm(0)
        sim.run()
        return time.perf_counter() - t0

    def batched_run() -> float:
        sim = Simulator(seed=1)
        ticker = FleetTicker(sim, period_s=0.1)
        for _ in range(cfg.fleet_ues):
            ticker.add(tick)

        def stop_check() -> None:
            # ticks_fired increments after the member sweep; stopping during
            # the sweep of the final tick keeps the member-fire total equal
            # to the per-member run (fleet_ues * fleet_ticks).
            if ticker.ticks_fired >= cfg.fleet_ticks - 1:
                ticker.stop()

        ticker.add(stop_check)
        t0 = time.perf_counter()
        ticker.start()
        sim.run()
        return time.perf_counter() - t0

    per_member_run()
    per_member_s = _best_of(cfg.repeats, per_member_run)
    batched_run()
    batched_s = _best_of(cfg.repeats, batched_run)
    result.sim = {
        "fleet_ues": cfg.fleet_ues,
        "fleet_ticks": cfg.fleet_ticks,
        "per_member_s": per_member_s,
        "batched_s": batched_s,
        "per_member_tps": total_ticks / per_member_s,
        "batched_tps": total_ticks / batched_s,
        "speedup": per_member_s / batched_s,
    }


def run_bench(
    config: Optional[GenfastBenchConfig] = None, quick: bool = False
) -> GenfastBenchResult:
    """Run all three measurements plus the equality re-verification."""
    cfg = config or (GenfastBenchConfig.quick() if quick else GenfastBenchConfig())
    result = GenfastBenchResult()
    result.meta = {
        "quick": quick,
        "records": cfg.records,
        "sessions": cfg.sessions,
        "batch_records": cfg.batch_records,
        "window": cfg.window,
    }
    _bench_end_to_end(cfg, result)
    _bench_featurization(cfg, result)
    _bench_sim(cfg, result)
    return result


def violations(result: GenfastBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the hard floors and the committed baseline."""
    out: list[str] = []
    for key, ok in result.equality.items():
        if not ok:
            out.append(f"equality contract broken: {key}")
    e2e = result.end_to_end.get("speedup", 0.0)
    if e2e < result.end_to_end_floor:
        kind = "multi-core" if result.multi_core_floor_applies else "single-core"
        out.append(
            f"end-to-end ingest speedup {e2e:.2f}x below the {kind} floor "
            f"{result.end_to_end_floor:g}x on {result.cpus} CPU(s)"
        )
    feat = result.featurization.get("speedup", 0.0)
    if feat < FEATURIZATION_SPEEDUP_MIN:
        out.append(
            f"featurization speedup {feat:.2f}x below floor "
            f"{FEATURIZATION_SPEEDUP_MIN:g}x"
        )
    if baseline:
        # Only compare measurements taken under the same floor regime — a
        # 1-CPU runner regressing against a 16-CPU baseline is noise.
        same_regime = baseline.get("floor_applied") == (
            "multi-core" if result.multi_core_floor_applies else "single-core"
        )
        if same_regime:
            for path, current in (
                (("end_to_end", "speedup"), e2e),
                (("featurization", "speedup"), feat),
            ):
                node = baseline
                for part in path:
                    node = node.get(part, {}) if isinstance(node, dict) else {}
                if isinstance(node, (int, float)) and current < node * BASELINE_SLACK:
                    out.append(
                        f"{'.'.join(path)} {current:.2f}x regressed below "
                        f"{BASELINE_SLACK:.0%} of committed baseline {node:.2f}x"
                    )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: GenfastBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
