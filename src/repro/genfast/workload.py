"""Synthetic capture -> featurized-window ingest workload (repro.genfast).

Models the full generation & ingest path the bench gates, twice:

- **seed lane** — per-record objects end to end: construct a
  :class:`MobiFlowRecord` per capture, wire per-record TLV batches
  (the E2 indication payload), decode, one SDL write per record, then
  the seed :class:`StreamingEncoder` featurization with per-session
  sliding windows (``WindowedDataset.from_series``);
- **fast lane** — columnar end to end: ``MobiFlowBatchBuilder`` field
  appends (no record objects), one columnar TLV blob per batch, one
  acked ``set_many`` SDL write per batch, then the one-pass vectorized
  featurization (``windowed_from_batch``) over the concatenated stream.

Both lanes ingest the *same* synthetic capture stream (a benign
registration flow cycled across UE sessions, with TMSI/SUCI identity
variety so every wire column type is exercised) and must end with
bit-identical feature windows and byte-identical SDL contents — the bench
re-verifies both on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.oran.sdl import SharedDataLayer
from repro.telemetry import encoder as telemetry_encoder
from repro.telemetry.batch import MobiFlowBatch, MobiFlowBatchBuilder
from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries
from repro.telemetry.vectorized import windowed_from_batch

TELEMETRY_NS = "xsec.mobiflow"

# A benign registration flow, cycled per session (the same shape the scale
# bench and the live network's happy path produce).
_FLOW = (
    ("RRCSetupRequest", "RRC", "UL"),
    ("RRCSetup", "RRC", "DL"),
    ("RRCSetupComplete", "RRC", "UL"),
    ("RegistrationRequest", "NAS", "UL"),
    ("AuthenticationRequest", "NAS", "DL"),
    ("AuthenticationResponse", "NAS", "UL"),
    ("NASSecurityModeCommand", "NAS", "DL"),
    ("NASSecurityModeComplete", "NAS", "UL"),
    ("RegistrationAccept", "NAS", "DL"),
    ("RRCRelease", "RRC", "DL"),
)


@dataclass
class GenfastWorkloadConfig:
    """Shape of the synthetic capture stream."""

    records: int = 6000
    sessions: int = 48
    batch_records: int = 64  # records per E2 indication / SDL write batch
    window: int = 6


def field_stream(config: GenfastWorkloadConfig) -> Iterator[dict]:
    """Yield the raw field values of each synthetic capture, in time order."""
    n_flow = len(_FLOW)
    for index in range(config.records):
        session_id = 1 + index % config.sessions
        step = (index // config.sessions) % n_flow
        msg, protocol, direction = _FLOW[step]
        yield {
            "timestamp": index * 0.002,
            "msg": msg,
            "protocol": protocol,
            "direction": direction,
            "session_id": session_id,
            "rnti": 0x4000 + session_id,
            "s_tmsi": 0x00C0_0000 + session_id if step >= 2 else None,
            "suci": (
                f"suci-0-999-70-0000-{session_id:07d}"
                if step == 3 and session_id % 5 == 0
                else None
            ),
            "supi": None,
            "cipher_alg": 2 if step >= 7 else None,
            "integrity_alg": 2 if step >= 7 else None,
            "establishment_cause": "mo-Signalling" if step == 0 else None,
        }


def _record_value(record: MobiFlowRecord) -> dict:
    """The SDL value MobiWatch stores per record (non-null fields only)."""
    return {k: v for k, v in record.to_dict().items() if v is not None}


@dataclass
class LaneResult:
    """What one lane produced — compared for equality by the bench."""

    windows: np.ndarray
    window_records: list
    payloads: List[bytes] = field(default_factory=list)  # one per wire batch
    sdl: Optional[SharedDataLayer] = None


def run_seed_lane(config: GenfastWorkloadConfig, spec: FeatureSpec) -> LaneResult:
    """Per-record generation, per-record wire, per-record SDL, streaming
    featurization — the seed ingest path."""
    sdl = SharedDataLayer()
    series = TelemetrySeries()
    payloads: list[bytes] = []
    buffer: list[MobiFlowRecord] = []
    base = 0

    def flush() -> None:
        nonlocal base
        payload = telemetry_encoder.encode_batch(buffer)
        payloads.append(payload)
        decoded = telemetry_encoder.decode_batch(payload)
        for offset, record in enumerate(decoded):
            sdl.set(TELEMETRY_NS, f"{base + offset:09d}", _record_value(record))
            series.append(record)
        base += len(decoded)
        buffer.clear()

    for fields in field_stream(config):
        buffer.append(MobiFlowRecord(**fields))
        if len(buffer) >= config.batch_records:
            flush()
    if buffer:
        flush()
    dataset = WindowedDataset.from_series(series, spec, config.window, mode="session")
    return LaneResult(
        windows=dataset.windows,
        window_records=dataset.window_records,
        payloads=payloads,
        sdl=sdl,
    )


def run_fast_lane(config: GenfastWorkloadConfig, spec: FeatureSpec) -> LaneResult:
    """Columnar generation, columnar wire, one acked SDL write per batch,
    one-pass vectorized featurization — the repro.genfast ingest path."""
    sdl = SharedDataLayer()
    builder = MobiFlowBatchBuilder()
    blobs: list[bytes] = []
    batches: list[MobiFlowBatch] = []
    base = 0

    def flush() -> None:
        nonlocal base
        blob = telemetry_encoder.encode_batch_columnar(builder.flush())
        blobs.append(blob)
        decoded = telemetry_encoder.decode_batch_columnar(blob)
        # One acked write per batch: the columnar blob is the stored value,
        # keyed by the batch's first record index. Readers reconstruct any
        # record exactly (decode_batch_columnar(...).to_records()).
        sdl.set_many(TELEMETRY_NS, [(f"batch:{base:09d}", blob)])
        batches.append(decoded)
        base += len(decoded)

    for fields in field_stream(config):
        builder.append_fields(**fields)
        if len(builder) >= config.batch_records:
            flush()
    if len(builder):
        flush()
    dataset = windowed_from_batch(MobiFlowBatch.concat(batches), spec, config.window)
    return LaneResult(
        windows=dataset.windows,
        window_records=dataset.window_records,
        payloads=blobs,
        sdl=sdl,
    )


def lanes_equal(seed: LaneResult, fast: LaneResult) -> dict:
    """Re-verify the genfast equality contracts on actual lane output."""
    checks = {
        "windows_identical": bool(np.array_equal(seed.windows, fast.windows)),
        "window_records_identical": seed.window_records == fast.window_records,
    }
    # The columnar wire contract: each stored/wired columnar blob decodes
    # to the exact record stream whose per-record encoding is the seed
    # payload bytes — so either lane's SDL contents reconstruct the other's.
    byte_identical = len(seed.payloads) == len(fast.payloads)
    if byte_identical:
        for seed_payload, blob in zip(seed.payloads, fast.payloads):
            decoded = telemetry_encoder.decode_batch_columnar(blob)
            if telemetry_encoder.encode_batch(decoded.to_records()) != seed_payload:
                byte_identical = False
                break
    checks["columnar_decodes_byte_identical"] = byte_identical
    return checks
