"""Configuration knobs for the SLO/observability plane (``repro.slo``).

Kept dependency-free (like :mod:`repro.hotpath.settings`) so every layer
can import it without cycles. **Every default preserves the seed's
behaviour bit-for-bit**: no SLO evaluation, no provenance records, no
profiler hooks, no export cadence — the pipeline's outputs are identical
to a build without this package.

The independent switches:

- ``enabled`` — the SLO engine (declarative objectives evaluated over
  sliding windows with multi-window burn-rate alerting), the per-incident
  provenance store, and the component health scoreboard.
- ``profiler`` — explicit ``profile_block()`` hooks in the hotpath scorer,
  compiled kernels, trainfast trainers, sharded-SDL ops and the inference
  pool start recording per-stage self time (off = the hooks are a single
  ``is None`` check).
- ``sampling_profiler`` — a background thread additionally samples every
  thread's Python stack at ``sampling_interval_s``, aggregated into
  collapsed (flamegraph-format) stacks.
- ``export_interval_s`` — > 0 schedules JSONL metric snapshots on the sim
  clock every this many simulated seconds (bounded to the run horizon, so
  ``run(until=None)`` still terminates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class SloSettings:
    """Knobs of the ``repro.slo`` subsystem (see module docstring)."""

    # SLO engine + provenance + health scoreboard.
    enabled: bool = False
    # How often (sim seconds) the engine samples its objectives.
    eval_interval_s: float = 1.0
    # Sliding windows for multi-window burn-rate alerting (SRE-style:
    # the fast window catches sudden budget exhaustion, the slow window a
    # sustained slow bleed).
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    # Burn-rate thresholds per window (burn 1.0 = spending exactly the
    # error budget; 14.4 over a fast window = the canonical page signal).
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0
    # Alert state machine dwell times: a breach must persist this long
    # before pending -> firing, and recovery must persist this long before
    # firing -> resolved (brief recoveries are suppressed as flaps).
    pending_for_s: float = 2.0
    resolve_after_s: float = 5.0
    # Heartbeats older than this mark a component down on the scoreboard.
    heartbeat_stale_s: float = 5.0
    # Worker/queue backlog above this marks a component degraded.
    backlog_degraded: int = 64

    # Explicit profile_block() hooks (per-stage self-time accounting).
    profiler: bool = False
    # Background thread sampling sys._current_frames() for flamegraphs.
    sampling_profiler: bool = False
    sampling_interval_s: float = 0.005

    # JSONL continuous-telemetry snapshots every N sim seconds (0 = off).
    export_interval_s: float = 0.0
    export_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.eval_interval_s <= 0:
            raise ValueError(
                f"eval_interval_s must be > 0, got {self.eval_interval_s}"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s, got "
                f"fast={self.fast_window_s} slow={self.slow_window_s}"
            )
        if self.sampling_interval_s <= 0:
            raise ValueError(
                f"sampling_interval_s must be > 0, got {self.sampling_interval_s}"
            )
        if self.export_interval_s < 0:
            raise ValueError(
                f"export_interval_s must be >= 0, got {self.export_interval_s}"
            )

    @property
    def any_enabled(self) -> bool:
        return (
            self.enabled
            or self.profiler
            or self.sampling_profiler
            or self.export_interval_s > 0
        )

    @classmethod
    def full(cls, export_path: Optional[str] = None) -> "SloSettings":
        """Everything on — what the ``slo`` CLI and the obs bench run."""
        return cls(
            enabled=True,
            profiler=True,
            export_interval_s=5.0,
            export_path=export_path,
        )
