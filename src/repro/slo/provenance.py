"""Verdict provenance: why did this alarm / verdict / action happen?

Every :class:`~repro.core.mobiwatch.AnomalyEvent` minted while
``XsecConfig.slo.enabled`` carries a ``provenance_id`` resolving, through
the :class:`ProvenanceStore`, to the full evidence chain:

- **capture digest** — SHA-256 of the fast TLV encoding of exactly the
  telemetry records in the flagged window (the same content addressing as
  :func:`repro.trainfast.cache.series_digest`): the bytes that produced the
  alarm, re-hashable by anyone holding the capture;
- **window span** — record indices plus first/newest capture timestamps;
- **model / threshold snapshot ids** — SHA-256 over the deployed
  detector's parameter arrays and over its fitted operating point, so a
  verdict is attributable to one exact set of weights even across
  re-deployments;
- **scoring path** — which runtime scored it (seed / incremental /
  compiled-float32 / pool), since the fast paths carry documented
  tolerances;
- **trace id + per-stage timings** — filled progressively as the incident
  moves through the loop (detection at alarm time, verdict/explanation
  when the LLM responds, action when the responder fires).

Records persist into the ``xsec.provenance`` SDL namespace as they grow,
and ``python -m repro slo explain <verdict>`` renders the chain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

SDL_PROVENANCE_NS = "xsec.provenance"


def _hash_arrays(parts) -> str:
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode("utf-8"))
    return h.hexdigest()[:16]


def model_snapshot_id(detector) -> str:
    """Short SHA-256 over the detector's parameter arrays + identity."""
    parts: list = [detector.name.encode("utf-8")]
    model = detector.model
    if hasattr(model, "Wx"):  # LstmPredictor
        params = (model.Wx, model.Wh, model.b, model.head.W, model.head.b)
        parts.extend(p.value.tobytes() for p in params)
    elif hasattr(model, "model"):  # Autoencoder wraps a layer stack
        for layer in model.model.layers:
            for attr in ("W", "b"):
                param = getattr(layer, attr, None)
                if param is not None:
                    parts.append(param.value.tobytes())
    return _hash_arrays(parts)


def threshold_snapshot_id(detector) -> str:
    """Short hash of the fitted operating point (percentile + threshold)."""
    t = detector.threshold
    return _hash_arrays([(t.percentile, t.threshold)])


def capture_digest(records) -> str:
    """SHA-256 of the records' fast TLV encoding (content addressing)."""
    from repro.telemetry import encoder as telemetry_encoder

    payload = telemetry_encoder.encode_batch(list(records))
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class ProvenanceRecord:
    """The evidence chain of one incident, filled progressively."""

    provenance_id: int
    trace_id: str
    session_id: int
    detected_at: float
    score: float
    threshold: float
    record_indices: tuple
    first_record_ts: float
    newest_record_ts: float
    capture_digest: str
    model_snapshot_id: str
    threshold_snapshot_id: str
    scoring_path: str
    # Per-stage sim-second timings, keyed by the canonical loop stages.
    stage_timings_s: Dict[str, float] = field(default_factory=dict)
    # Verdict chain (attached when the LLM responds).
    verdict_model: str = ""
    verdict_text: str = ""
    verdict_top_attack: str = ""
    verdict_confirmed: Optional[bool] = None
    verdict_completed_at: Optional[float] = None
    # Response chain (attached when the closed loop acts).
    action: str = ""
    action_at: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "provenance_id": self.provenance_id,
            "trace_id": self.trace_id,
            "session_id": self.session_id,
            "detected_at": self.detected_at,
            "score": self.score,
            "threshold": self.threshold,
            "record_indices": list(self.record_indices),
            "first_record_ts": self.first_record_ts,
            "newest_record_ts": self.newest_record_ts,
            "capture_digest": self.capture_digest,
            "model_snapshot_id": self.model_snapshot_id,
            "threshold_snapshot_id": self.threshold_snapshot_id,
            "scoring_path": self.scoring_path,
            "stage_timings_s": dict(self.stage_timings_s),
            "verdict_model": self.verdict_model,
            "verdict_text": self.verdict_text,
            "verdict_top_attack": self.verdict_top_attack,
            "verdict_confirmed": self.verdict_confirmed,
            "verdict_completed_at": self.verdict_completed_at,
            "action": self.action,
            "action_at": self.action_at,
        }

    def render(self) -> str:
        lines = [
            f"provenance #{self.provenance_id}  trace {self.trace_id}",
            f"  session      {self.session_id}",
            f"  detected_at  t={self.detected_at:.4f}s  score {self.score:.5f} "
            f"(threshold {self.threshold:.5f})",
            f"  window       records {self.record_indices[0]}..{self.record_indices[-1]} "
            f"({len(self.record_indices)} entries), capture span "
            f"[{self.first_record_ts:.4f}s, {self.newest_record_ts:.4f}s]",
            f"  capture      digest {self.capture_digest}",
            f"  model        snapshot {self.model_snapshot_id}  "
            f"threshold snapshot {self.threshold_snapshot_id}",
            f"  scoring      {self.scoring_path}",
        ]
        if self.stage_timings_s:
            timing = "  ".join(
                f"{stage}={value * 1e3:.1f}ms"
                for stage, value in self.stage_timings_s.items()
            )
            lines.append(f"  stages       {timing}")
        if self.verdict_completed_at is not None:
            confirmed = "confirmed" if self.verdict_confirmed else "not confirmed"
            lines.append(
                f"  verdict      {self.verdict_text or '-'} ({confirmed}) by "
                f"{self.verdict_model} at t={self.verdict_completed_at:.4f}s"
            )
            if self.verdict_top_attack:
                lines.append(f"  attribution  {self.verdict_top_attack}")
        else:
            lines.append("  verdict      (pending)")
        if self.action_at is not None:
            lines.append(f"  action       {self.action} at t={self.action_at:.4f}s")
        return "\n".join(lines)


class ProvenanceStore:
    """Mints and updates provenance records; persists them to the SDL."""

    def __init__(self, metrics=None, sdl=None) -> None:
        self.sdl = sdl
        self._records: Dict[int, ProvenanceRecord] = {}
        self._next_id = 1
        self._minted_counter = (
            metrics.counter("slo.provenance_records_total", help="evidence chains minted")
            if metrics is not None
            else None
        )
        # Model identity is stable between deployments: memoize per object.
        self._model_ids: Dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._records)

    def get(self, provenance_id: Optional[int]) -> Optional[ProvenanceRecord]:
        if provenance_id is None:
            return None
        return self._records.get(provenance_id)

    def _snapshot_ids(self, detector) -> tuple:
        key = id(detector)
        cached = self._model_ids.get(key)
        if cached is None:
            cached = self._model_ids[key] = (
                model_snapshot_id(detector),
                threshold_snapshot_id(detector),
            )
        return cached

    def mint(
        self,
        *,
        session_id: int,
        detected_at: float,
        score: float,
        threshold: float,
        record_indices: tuple,
        records,
        detector,
        scoring_path: str,
        arrival_ts: Optional[float] = None,
    ) -> ProvenanceRecord:
        """Create the record at alarm time, with the detection chain filled."""
        provenance_id = self._next_id
        self._next_id += 1
        model_id, threshold_id = self._snapshot_ids(detector)
        records = list(records)
        first_ts = records[0].timestamp if records else 0.0
        newest_ts = records[-1].timestamp if records else 0.0
        record = ProvenanceRecord(
            provenance_id=provenance_id,
            trace_id=f"{session_id:x}-{provenance_id:06d}",
            session_id=session_id,
            detected_at=detected_at,
            score=score,
            threshold=threshold,
            record_indices=tuple(record_indices),
            first_record_ts=first_ts,
            newest_record_ts=newest_ts,
            capture_digest=capture_digest(records),
            model_snapshot_id=model_id,
            threshold_snapshot_id=threshold_id,
            scoring_path=scoring_path,
        )
        record.stage_timings_s["capture"] = max(0.0, newest_ts - first_ts)
        if arrival_ts is not None:
            record.stage_timings_s["indication"] = max(0.0, arrival_ts - newest_ts)
            record.stage_timings_s["detection"] = max(0.0, detected_at - arrival_ts)
        else:
            record.stage_timings_s["detection"] = max(0.0, detected_at - newest_ts)
        self._records[provenance_id] = record
        if self._minted_counter is not None:
            self._minted_counter.inc()
        self._persist(record)
        return record

    def attach_verdict(
        self,
        provenance_id: Optional[int],
        *,
        model: str,
        verdict_text: str,
        top_attack: str,
        confirmed: bool,
        completed_at: float,
    ) -> Optional[ProvenanceRecord]:
        record = self.get(provenance_id)
        if record is None:
            return None
        record.verdict_model = model
        record.verdict_text = verdict_text
        record.verdict_top_attack = top_attack
        record.verdict_confirmed = confirmed
        record.verdict_completed_at = completed_at
        record.stage_timings_s["verdict"] = max(
            0.0, completed_at - record.detected_at
        )
        self._persist(record)
        return record

    def attach_action(
        self, provenance_id: Optional[int], *, action: str, action_at: float
    ) -> Optional[ProvenanceRecord]:
        record = self.get(provenance_id)
        if record is None:
            return None
        record.action = action
        record.action_at = action_at
        start = (
            record.verdict_completed_at
            if record.verdict_completed_at is not None
            else record.detected_at
        )
        record.stage_timings_s["action"] = max(0.0, action_at - start)
        self._persist(record)
        return record

    def _persist(self, record: ProvenanceRecord) -> None:
        if self.sdl is None:
            return
        value = {k: v for k, v in record.to_dict().items() if v is not None}
        try:
            self.sdl.set(SDL_PROVENANCE_NS, f"{record.provenance_id:06d}", value)
        except Exception:
            pass  # provenance persistence is best-effort; memory holds it
