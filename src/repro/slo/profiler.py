"""Continuous profiler: explicit hot-spot hooks plus a sampling thread.

Two complementary mechanisms, both stdlib-only:

- **explicit hooks** — instrumented call sites (the hotpath scorer,
  compiled kernels, trainfast trainers, sharded-SDL ops, the inference
  pool) report wall-clock durations under stable stage names. Coarse call
  sites use the :func:`profile_block` context manager; per-call-microsecond
  sites use the inline pattern below so an *inactive* profiler costs one
  module-attribute load and an ``is None`` branch (~tens of ns)::

      prof = profiler.CURRENT
      if prof is not None:
          t0 = time.perf_counter()
          ...work...
          prof.record("stage.name", time.perf_counter() - t0)
      else:
          ...work...

  Nested ``block()`` scopes attribute *self time* per stage (a parent's
  total includes its children; its self time does not).

- **sampling profiler** — a daemon thread walks ``sys._current_frames()``
  every ``interval_s``, folding each thread's Python stack into collapsed
  (flamegraph-format) counts. No instrumentation required; overhead is
  bounded by the sampling interval, not by call volume.

Activation is process-global (:func:`activate` / :func:`deactivate` set
:data:`CURRENT`): instrumented modules never need a profiler reference
threaded through their constructors, and the inactive cost stays a single
``None`` check on the hot paths.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

# The process-global active profiler. Instrumented call sites read this
# attribute directly; ``None`` means every hook is a no-op branch.
CURRENT: Optional["Profiler"] = None


def activate(profiler: "Profiler") -> "Profiler":
    """Install ``profiler`` as the process-global hook target."""
    global CURRENT
    CURRENT = profiler
    return profiler


def deactivate() -> None:
    """Disable all explicit hooks (they return to a single None check)."""
    global CURRENT
    CURRENT = None


class _Block:
    """One explicit scope; re-entrant via the profiler's stack."""

    __slots__ = ("profiler", "name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_Block":
        self.profiler._push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.profiler._pop(time.perf_counter() - self._start)
        return False


class _NullBlock:
    __slots__ = ()

    def __enter__(self) -> "_NullBlock":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_BLOCK = _NullBlock()


def profile_block(name: str):
    """Scope context manager; a shared no-op when no profiler is active."""
    prof = CURRENT
    if prof is None:
        return _NULL_BLOCK
    return prof.block(name)


class _StageStat:
    __slots__ = ("calls", "total_s", "self_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.max_s = 0.0


class Profiler:
    """Aggregates explicit-hook durations into per-stage self-time stats.

    Single accounting structure, two views: :meth:`stage_table` rolls up
    by stage name; :meth:`collapsed_stacks` keeps the full scope path
    (``parent;child;leaf total_us``) for flamegraph tooling.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, _StageStat] = {}
        # path tuple -> cumulative self seconds (flamegraph counts).
        self._paths: Dict[Tuple[str, ...], float] = {}
        self._local = threading.local()

    # -- scope bookkeeping -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> None:
        # Each frame: [name, child_time_accumulator].
        self._stack().append([name, 0.0])

    def _pop(self, elapsed: float) -> None:
        stack = self._stack()
        name, child_s = stack.pop()
        self_s = max(0.0, elapsed - child_s)
        stat = self._stages.get(name)
        if stat is None:
            stat = self._stages[name] = _StageStat()
        stat.calls += 1
        stat.total_s += elapsed
        stat.self_s += self_s
        if elapsed > stat.max_s:
            stat.max_s = elapsed
        path = tuple(frame[0] for frame in stack) + (name,)
        self._paths[path] = self._paths.get(path, 0.0) + self_s
        if stack:
            stack[-1][1] += elapsed

    # -- hook API ----------------------------------------------------------

    def block(self, name: str) -> _Block:
        return _Block(self, name)

    def record(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        """Report a measured duration without a scope (leaf hot paths).

        ``calls > 1`` folds a sampled measurement back in: a call site that
        times one in N calls reports ``elapsed * N`` with ``calls=N``.
        """
        stat = self._stages.get(name)
        if stat is None:
            stat = self._stages[name] = _StageStat()
        stat.calls += calls
        stat.total_s += elapsed_s
        stat.self_s += elapsed_s
        per_call = elapsed_s / calls if calls else elapsed_s
        if per_call > stat.max_s:
            stat.max_s = per_call
        stack = self._stack()
        path = tuple(frame[0] for frame in stack) + (name,)
        self._paths[path] = self._paths.get(path, 0.0) + elapsed_s

    # -- reporting ---------------------------------------------------------

    def stage_table(self) -> List[dict]:
        """Per-stage rows sorted by self time, heaviest first."""
        rows = [
            {
                "stage": name,
                "calls": stat.calls,
                "total_s": stat.total_s,
                "self_s": stat.self_s,
                "mean_us": (stat.total_s / stat.calls * 1e6) if stat.calls else 0.0,
                "max_us": stat.max_s * 1e6,
            }
            for name, stat in self._stages.items()
        ]
        rows.sort(key=lambda r: r["self_s"], reverse=True)
        return rows

    def collapsed_stacks(self) -> str:
        """Flamegraph collapsed format: ``a;b;c <self microseconds>``."""
        lines = []
        for path, self_s in sorted(self._paths.items()):
            us = int(round(self_s * 1e6))
            if us > 0:
                lines.append(f"{';'.join(path)} {us}")
        return "\n".join(lines)

    def render(self) -> str:
        rows = self.stage_table()
        if not rows:
            return "profiler: no samples"
        width = max(len(r["stage"]) for r in rows)
        lines = [
            f"{'stage':<{width}}  {'calls':>9}  {'total':>10}  {'self':>10}  "
            f"{'mean':>9}  {'max':>9}"
        ]
        for r in rows:
            lines.append(
                f"{r['stage']:<{width}}  {r['calls']:>9}  {r['total_s']:>9.4f}s  "
                f"{r['self_s']:>9.4f}s  {r['mean_us']:>7.1f}us  {r['max_us']:>7.1f}us"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._stages.clear()
        self._paths.clear()


class SamplingProfiler:
    """Wall-clock stack sampler over ``sys._current_frames()``.

    Start/stop bracket a daemon thread; each tick folds every thread's
    current Python stack (outermost first) into collapsed counts. The
    sampler's own thread is excluded.
    """

    def __init__(self, interval_s: float = 0.005, max_depth: int = 48) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.samples = 0
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="slo-sampling-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(exclude_thread=me)

    def sample_once(self, exclude_thread: Optional[int] = None) -> None:
        """Take one sample now (also used directly by deterministic tests)."""
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for ident, frame in frames.items():
                if ident == exclude_thread:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    code = frame.f_code
                    stack.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
                    frame = frame.f_back
                    depth += 1
                path = tuple(reversed(stack))
                self._counts[path] = self._counts.get(path, 0) + 1

    def collapsed_stacks(self) -> str:
        """Flamegraph collapsed format: ``frame;frame;frame <samples>``."""
        with self._lock:
            return "\n".join(
                f"{';'.join(path)} {count}"
                for path, count in sorted(self._counts.items())
            )
