"""Observability-overhead benchmark: the price of watching the hot path.

The whole point of ``repro.slo`` is that you can leave it on: the SLO
engine, the counters/heartbeats, the profiler hooks and the export plane
must cost the hot path almost nothing. This bench proves it by splitting
the fully-observed cost into its two very different components and gating
their sum at :data:`OVERHEAD_MAX_PCT` (the PR's <= 3% contract):

- **per-record hook overhead** — the inline counters and the sampled
  profiler hook inside
  :class:`~repro.hotpath.incremental.IncrementalLstmScorer`. A ~100ns
  delta on a ~25us record is far below shared-runner wall-clock noise at
  stream scale (identical back-to-back streams here differ by several
  percent), so the delta is measured where this machine *is* stable:
  paired best-of tight loops on **one scorer object** calling
  ``window_score`` against a static session, with the instrumentation
  toggled between sides (the toggled-off state *is* the seed code path,
  an ``is None`` branch). One object means no allocation/alignment luck;
  a static session means the loop body is a pure read path, so the
  plain/observed difference is exactly the hook work (scores counter inc
  + profiler branch + the 1-in-N sampled timing, amortized naturally by
  the loop). The ``push``-side hook is one inlined counter increment,
  priced from the micro table. The noisy end-to-end stream only supplies
  the *denominator* (plain us/record, best-of chunk floors), where even
  +-10% noise moves the gate by ~0.1 points.
- **amortized plane overhead** — the per-chunk/per-cadence work (latency
  histogram observe, :class:`~repro.slo.objectives.SloEngine` tick,
  :func:`~repro.slo.exporter.render_openmetrics`). Deterministic counts
  times micro-benchmarked per-call costs, divided across the records of
  one cadence interval — exact attribution instead of asking a noisy
  end-to-end delta to resolve tens of ns.

The run also re-verifies the zero-interference contract: the observed
scorer's per-record errors must be **bit-identical** to the plain
scorer's.

Gating mirrors the other benches: hard ceiling first, then drift against
the committed ``BENCH_obs.json`` baseline with an additive slack (overhead
is a noisy small number; a ratio gate would flap).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.hotpath.incremental import IncrementalLstmScorer
from repro.hotpath.settings import HotpathSettings
from repro.obs.metrics import MetricsRegistry
from repro.slo import profiler as _profiler
from repro.slo.exporter import render_openmetrics
from repro.slo.objectives import SloEngine, SloObjective
from repro.slo.profiler import Profiler
from repro.slo.settings import SloSettings

# Hard ceiling on the fully-observed hot path slowdown (the PR gate).
OVERHEAD_MAX_PCT = 3.0
# A fresh run may sit this many percentage points above the committed
# baseline's measured overhead before we call it creep (absolute slack:
# overhead is a small noisy number, a ratio gate would flap near zero).
BASELINE_SLACK_PCT = 2.0

_LATENCY_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0)


@dataclass
class ObsBenchConfig:
    window: int = 6
    feature_dim: int = 71
    lstm_hidden_dim: int = 64
    seed: int = 7
    # Records per denominator pass, chunked so the plain-us floor is a
    # min over many short (~3ms) timings rather than one long noisy one.
    stream_records: int = 4000
    chunk_records: int = 100
    repeats: int = 5  # best-of repeats for every micro-timing loop
    stream_passes: int = 3  # fresh-scorer passes pooled into the floor
    # Calls per tight loop when measuring the window_score hook delta;
    # alternating plain/observed loops this short stay within one machine
    # state, which is what makes the ~100ns delta resolvable here.
    hook_loop_calls: int = 500
    hook_loop_rounds: int = 3  # alternations per side, min taken
    # Plane cadences, in records: one histogram observe + one engine tick
    # per `tick_every`, one OpenMetrics render per `export_every` (mirrors
    # per-indication instrumentation + the sim-clock cadences of the live
    # stack). The amortized plane overhead divides the micro-benchmarked
    # per-call costs across these intervals.
    tick_every: int = 500
    export_every: int = 2000
    # Micro-benchmark repetitions for the primitive cost table.
    micro_reps: int = 2000

    @classmethod
    def quick(cls) -> "ObsBenchConfig":
        return cls(stream_records=2000, repeats=3, stream_passes=3, micro_reps=400)


@dataclass
class ObsBenchResult:
    per_record: dict = field(default_factory=dict)
    primitives: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "per_record": self.per_record,
            "primitives": self.primitives,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = ["obs bench" + (" (quick)" if self.meta.get("quick") else "")]
        p = self.per_record
        lines.append(
            f"  per-record hot path: plain {p['plain_us']:.2f}us; fully "
            f"observed overhead {p['overhead_pct']:+.2f}% "
            f"(hooks {p['hook_overhead_pct']:+.2f}% = {p['hook_ns']:.0f}ns, "
            f"plane {p['plane_overhead_pct']:+.2f}%, "
            f"ceiling {OVERHEAD_MAX_PCT:.1f}%)"
        )
        m = self.primitives
        lines.append(
            f"  primitives: hook inactive {m['hook_inactive_ns']:.0f}ns, "
            f"active {m['hook_active_ns']:.0f}ns; counter inc "
            f"{m['counter_inc_ns']:.0f}ns; histogram observe "
            f"{m['histogram_observe_ns']:.0f}ns"
        )
        lines.append(
            f"  planes: engine tick {m['engine_tick_us']:.1f}us "
            f"({m['objectives']} objectives), openmetrics render "
            f"{m['render_us']:.1f}us ({m['render_bytes']} bytes)"
        )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) measurement across repeats — noise-robust timing."""
    return min(run() for _ in range(repeats))


def _make_detector(cfg: ObsBenchConfig):
    from repro.ml.detector import LstmDetector

    return LstmDetector(
        window=cfg.window,
        feature_dim=cfg.feature_dim,
        hidden_dim=cfg.lstm_hidden_dim,
        seed=cfg.seed,
    )


def _bench_objectives() -> list:
    """Objectives over the families the observed stream actually feeds."""
    return [
        SloObjective(
            name="score-latency",
            kind="latency",
            target=0.99,
            metric="mobiwatch.inference_wall_s",
            threshold=0.01,
        ),
        SloObjective(
            name="score-throughput",
            kind="ratio",
            target=0.999,
            bad_metric="obsbench.slow_batches_total",
            total_metric="hotpath.incremental_window_scores_total",
        ),
    ]


def _bench_per_record(cfg: ObsBenchConfig, detector, result: ObsBenchResult) -> None:
    rng = np.random.default_rng(cfg.seed)
    rows = rng.normal(size=(cfg.stream_records, cfg.feature_dim)).astype(np.float32)
    settings = HotpathSettings(incremental=True)
    chunk = cfg.chunk_records

    # -- denominator: plain per-record cost (seed code path, no metrics) --
    def floor_pass() -> float:
        scorer = IncrementalLstmScorer(detector, settings)
        best = float("inf")
        for start in range(0, cfg.stream_records, chunk):
            block = rows[start : start + chunk]
            t0 = time.perf_counter()
            for row in block:
                scorer.push(1, row)
                scorer.window_score(1)
            per_record = (time.perf_counter() - t0) / len(block)
            if per_record < best:
                best = per_record
        return best

    floor_pass()  # warm-up (BLAS thread spin-up, allocator)
    plain_s = min(floor_pass() for _ in range(cfg.stream_passes))

    # -- hook delta: paired tight loops on one scorer, static session ----
    metrics = MetricsRegistry()
    scorer = IncrementalLstmScorer(detector, settings, metrics=metrics)
    wired = (scorer._steps_counter, scorer._scores_counter)
    prof = Profiler()
    for row in rows[:40]:
        scorer.push(1, row)

    def ws_loop(observed: bool) -> float:
        """Best-of per-call time of window_score with hooks toggled.

        Toggling the counters to None reproduces the seed code path bit
        for bit (`if counter is not None` is the permanent guard) on the
        very same object, and the session is static, so the loop body is
        a pure read path: the plain/observed delta is exactly the hook
        work, including the 1-in-N sampled profiler timing amortized
        across the loop's calls.
        """
        if observed:
            scorer._steps_counter, scorer._scores_counter = wired
            _profiler.activate(prof)
        else:
            scorer._steps_counter = None
            scorer._scores_counter = None
        try:

            def run() -> float:
                t0 = time.perf_counter()
                for _ in range(cfg.hook_loop_calls):
                    scorer.window_score(1)
                return (time.perf_counter() - t0) / cfg.hook_loop_calls

            run()  # warm-up
            return _best_of(cfg.repeats, run)
        finally:
            _profiler.deactivate()

    plain_call = min(ws_loop(False) for _ in range(cfg.hook_loop_rounds))
    observed_call = min(ws_loop(True) for _ in range(cfg.hook_loop_rounds))
    plain_call = min(plain_call, ws_loop(False))  # bracket: plain sees the end too
    ws_delta_s = max(0.0, observed_call - plain_call)

    # Per record the hot path pays one push-side counter increment (priced
    # from the micro table) plus the measured window_score-side delta.
    m = result.primitives
    hook_per_record_s = m["counter_inc_ns"] * 1e-9 + ws_delta_s
    hook_pct = hook_per_record_s / plain_s * 100.0

    # Amortized plane: deterministic per-cadence counts times the
    # micro-benchmarked per-call costs from _bench_primitives.
    plane_per_record_s = (
        m["histogram_observe_ns"] * 1e-9 + m["engine_tick_us"] * 1e-6
    ) / cfg.tick_every + (m["render_us"] * 1e-6) / cfg.export_every
    plane_pct = plane_per_record_s / plain_s * 100.0

    result.per_record = {
        "plain_us": plain_s * 1e6,
        "hook_ns": hook_per_record_s * 1e9,
        "hook_overhead_pct": hook_pct,
        "plane_overhead_pct": plane_pct,
        "overhead_pct": hook_pct + plane_pct,
        "floor_chunks": cfg.stream_passes * (cfg.stream_records // chunk),
    }

    # Zero-interference contract: full observability must not change one
    # bit of the scores the detector produces.
    plain_scorer = IncrementalLstmScorer(detector, settings)
    metrics = MetricsRegistry()
    observed_scorer = IncrementalLstmScorer(detector, settings, metrics=metrics)
    prof = Profiler()
    _profiler.activate(prof)
    try:
        for row in rows[: min(cfg.stream_records, 96)]:
            plain_scorer.push(1, row)
            observed_scorer.push(1, row)
            observed_scorer.window_score(1)
    finally:
        _profiler.deactivate()
    result.equality["observed_scores_exact"] = bool(
        np.array_equal(plain_scorer.record_errors(1), observed_scorer.record_errors(1))
    )


def _bench_primitives(cfg: ObsBenchConfig, result: ObsBenchResult) -> None:
    """Per-call cost of each observability primitive, for attribution."""
    reps = cfg.micro_reps

    def per_call(run_once: Callable[[], object]) -> float:
        def run() -> float:
            t0 = time.perf_counter()
            for _ in range(reps):
                run_once()
            return (time.perf_counter() - t0) / reps

        run()  # warm-up
        return _best_of(cfg.repeats, run)

    # profile_block: inactive = one global load + is-None check + a shared
    # no-op context manager.
    def hook() -> None:
        with _profiler.profile_block("bench.block"):
            pass

    inactive_s = per_call(hook)
    prof = Profiler()
    _profiler.activate(prof)
    try:
        active_s = per_call(hook)
    finally:
        _profiler.deactivate()

    metrics = MetricsRegistry()
    counter = metrics.counter("obsbench.micro_total")

    def inc() -> None:
        counter.value += 1

    counter_s = per_call(inc)
    hist = metrics.histogram("mobiwatch.inference_wall_s", buckets=_LATENCY_BUCKETS)
    hist_s = per_call(lambda: hist.observe(0.002))
    metrics.counter("obsbench.slow_batches_total")
    metrics.counter("hotpath.incremental_window_scores_total").value = reps

    wall = [0.0]
    engine = SloEngine(
        metrics,
        settings=SloSettings(enabled=True, eval_interval_s=0.05),
        objectives=_bench_objectives(),
        clock=lambda: wall[0],
    )

    def tick() -> None:
        wall[0] += 0.05
        engine.tick()

    tick_s = per_call(tick)
    rendered = render_openmetrics(metrics)
    render_s = per_call(lambda: render_openmetrics(metrics))

    result.primitives = {
        "hook_inactive_ns": inactive_s * 1e9,
        "hook_active_ns": active_s * 1e9,
        "counter_inc_ns": counter_s * 1e9,
        "histogram_observe_ns": hist_s * 1e9,
        "engine_tick_us": tick_s * 1e6,
        "objectives": len(engine.objectives),
        "render_us": render_s * 1e6,
        "render_bytes": len(rendered),
    }
    result.equality["openmetrics_terminated"] = rendered.endswith("# EOF\n")


def run_bench(config: Optional[ObsBenchConfig] = None, quick: bool = False) -> ObsBenchResult:
    """Measure the observed-vs-plain hot path and the primitive costs."""
    cfg = config or (ObsBenchConfig.quick() if quick else ObsBenchConfig())
    result = ObsBenchResult()
    result.meta = {
        "quick": quick,
        "window": cfg.window,
        "feature_dim": cfg.feature_dim,
        "stream_records": cfg.stream_records,
        "tick_every": cfg.tick_every,
        "export_every": cfg.export_every,
    }
    detector = _make_detector(cfg)
    _bench_primitives(cfg, result)  # first: per_record needs the plane costs
    _bench_per_record(cfg, detector, result)
    return result


def violations(result: ObsBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the ceiling and the committed baseline."""
    out: list = []
    for key, ok in result.equality.items():
        if not ok:
            out.append(f"equality contract broken: {key}")
    overhead = result.per_record.get("overhead_pct", float("inf"))
    if overhead > OVERHEAD_MAX_PCT:
        out.append(
            f"observability overhead {overhead:+.2f}% above the "
            f"{OVERHEAD_MAX_PCT:.1f}% ceiling"
        )
    if baseline:
        committed = baseline.get("per_record", {}).get("overhead_pct")
        if (
            isinstance(committed, (int, float))
            and overhead > committed + BASELINE_SLACK_PCT
        ):
            out.append(
                f"overhead {overhead:+.2f}% crept more than "
                f"{BASELINE_SLACK_PCT:.1f} points above the committed "
                f"baseline {committed:+.2f}%"
            )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: ObsBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
