"""SLO engine: declarative objectives, sliding windows, burn-rate alerts.

An :class:`SloObjective` declares a service-level indicator over metric
families that the stack already emits:

- ``latency`` — fraction of histogram observations at or under a
  threshold (e.g. ``mobiwatch.detection_latency_s <= 1.0``), read from the
  Prometheus-style cumulative ``le`` buckets
  (:meth:`~repro.obs.metrics.Histogram.count_under`);
- ``ratio`` — 1 minus a bad/total counter ratio (e.g. ingest drops over
  offered records), summed across every labeled series of each family.

The :class:`SloEngine` samples each objective's cumulative (good, total)
event counts on a fixed cadence and keeps a bounded ring of samples. From
the deltas it derives, per objective:

- **attainment** over the fast and slow sliding windows (good/total);
- **burn rate** per window: ``(1 - attainment) / (1 - target)`` — burn 1.0
  spends exactly the error budget, 14.4 over a 5s window is the classic
  fast-page signal (SRE multi-window multi-burn-rate alerting);
- an **alert state machine** — ``inactive -> pending`` on breach,
  ``pending -> firing`` once the breach persists ``pending_for_s``,
  ``firing -> inactive`` (resolved) once recovery persists
  ``resolve_after_s``. A recovery shorter than the resolve dwell keeps the
  alert firing and is counted as a suppressed flap.

Breach condition: the fast-window burn exceeding ``fast_burn_threshold``
*or* the slow-window burn exceeding ``slow_burn_threshold`` — the fast
window catches sudden budget exhaustion, the slow window a sustained slow
bleed that never trips the fast threshold.

Every transition is counted (``slo.alert_transitions_total``) and kept in
an event log for the ``slo alerts`` CLI; attainment and burn are exported
as gauges so the OpenMetrics plane carries the SLO state itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.slo.settings import SloSettings

_KINDS = ("latency", "ratio")

ALERT_INACTIVE = "inactive"
ALERT_PENDING = "pending"
ALERT_FIRING = "firing"


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over existing metric families."""

    name: str
    kind: str  # "latency" | "ratio"
    target: float  # attainment target in (0, 1), e.g. 0.99
    # latency kind: histogram family + threshold (seconds).
    metric: str = ""
    threshold: float = 0.0
    # ratio kind: bad / total counter families.
    bad_metric: str = ""
    total_metric: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and not self.metric:
            raise ValueError(f"objective {self.name!r}: latency kind needs a metric")
        if self.kind == "ratio" and not (self.bad_metric and self.total_metric):
            raise ValueError(
                f"objective {self.name!r}: ratio kind needs bad_metric and total_metric"
            )

    @property
    def budget(self) -> float:
        """Error budget: the tolerated bad-event fraction (1 - target)."""
        return 1.0 - self.target

    def sli_text(self) -> str:
        if self.kind == "latency":
            return f"{self.metric} <= {self.threshold:g}s"
        return f"{self.bad_metric} / {self.total_metric}"


def default_objectives(config=None) -> List[SloObjective]:
    """The deployment's stock objectives over metrics the stack emits.

    ``config`` (an ``XsecConfig``) only tunes thresholds; the families are
    the ones MobiWatch, the batcher, the pool and the analyzer register.
    """
    return [
        SloObjective(
            name="detection-latency",
            kind="latency",
            target=0.99,
            metric="mobiwatch.detection_latency_s",
            threshold=1.0,
            description="newest flagged telemetry -> alarm within the 1s near-RT budget",
        ),
        SloObjective(
            name="ingest-drop-rate",
            kind="ratio",
            target=0.999,
            bad_metric="batcher.dropped_total",
            total_metric="batcher.offered_total",
            description="telemetry records dropped by the bounded ingest queue",
        ),
        SloObjective(
            name="inference-wall",
            kind="latency",
            target=0.99,
            metric="mobiwatch.inference_wall_s",
            threshold=0.01,
            description="detector scoring wall-clock within 10ms per window",
        ),
        SloObjective(
            name="verdict-latency",
            kind="latency",
            target=0.95,
            metric="llm.response_latency_s",
            threshold=10.0,
            description="LLM round trip within the non-RT expert budget",
        ),
    ]


class AlertState:
    """Per-objective alert state machine with dwell and flap suppression."""

    __slots__ = ("state", "breach_since", "clear_since", "flaps")

    def __init__(self) -> None:
        self.state = ALERT_INACTIVE
        self.breach_since: Optional[float] = None
        self.clear_since: Optional[float] = None
        self.flaps = 0

    def update(self, now: float, breach: bool, settings: SloSettings) -> Optional[str]:
        """Advance the machine; returns the new state on a transition."""
        if breach:
            if self.state == ALERT_INACTIVE:
                self.state = ALERT_PENDING
                self.breach_since = now
                self.clear_since = None
                return ALERT_PENDING
            if self.state == ALERT_PENDING:
                since = self.breach_since if self.breach_since is not None else now
                if now - since >= settings.pending_for_s:
                    self.state = ALERT_FIRING
                    return ALERT_FIRING
                return None
            # firing: a breach during a brief recovery suppresses the flap.
            if self.clear_since is not None:
                self.clear_since = None
                self.flaps += 1
            return None
        if self.state == ALERT_PENDING:
            # The breach never matured: back to inactive without an event.
            self.state = ALERT_INACTIVE
            self.breach_since = None
            return None
        if self.state == ALERT_FIRING:
            if self.clear_since is None:
                self.clear_since = now
                return None
            if now - self.clear_since >= settings.resolve_after_s:
                self.state = ALERT_INACTIVE
                self.breach_since = None
                self.clear_since = None
                return "resolved"
        return None


@dataclass
class AlertEvent:
    """One recorded transition, kept for the ``slo alerts`` CLI."""

    time_s: float
    objective: str
    to_state: str
    fast_burn: float
    slow_burn: float


class _Track:
    """One objective's sample ring and alert state."""

    __slots__ = ("objective", "samples", "alert")

    def __init__(self, objective: SloObjective, capacity: int) -> None:
        self.objective = objective
        # (t, cumulative good, cumulative total), oldest first.
        self.samples: deque = deque(maxlen=capacity)
        self.alert = AlertState()


class SloEngine:
    """Evaluates objectives over a registry on an explicit tick cadence."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        settings: Optional[SloSettings] = None,
        objectives: Optional[List[SloObjective]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.metrics = metrics
        self.settings = settings or SloSettings(enabled=True)
        self.clock = clock or metrics.clock
        capacity = (
            int(self.settings.slow_window_s / self.settings.eval_interval_s) + 2
        )
        self._tracks = {
            obj.name: _Track(obj, capacity)
            for obj in (objectives if objectives is not None else default_objectives())
        }
        self.events: List[AlertEvent] = []
        self._transition_counters: dict = {}
        self.ticks = 0

    @property
    def objectives(self) -> List[SloObjective]:
        return [track.objective for track in self._tracks.values()]

    def add_objective(self, objective: SloObjective) -> None:
        capacity = (
            int(self.settings.slow_window_s / self.settings.eval_interval_s) + 2
        )
        self._tracks[objective.name] = _Track(objective, capacity)

    # -- SLI sampling ------------------------------------------------------

    def _cumulative(self, objective: SloObjective) -> tuple:
        """Cumulative (good, total) event counts across labeled series."""
        if objective.kind == "latency":
            good = total = 0
            for _, hist in self.metrics.family_series(objective.metric):
                good += hist.count_under(objective.threshold)
                total += hist.count
            return good, total
        bad = sum(
            series.value for _, series in self.metrics.family_series(objective.bad_metric)
        )
        total = sum(
            series.value
            for _, series in self.metrics.family_series(objective.total_metric)
        )
        return total - bad, total

    def _window(self, track: _Track, now: float, window_s: float) -> tuple:
        """(attainment, burn) over the trailing ``window_s`` of samples."""
        samples = track.samples
        if not samples:
            return 1.0, 0.0
        newest = samples[-1]
        # The youngest sample at or before the window start (fall back to
        # the oldest we kept: early in a run the window is the whole run).
        base = samples[0]
        cutoff = now - window_s
        for sample in reversed(samples):
            if sample[0] <= cutoff:
                base = sample
                break
        good = newest[1] - base[1]
        total = newest[2] - base[2]
        if total <= 0:
            return 1.0, 0.0
        attainment = good / total
        burn = (1.0 - attainment) / track.objective.budget
        return attainment, burn

    # -- ticking -----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """Sample every objective and advance the alert machines."""
        now = self.clock() if now is None else now
        self.ticks += 1
        s = self.settings
        for track in self._tracks.values():
            good, total = self._cumulative(track.objective)
            track.samples.append((now, good, total))
            fast_att, fast_burn = self._window(track, now, s.fast_window_s)
            slow_att, slow_burn = self._window(track, now, s.slow_window_s)
            labels = {"objective": track.objective.name}
            self.metrics.gauge("slo.attainment", labels=labels).set(slow_att)
            self.metrics.gauge(
                "slo.burn_rate", labels={**labels, "window": "fast"}
            ).set(fast_burn)
            self.metrics.gauge(
                "slo.burn_rate", labels={**labels, "window": "slow"}
            ).set(slow_burn)
            breach = (
                fast_burn >= s.fast_burn_threshold
                or slow_burn >= s.slow_burn_threshold
            )
            transition = track.alert.update(now, breach, s)
            if transition is not None:
                self._record_transition(
                    now, track.objective.name, transition, fast_burn, slow_burn
                )

    def _record_transition(
        self, now: float, objective: str, to_state: str, fast: float, slow: float
    ) -> None:
        self.events.append(AlertEvent(now, objective, to_state, fast, slow))
        key = (objective, to_state)
        counter = self._transition_counters.get(key)
        if counter is None:
            counter = self._transition_counters[key] = self.metrics.counter(
                "slo.alert_transitions_total",
                labels={"objective": objective, "to": to_state},
                help="alert state machine transitions",
            )
        counter.inc()

    # -- reporting ---------------------------------------------------------

    def alert_state(self, objective: str) -> str:
        return self._tracks[objective].alert.state

    def report(self) -> List[dict]:
        """Per-objective attainment/burn/alert rows for the CLI."""
        now = self.clock()
        s = self.settings
        rows = []
        for track in self._tracks.values():
            good, total = (
                track.samples[-1][1:] if track.samples else self._cumulative(track.objective)
            )
            fast_att, fast_burn = self._window(track, now, s.fast_window_s)
            slow_att, slow_burn = self._window(track, now, s.slow_window_s)
            rows.append(
                {
                    "objective": track.objective.name,
                    "sli": track.objective.sli_text(),
                    "target": track.objective.target,
                    "good": good,
                    "total": total,
                    "attainment": (good / total) if total else 1.0,
                    "fast_burn": fast_burn,
                    "slow_burn": slow_burn,
                    "alert": track.alert.state,
                    "flaps_suppressed": track.alert.flaps,
                }
            )
        return rows

    def render(self) -> str:
        rows = self.report()
        lines = [
            f"{'objective':<20} {'sli':<42} {'target':>7} {'attained':>9} "
            f"{'burn(fast)':>10} {'burn(slow)':>10} {'alert':>8}"
        ]
        for r in rows:
            lines.append(
                f"{r['objective']:<20} {r['sli']:<42} {r['target']:>6.1%} "
                f"{r['attainment']:>8.2%} {r['fast_burn']:>10.2f} "
                f"{r['slow_burn']:>10.2f} {r['alert']:>8}"
            )
        return "\n".join(lines)

    def render_alerts(self) -> str:
        if not self.events:
            return "no alert transitions recorded"
        lines = []
        for e in self.events:
            lines.append(
                f"t={e.time_s:8.2f}s  {e.objective:<20} -> {e.to_state:<8} "
                f"(burn fast={e.fast_burn:.2f} slow={e.slow_burn:.2f})"
            )
        return "\n".join(lines)
