"""Exporter plane: OpenMetrics text exposition, JSONL snapshots, health.

Three consumers of the shared :class:`~repro.obs.metrics.MetricsRegistry`:

- :func:`render_openmetrics` — Prometheus/OpenMetrics text exposition of
  every family (counters as ``_total``, histograms as cumulative
  ``_bucket{le=...}`` + ``_sum``/``_count``), terminated by ``# EOF`` so a
  real scraper accepts the output verbatim;
- :class:`ContinuousExporter` — appends one JSON snapshot line per
  sim-clock interval to a file. Ticks are *pre-scheduled* against a known
  run horizon (a self-rescheduling recurring event would keep the event
  queue non-empty forever and ``run(until=None)`` would never terminate);
- :class:`HealthScoreboard` — per-component up/degraded/down from
  registered probes (shard liveness, worker backlog) and heartbeat gauges
  (components report ``health.heartbeat_ts``; stale means down). The board
  reads the same liveness the sharded SDL's failover acts on, so "down"
  here and "failed over" there always agree.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

HEALTH_UP = "up"
HEALTH_DEGRADED = "degraded"
HEALTH_DOWN = "down"
_HEALTH_SCORE = {HEALTH_UP: 2.0, HEALTH_DEGRADED: 1.0, HEALTH_DOWN: 0.0}


def _sanitize(name: str) -> str:
    """Metric names use dots internally; exposition wants ``[a-zA-Z0-9_:]``."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _label_text(labels: dict, extra: Optional[str] = None) -> str:
    parts = [f'{_sanitize(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_openmetrics(metrics: MetricsRegistry) -> str:
    """OpenMetrics text exposition of every family in the registry."""
    lines: list[str] = []
    for name, kind, help_text, series_list in metrics.families():
        exposed = _sanitize(name)
        if kind == "counter":
            exposed_total = exposed + "_total"
            if help_text:
                lines.append(f"# HELP {exposed_total} {help_text}")
            lines.append(f"# TYPE {exposed_total} counter")
            for labels, counter in series_list:
                lines.append(f"{exposed_total}{_label_text(labels)} {counter.value:g}")
        elif kind == "gauge":
            if help_text:
                lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} gauge")
            for labels, gauge in series_list:
                lines.append(f"{exposed}{_label_text(labels)} {gauge.value:g}")
        else:  # histogram
            if help_text:
                lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} histogram")
            for labels, hist in series_list:
                cumulative = 0
                for i, bound in enumerate(hist.buckets):
                    cumulative += hist.bucket_counts[i]
                    le = 'le="%g"' % bound
                    lines.append(
                        f"{exposed}_bucket{_label_text(labels, le)} {cumulative}"
                    )
                inf_le = 'le="+Inf"'
                lines.append(
                    f"{exposed}_bucket{_label_text(labels, inf_le)} {hist.count}"
                )
                lines.append(f"{exposed}_sum{_label_text(labels)} {hist.total:g}")
                lines.append(f"{exposed}_count{_label_text(labels)} {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class ContinuousExporter:
    """JSONL metric snapshots on a sim-clock cadence, bounded per run."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        path: Optional[str] = None,
        interval_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.metrics = metrics
        self.path = path
        self.interval_s = interval_s
        self.snapshots = 0
        # In-memory ring of recent snapshot lines (the CLI/bench artifact
        # when no path is configured).
        self.lines: list[str] = []
        self.max_lines = 256

    def snapshot_once(self) -> str:
        """Take one snapshot line now; append to the file if configured."""
        line = json.dumps(self.metrics.snapshot(), sort_keys=True)
        self.snapshots += 1
        self.lines.append(line)
        if len(self.lines) > self.max_lines:
            del self.lines[: len(self.lines) - self.max_lines]
        if self.path:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
            except OSError:
                pass  # export is best-effort; the in-memory ring holds it
        return line

    def schedule_ticks(self, sim, until: Optional[float]) -> int:
        """Pre-schedule snapshot events on the simulator up to ``until``.

        Bounded: with no horizon there is nothing to schedule against (the
        caller takes a final snapshot after the run instead). Returns the
        number of ticks scheduled.
        """
        if until is None:
            return 0
        count = 0
        t = sim.now + self.interval_s
        while t <= until:
            sim.schedule_at(t, self.snapshot_once, name="slo.export")
            t += self.interval_s
            count += 1
        return count


class HealthScoreboard:
    """Up/degraded/down per component from probes and heartbeat gauges."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Optional[Callable[[], float]] = None,
        stale_after_s: float = 5.0,
        backlog_degraded: int = 64,
    ) -> None:
        self.metrics = metrics
        self.clock = clock or metrics.clock
        self.stale_after_s = stale_after_s
        self.backlog_degraded = backlog_degraded
        # component -> probe() returning {"up": bool, "backlog": float}.
        self._probes: Dict[str, Callable[[], dict]] = {}
        self._heartbeats: Dict[str, object] = {}

    # -- sources -----------------------------------------------------------

    def register_probe(self, component: str, probe: Callable[[], dict]) -> None:
        self._probes[component] = probe

    def watch_sharded_sdl(self, sdl) -> None:
        """One probe per shard, reading the liveness failover acts on."""
        for name in sdl.shard_names:
            shard_name = name

            def probe(n=shard_name):
                return {"up": sdl._shards[n].alive, "backlog": 0.0}

            self.register_probe(f"sdl.{shard_name}", probe)

    def watch_pool(self, pool, name: str = "pool") -> None:
        """One probe per inference worker, backlog from the queue gauge.

        A process-backed pool (``repro.runtime.ProcessScoringPool``)
        additionally reports real per-process liveness via its
        supervisor; the in-process pool's workers are always up.
        """
        supervisor = getattr(pool, "supervisor", None)
        if supervisor is not None:
            self.watch_supervisor(supervisor, name=name, backlog=pool.worker_backlog)
            return
        for worker in pool.worker_names:
            def probe(w=worker):
                return {"up": True, "backlog": float(pool.worker_backlog(w))}

            self.register_probe(f"{name}.{worker}", probe)

    def watch_supervisor(
        self,
        supervisor,
        name: str = "runtime",
        backlog: Optional[Callable[[str], float]] = None,
    ) -> None:
        """One probe per supervised OS process (repro.runtime).

        ``up`` is real process liveness (a worker in restart backoff or a
        crash loop reads as down); a stale heartbeat reads as degraded via
        the backlog channel so restarts are never triggered from here.
        """
        for worker in supervisor.worker_names():
            def probe(w=worker):
                health = supervisor.health()[w]
                lag = float(backlog(w)) if backlog is not None else 0.0
                if health["state"] == "degraded":
                    lag = max(lag, float(self.backlog_degraded))
                return {"up": health["state"] in ("up", "degraded"), "backlog": lag}

            self.register_probe(f"{name}.{worker}", probe)

    def heartbeat(self, component: str) -> None:
        """Record a liveness beat for a component (sim-clock stamped)."""
        gauge = self._heartbeats.get(component)
        if gauge is None:
            gauge = self._heartbeats[component] = self.metrics.gauge(
                "health.heartbeat_ts",
                labels={"component": component},
                help="sim time of the component's last heartbeat",
            )
        gauge.set(self.clock())

    # -- evaluation --------------------------------------------------------

    def statuses(self) -> Dict[str, str]:
        now = self.clock()
        out: Dict[str, str] = {}
        for component, probe in self._probes.items():
            state = probe()
            if not state.get("up", True):
                status = HEALTH_DOWN
            elif state.get("backlog", 0.0) >= self.backlog_degraded:
                status = HEALTH_DEGRADED
            else:
                status = HEALTH_UP
            out[component] = status
        # Heartbeats set directly on the shared registry (components never
        # need a scoreboard reference) join the explicitly registered ones.
        heartbeats = dict(self._heartbeats)
        for labels, gauge in self.metrics.family_series("health.heartbeat_ts"):
            component = labels.get("component", "")
            if component and component not in heartbeats:
                heartbeats[component] = gauge
        for component, gauge in heartbeats.items():
            age = now - gauge.value
            if age >= self.stale_after_s:
                status = HEALTH_DOWN
            elif age >= self.stale_after_s / 2:
                status = HEALTH_DEGRADED
            else:
                status = HEALTH_UP
            # A probe for the same component wins only if it is worse.
            existing = out.get(component)
            if existing is None or _HEALTH_SCORE[status] < _HEALTH_SCORE[existing]:
                out[component] = status
        for component, status in out.items():
            self.metrics.gauge(
                "health.status",
                labels={"component": component},
                help="2=up 1=degraded 0=down",
            ).set(_HEALTH_SCORE[status])
        return out

    def down_components(self) -> list:
        return sorted(c for c, s in self.statuses().items() if s == HEALTH_DOWN)

    def render(self) -> str:
        statuses = self.statuses()
        if not statuses:
            return "health scoreboard: no components registered"
        width = max(len(c) for c in statuses)
        return "\n".join(
            f"{component:<{width}}  {status}"
            for component, status in sorted(statuses.items())
        )
