"""repro.slo — SLO engine, continuous profiling, export, provenance.

Built on :mod:`repro.obs`, behind ``XsecConfig.slo`` flags whose defaults
keep the seed's outputs bit-identical. Four pillars (see the module
docstrings for details):

- :mod:`repro.slo.objectives` — declarative objectives evaluated over
  sliding windows with SRE-style multi-window burn-rate alerting and a
  pending -> firing -> resolved alert state machine;
- :mod:`repro.slo.profiler` — explicit ``profile_block()`` hooks plus a
  background sampling profiler, both emitting collapsed (flamegraph)
  stacks;
- :mod:`repro.slo.exporter` — OpenMetrics text exposition, JSONL
  continuous snapshots on the sim clock, and the per-shard/per-worker
  health scoreboard;
- :mod:`repro.slo.provenance` — the evidence chain behind every anomaly /
  verdict / action, rendered by ``python -m repro slo explain``.

Import discipline: this package imports only the stdlib and
:mod:`repro.obs` (plus :mod:`repro.telemetry`'s codec inside a function),
so ``core``/``hotpath``/``trainfast``/``scale`` can all depend on it
without cycles. The benchmark (:mod:`repro.slo.bench`) imports hotpath and
is intentionally *not* re-exported here.
"""

from repro.slo.exporter import (
    ContinuousExporter,
    HealthScoreboard,
    render_openmetrics,
)
from repro.slo.objectives import (
    AlertEvent,
    AlertState,
    SloEngine,
    SloObjective,
    default_objectives,
)
from repro.slo.profiler import Profiler, SamplingProfiler, profile_block
from repro.slo.provenance import (
    ProvenanceRecord,
    ProvenanceStore,
    capture_digest,
    model_snapshot_id,
    threshold_snapshot_id,
)
from repro.slo.runtime import SloRuntime
from repro.slo.settings import SloSettings

__all__ = [
    "SloSettings",
    "SloObjective",
    "SloEngine",
    "AlertState",
    "AlertEvent",
    "default_objectives",
    "Profiler",
    "SamplingProfiler",
    "profile_block",
    "ContinuousExporter",
    "HealthScoreboard",
    "render_openmetrics",
    "ProvenanceRecord",
    "ProvenanceStore",
    "capture_digest",
    "model_snapshot_id",
    "threshold_snapshot_id",
    "SloRuntime",
]
