"""SloRuntime: one object bundling the deployment's observability plane.

Constructed by :class:`~repro.core.framework.SixGXSec` when any
``XsecConfig.slo`` switch is on. Owns the SLO engine, the profilers, the
continuous exporter and the health scoreboard, and knows how to schedule
their sim-clock ticks *bounded to a run horizon* — a recurring
self-rescheduling event would keep the queue non-empty and break
``run(until=None)`` termination, so ticks are pre-scheduled per ``run``
call and a final evaluation happens in :meth:`finalize`.

This module deliberately imports nothing from ``repro.core`` — it receives
plain objects (a metrics registry, a clock, xApps to watch), so the import
graph stays acyclic: ``core`` imports ``slo``, never the reverse.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.slo import profiler as profiler_mod
from repro.slo.exporter import ContinuousExporter, HealthScoreboard
from repro.slo.objectives import SloEngine, SloObjective
from repro.slo.profiler import Profiler, SamplingProfiler
from repro.slo.provenance import ProvenanceStore
from repro.slo.settings import SloSettings


class SloRuntime:
    """The assembled observability plane of one deployment."""

    def __init__(
        self,
        settings: SloSettings,
        metrics: MetricsRegistry,
        clock: Optional[Callable[[], float]] = None,
        objectives: Optional[List[SloObjective]] = None,
        sdl=None,
    ) -> None:
        self.settings = settings
        self.metrics = metrics
        self.clock = clock or metrics.clock
        self.engine: Optional[SloEngine] = None
        self.scoreboard: Optional[HealthScoreboard] = None
        self.provenance: Optional[ProvenanceStore] = None
        if settings.enabled:
            self.engine = SloEngine(
                metrics, settings=settings, objectives=objectives, clock=self.clock
            )
            self.scoreboard = HealthScoreboard(
                metrics,
                clock=self.clock,
                stale_after_s=settings.heartbeat_stale_s,
                backlog_degraded=settings.backlog_degraded,
            )
            self.provenance = ProvenanceStore(metrics=metrics, sdl=sdl)
        self.profiler: Optional[Profiler] = None
        if settings.profiler:
            self.profiler = profiler_mod.activate(Profiler())
        self.sampler: Optional[SamplingProfiler] = None
        if settings.sampling_profiler:
            self.sampler = SamplingProfiler(interval_s=settings.sampling_interval_s)
            self.sampler.start()
        self.exporter: Optional[ContinuousExporter] = None
        if settings.export_interval_s > 0:
            self.exporter = ContinuousExporter(
                metrics,
                path=settings.export_path,
                interval_s=settings.export_interval_s,
            )

    # -- sim wiring --------------------------------------------------------

    def schedule_ticks(self, sim, until: Optional[float]) -> int:
        """Pre-schedule engine + exporter ticks up to the run horizon."""
        scheduled = 0
        if self.engine is not None and until is not None:
            t = sim.now + self.settings.eval_interval_s
            while t <= until:
                sim.schedule_at(t, self.engine.tick, name="slo.tick")
                t += self.settings.eval_interval_s
                scheduled += 1
        if self.exporter is not None:
            scheduled += self.exporter.schedule_ticks(sim, until)
        return scheduled

    def finalize(self) -> None:
        """Final evaluation after a run (and a last export snapshot)."""
        if self.engine is not None:
            self.engine.tick()
        if self.scoreboard is not None:
            self.scoreboard.statuses()
        if self.exporter is not None:
            self.exporter.snapshot_once()

    def shutdown(self) -> None:
        """Stop background sampling and release the global profiler hook."""
        if self.sampler is not None:
            self.sampler.stop()
        if self.profiler is not None and profiler_mod.CURRENT is self.profiler:
            profiler_mod.deactivate()

    # -- artifacts ---------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """Hook-profiler stacks, plus sampler stacks when enabled."""
        parts = []
        if self.profiler is not None:
            stacks = self.profiler.collapsed_stacks()
            if stacks:
                parts.append(stacks)
        if self.sampler is not None:
            stacks = self.sampler.collapsed_stacks()
            if stacks:
                parts.append(stacks)
        return "\n".join(parts)
