"""Content-addressed dataset cache: skip re-encoding identical captures.

Featurizing a capture is the slowest stage of an experiment sweep: the
:class:`~repro.telemetry.features.StreamingEncoder` walks every record
through Python-level featurization, and every sweep configuration
re-encodes the *same* benign/attack captures. The cache memoizes that work
on **content**, in two levels:

- **per-record matrices**, keyed on ``(capture digest, FeatureSpec)`` —
  sweep configurations that share a feature spec but vary the window size
  re-window one encode instead of re-running the encoder;
- **windowed datasets**, keyed on ``(capture digest, FeatureSpec, window,
  mode)`` — a repeated configuration is a pure dictionary lookup.

The capture digest is the SHA-256 of the fast TLV encoding of the series'
records (:mod:`repro.telemetry.encoder`), so the key follows the *bytes of
the capture*: a different record stream — even one generated into the same
variable, or re-ordered — is a different key and can never alias a stale
entry. There is no invalidation protocol to get wrong.

Cached arrays are marked read-only before they are shared: every caller
sees the same buffers, and anyone who needs to mutate must copy. With
``cache_dir`` set, per-record matrices additionally persist to ``.npy``
files so the encode survives across processes and runs.
"""

from __future__ import annotations

import hashlib
import weakref
from pathlib import Path
from typing import Optional

import numpy as np

from repro.telemetry import encoder as telemetry_encoder

# Digest memo: hashing a series costs one full TLV encode, so remember it
# per live series object. Weak keys mean a dropped series frees its entry;
# a *new* series object (even with identical content) just re-hashes to
# the same digest, so content addressing is preserved. The one assumption
# is that a series' records are not mutated in place after first use —
# true everywhere in the repo (captures are generated once, then read).
_DIGEST_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def series_digest(series) -> str:
    """SHA-256 of the series' records under the fast TLV codec."""
    try:
        cached = _DIGEST_MEMO.get(series)
    except TypeError:  # unhashable/unweakrefable series: always re-hash
        cached = None
    if cached is not None:
        return cached
    payload = telemetry_encoder.encode_batch(list(series.records))
    digest = hashlib.sha256(payload).hexdigest()
    try:
        _DIGEST_MEMO[series] = digest
    except TypeError:
        pass
    return digest


def spec_key(spec) -> str:
    """Stable short key for a FeatureSpec (frozen dataclass => stable repr)."""
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()[:16]


class DatasetCache:
    """Two-level content-addressed cache for encoded telemetry datasets.

    Thread the same instance through
    :meth:`~repro.telemetry.features.WindowedDataset.from_series` (its
    ``cache=`` keyword), :meth:`LabeledDataset.build`, or
    :meth:`CollectedDataset.labeled` — all take the cache by duck type, so
    the telemetry layer never imports this package.
    """

    def __init__(self, cache_dir: Optional[str] = None, metrics=None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._matrices: dict = {}
        self._datasets: dict = {}
        self.hits = 0
        self.misses = 0
        # Optional repro.obs mirror of the plain counters above.
        self._hit_counter = None
        self._miss_counter = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, metrics) -> None:
        """Mirror hit/miss counts into a repro.obs registry."""
        self._hit_counter = metrics.counter(
            "trainfast.cache_hits_total", help="dataset-cache hits"
        )
        self._miss_counter = metrics.counter(
            "trainfast.cache_misses_total", help="dataset-cache misses (encodes)"
        )

    def _count_hit(self) -> None:
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()

    def _count_miss(self) -> None:
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()

    # -- stats -------------------------------------------------------------

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "matrices": len(self._matrices),
            "datasets": len(self._datasets),
        }

    def clear(self) -> None:
        self._matrices.clear()
        self._datasets.clear()

    # -- level 1: per-record feature matrices ------------------------------

    def record_matrix(self, series, spec, digest: Optional[str] = None) -> np.ndarray:
        """The encoded ``[M, spec.dim]`` matrix for a series (read-only)."""
        if digest is None:
            digest = series_digest(series)
        key = (digest, spec_key(spec))
        matrix = self._matrices.get(key)
        if matrix is None and self.cache_dir is not None:
            matrix = self._load_matrix(key)
            if matrix is not None:
                self._matrices[key] = matrix
        if matrix is not None:
            self._count_hit()
            return matrix
        self._count_miss()
        matrix = spec.encode_series(series)
        matrix.setflags(write=False)
        self._matrices[key] = matrix
        if self.cache_dir is not None:
            self._store_matrix(key, matrix)
        return matrix

    # -- level 2: windowed datasets ----------------------------------------

    def windowed(self, series, spec, window: int, mode: str, builder):
        """Memoized ``builder(series, spec, window, mode, per_record)``.

        ``builder`` is ``WindowedDataset._assemble`` (passed in by
        ``from_series`` so this module needs no telemetry import at call
        time). The returned dataset's arrays are read-only and shared
        between every caller that hits the same key.
        """
        digest = series_digest(series)
        key = (digest, spec_key(spec), int(window), mode)
        dataset = self._datasets.get(key)
        if dataset is not None:
            self._count_hit()
            return dataset
        per_record = self.record_matrix(series, spec, digest=digest)
        dataset = builder(series, spec, window, mode, per_record)
        dataset.windows.setflags(write=False)
        self._datasets[key] = dataset
        return dataset

    # -- optional disk layer -----------------------------------------------

    def _matrix_path(self, key) -> Path:
        digest, spec_part = key
        return self.cache_dir / f"records-{digest[:24]}-{spec_part}.npy"

    def _load_matrix(self, key) -> Optional[np.ndarray]:
        try:
            matrix = np.load(self._matrix_path(key))
        except (OSError, ValueError):
            return None
        matrix.setflags(write=False)
        return matrix

    def _store_matrix(self, key, matrix: np.ndarray) -> None:
        path = self._matrix_path(key)
        try:
            tmp = path.with_suffix(".tmp.npy")
            np.save(tmp, matrix)
            tmp.replace(path)
        except OSError:
            pass  # disk layer is best-effort; memory layer already holds it
