"""Training-path benchmark: trainer throughput, sweep wall-clock, cache.

The training-side mirror of :mod:`repro.hotpath.bench`. Four measurements,
one per trainfast layer plus the end-to-end story:

- **trainer epoch throughput** — the seed ``Autoencoder.fit`` /
  ``LstmPredictor.fit`` loops vs the compiled float32 kernels, in
  epochs/second on §4-sized models (float64 kernel throughput reported
  alongside);
- **sweep wall-clock** — an 8-configuration window-ablation sweep over
  pre-generated captures: strictly serial seed evaluation vs the full fast
  stack (4 sweep workers + compiled float32 training and scoring +
  content-addressed dataset cache);
- **worker scaling** — the same fast sweep at 1 worker vs 4 workers. Only
  machines with >= 4 CPUs can show (or gate) near-linear scaling; on
  smaller boxes the measurement is recorded as unavailable;
- **cache** — building the same labeled dataset twice with one cache: the
  second build must be a pure lookup.

Every run re-verifies the equality contracts: float64 compiled training
is bit-identical to the seed loops (losses and weights), and a parallel
float64 sweep returns exactly the serial seed sweep's rows.
:func:`violations` gates a result against the hard speedup floors and the
committed ``BENCH_trainfast.json`` baseline, so CI fails when a change
regresses the training path.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.ml.autoencoder import Autoencoder
from repro.ml.lstm import LstmPredictor
from repro.telemetry.features import FeatureSpec
from repro.trainfast.cache import DatasetCache
from repro.trainfast.settings import TrainfastSettings
from repro.trainfast.trainer import compile_trainer

# Hard floors from the perf-trajectory acceptance gates.
TRAINER_SPEEDUP_MIN = 2.0
# Quick smoke runs gate the trainers against this slacked floor: a single
# best-of-5 pass on a shared/time-sliced host still carries one-sided
# scheduler noise of ~10-15%, and the true f32 LSTM ratio (~2.0-2.2x)
# sits right on the full floor. Full runs — and the committed baseline —
# always gate the real 2.0x.
TRAINER_SPEEDUP_SMOKE_MIN = 1.7
SWEEP_SPEEDUP_MIN = 2.5
# The 2.5x sweep floor assumes the host can actually run the sweep workers
# in parallel. With fewer CPUs than workers the fan-out degenerates to
# time-slicing and the remaining win is kernels + cache minus pool
# overhead, so constrained hosts gate against this serial floor instead.
SWEEP_SPEEDUP_SERIAL_MIN = 1.3
# Near-linear scaling to 4 workers; only gated where >= 4 CPUs exist.
SCALING_EFFICIENCY_MIN = 0.55
CACHE_HIT_SPEEDUP_MIN = 5.0
# A fresh run may regress this far below the committed baseline's measured
# ratio before we call it a regression (shared-runner noise allowance).
BASELINE_SLACK = 0.5


@dataclass
class TrainfastBenchConfig:
    window: int = 6
    feature_dim: int = 71
    ae_hidden_dim: int = 128
    ae_latent_dim: int = 24
    lstm_hidden_dim: int = 64
    seed: int = 7
    # Trainer throughput measurement.
    ae_rows: int = 800
    lstm_rows: int = 400
    trainer_epochs: int = 3
    repeats: int = 5  # interleaved best-of repeats for every timing loop
    # Sweep measurement: 8 window-ablation configs over small captures.
    sweep_windows: tuple = (3, 4, 5, 6, 7, 8, 10, 12)
    sweep_epochs: int = 40
    sweep_workers: int = 4
    sweep_repeats: int = 2
    benign_duration_s: float = 60.0
    attack_duration_s: float = 45.0
    # Equality sweep (small, exact): windows + epochs.
    equality_windows: tuple = (4, 6)
    equality_epochs: int = 8

    @classmethod
    def quick(cls) -> "TrainfastBenchConfig":
        # Same workload *shapes* as the full run (shrinking the per-batch
        # work shifts the ratios under the floors — fixed per-epoch costs
        # stop amortizing) and the same trainer repeats (the trainer
        # timings are cheap, and best-of-5 is what rides out one-sided
        # scheduler noise); only the expensive sweep shrinks.
        return cls(
            sweep_windows=(4, 6, 8, 10),
            sweep_repeats=1,
            equality_epochs=4,
        )


@dataclass
class TrainfastBenchResult:
    trainers: dict = field(default_factory=dict)
    sweep: dict = field(default_factory=dict)
    scaling: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "trainers": self.trainers,
            "sweep": self.sweep,
            "scaling": self.scaling,
            "cache": self.cache,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = ["trainfast bench" + (" (quick)" if self.meta.get("quick") else "")]
        for name, t in self.trainers.items():
            lines.append(
                f"  {name} training: seed {t['seed_eps']:.2f} ep/s -> compiled f32 "
                f"{t['compiled_f32_eps']:.2f} ep/s ({t['speedup']:.2f}x, floor "
                f"{t.get('floor', TRAINER_SPEEDUP_MIN):.1f}x); "
                f"f64 {t['compiled_f64_eps']:.2f} ep/s"
            )
        s = self.sweep
        if s:
            floor = s.get("floor", SWEEP_SPEEDUP_MIN)
            note = "" if s.get("parallel_capable") else ", serial host"
            lines.append(
                f"  {s['configs']}-config sweep: serial seed {s['seed_s']:.2f}s -> fast "
                f"({s['workers']} workers + f32 kernels + cache) {s['fast_s']:.2f}s "
                f"({s['speedup']:.2f}x, floor {floor:.1f}x{note})"
            )
        sc = self.scaling
        if sc.get("measured"):
            lines.append(
                f"  worker scaling: 1 worker {sc['one_worker_s']:.2f}s -> "
                f"{sc['workers']} workers {sc['many_workers_s']:.2f}s "
                f"({sc['scaling']:.2f}x, efficiency {sc['efficiency']:.0%})"
            )
        else:
            lines.append(
                f"  worker scaling: not measured ({sc.get('note', 'unavailable')})"
            )
        c = self.cache
        if c:
            lines.append(
                f"  dataset cache: first build {c['first_ms']:.1f}ms -> repeat "
                f"{c['repeat_ms']:.3f}ms ({c['speedup']:.0f}x)"
            )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _interleaved_best(repeats: int, runs: dict) -> dict:
    """Best-of timings for several labelled thunks, interleaved per repeat.

    Interleaving (seed, fast, seed, fast, ...) instead of back-to-back
    blocks keeps a noisy neighbour from biasing one side's whole series.
    """
    best = {name: float("inf") for name in runs}
    for _ in range(repeats):
        for name, thunk in runs.items():
            t0 = time.perf_counter()
            thunk()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def _bench_trainers(cfg: TrainfastBenchConfig, result: TrainfastBenchResult) -> None:
    rng = np.random.default_rng(cfg.seed)
    input_dim = cfg.window * cfg.feature_dim

    def make_ae() -> Autoencoder:
        return Autoencoder(
            input_dim,
            hidden_dim=cfg.ae_hidden_dim,
            latent_dim=cfg.ae_latent_dim,
            seed=cfg.seed,
        )

    x = rng.normal(size=(cfg.ae_rows, input_dim))
    seed_ae = make_ae()
    f32_ae = compile_trainer(make_ae(), "float32")
    f64_ae = compile_trainer(make_ae(), "float64")
    epochs = cfg.trainer_epochs
    for model in (seed_ae, f32_ae, f64_ae):  # warm-up: allocator, BLAS
        model.fit(x, epochs=1)
    best = _interleaved_best(
        cfg.repeats,
        {
            "seed": lambda: seed_ae.fit(x, epochs=epochs),
            "f32": lambda: f32_ae.fit(x, epochs=epochs),
            "f64": lambda: f64_ae.fit(x, epochs=epochs),
        },
    )
    result.trainers["autoencoder"] = {
        "seed_eps": epochs / best["seed"],
        "compiled_f32_eps": epochs / best["f32"],
        "compiled_f64_eps": epochs / best["f64"],
        "speedup": best["seed"] / best["f32"],
    }

    steps = cfg.window - 1
    sequences = rng.normal(size=(cfg.lstm_rows, steps, cfg.feature_dim))
    targets = rng.normal(size=(cfg.lstm_rows, steps, cfg.feature_dim))

    def make_lstm() -> LstmPredictor:
        return LstmPredictor(
            cfg.feature_dim,
            hidden_dim=cfg.lstm_hidden_dim,
            output_dim=cfg.feature_dim,
            seed=cfg.seed,
        )

    seed_lstm = make_lstm()
    f32_lstm = compile_trainer(make_lstm(), "float32")
    f64_lstm = compile_trainer(make_lstm(), "float64")
    for model in (seed_lstm, f32_lstm, f64_lstm):
        model.fit(sequences, targets, epochs=1)
    best = _interleaved_best(
        cfg.repeats,
        {
            "seed": lambda: seed_lstm.fit(sequences, targets, epochs=epochs),
            "f32": lambda: f32_lstm.fit(sequences, targets, epochs=epochs),
            "f64": lambda: f64_lstm.fit(sequences, targets, epochs=epochs),
        },
    )
    result.trainers["lstm"] = {
        "seed_eps": epochs / best["seed"],
        "compiled_f32_eps": epochs / best["f32"],
        "compiled_f64_eps": epochs / best["f64"],
        "speedup": best["seed"] / best["f32"],
    }


def _check_trainer_equality(cfg: TrainfastBenchConfig, result: TrainfastBenchResult) -> None:
    """float64 compiled training == seed training, losses and weights."""
    rng = np.random.default_rng(cfg.seed + 2)
    input_dim = cfg.window * cfg.feature_dim
    x = rng.normal(size=(200, input_dim))
    seed_ae = Autoencoder(input_dim, hidden_dim=64, latent_dim=16, seed=cfg.seed)
    fast_ae = Autoencoder(input_dim, hidden_dim=64, latent_dim=16, seed=cfg.seed)
    seed_report = seed_ae.fit(x, epochs=3)
    fast_report = compile_trainer(fast_ae, "float64").fit(x, epochs=3)
    ae_ok = seed_report.epoch_losses == fast_report.epoch_losses and all(
        np.array_equal(a.value, b.value)
        for a, b in zip(seed_ae.model.params(), fast_ae.model.params())
    )

    steps = cfg.window - 1
    sequences = rng.normal(size=(120, steps, cfg.feature_dim))
    targets = rng.normal(size=(120, steps, cfg.feature_dim))
    seed_lstm = LstmPredictor(cfg.feature_dim, hidden_dim=32, seed=cfg.seed)
    fast_lstm = LstmPredictor(cfg.feature_dim, hidden_dim=32, seed=cfg.seed)
    seed_report = seed_lstm.fit(sequences, targets, epochs=3)
    fast_report = compile_trainer(fast_lstm, "float64").fit(sequences, targets, epochs=3)
    lstm_ok = seed_report.epoch_losses == fast_report.epoch_losses and all(
        np.array_equal(a.value, b.value)
        for a, b in zip(seed_lstm.params(), fast_lstm.params())
    )
    result.equality["trainer_f64_exact"] = bool(ae_ok and lstm_ok)


def _sweep_captures(cfg: TrainfastBenchConfig):
    from repro.experiments.ablations import AblationConfig, _captures
    from repro.experiments.datasets import AttackDatasetConfig, BenignDatasetConfig

    config = AblationConfig(
        epochs=cfg.sweep_epochs,
        seed=cfg.seed,
        benign=BenignDatasetConfig(duration_s=cfg.benign_duration_s),
        attack=AttackDatasetConfig(duration_s=cfg.attack_duration_s),
    )
    return config, _captures(config)


def _sweep_once(config, captures, windows, trainfast: Optional[TrainfastSettings]) -> list:
    """One window-ablation sweep over pre-generated captures."""
    from repro.experiments.ablations import _evaluate
    from repro.trainfast.sweep import sweep_tools

    runner, cache = sweep_tools(trainfast)
    spec = FeatureSpec()
    if cache is not None:
        for capture in captures:
            cache.record_matrix(capture.series, spec)
    return runner.map(
        lambda w: _evaluate(
            spec,
            w,
            config.percentile,
            config,
            label=f"N={w}",
            captures=captures,
            cache=cache,
            trainfast=trainfast,
        ),
        windows,
    )


def _fast_settings(cfg: TrainfastBenchConfig, workers: int) -> TrainfastSettings:
    return TrainfastSettings(
        compiled_trainer=True,
        trainer_dtype="float32",
        compiled_scoring=True,
        sweep_workers=workers,
        cache=True,
    )


def _bench_sweep(cfg: TrainfastBenchConfig, result: TrainfastBenchResult) -> None:
    config, captures = _sweep_captures(cfg)
    windows = cfg.sweep_windows
    fast = _fast_settings(cfg, cfg.sweep_workers)
    # Warm-up: one config each way (BLAS spin-up, import costs, digests).
    _sweep_once(config, captures, windows[:1], None)
    _sweep_once(config, captures, windows[:1], fast)
    best = _interleaved_best(
        cfg.sweep_repeats,
        {
            "seed": lambda: _sweep_once(config, captures, windows, None),
            "fast": lambda: _sweep_once(config, captures, windows, fast),
        },
    )
    cpus = os.cpu_count() or 1
    parallel_capable = cpus >= cfg.sweep_workers
    result.sweep = {
        "configs": len(windows),
        "workers": cfg.sweep_workers,
        "epochs": cfg.sweep_epochs,
        "seed_s": best["seed"],
        "fast_s": best["fast"],
        "speedup": best["seed"] / best["fast"],
        "parallel_capable": parallel_capable,
        "floor": SWEEP_SPEEDUP_MIN if parallel_capable else SWEEP_SPEEDUP_SERIAL_MIN,
    }

    # Worker scaling: only meaningful with enough cores to run them.
    if parallel_capable:
        one = _fast_settings(cfg, 1)
        best = _interleaved_best(
            max(1, cfg.sweep_repeats),
            {
                "one": lambda: _sweep_once(config, captures, windows, one),
                "many": lambda: _sweep_once(config, captures, windows, fast),
            },
        )
        scaling = best["one"] / best["many"]
        result.scaling = {
            "measured": True,
            "workers": cfg.sweep_workers,
            "one_worker_s": best["one"],
            "many_workers_s": best["many"],
            "scaling": scaling,
            "efficiency": scaling / cfg.sweep_workers,
        }
    else:
        result.scaling = {
            "measured": False,
            "workers": cfg.sweep_workers,
            "note": f"host has {cpus} CPU(s); scaling needs >= {cfg.sweep_workers}",
        }

    # Equality: a parallel float64 fast sweep returns the serial seed rows.
    exact = TrainfastSettings(
        compiled_trainer=True,
        trainer_dtype="float64",
        compiled_scoring=True,
        sweep_workers=2,
        cache=True,
    )
    eq_config, eq_captures = _sweep_captures(cfg)
    eq_config.epochs = cfg.equality_epochs
    serial_rows = _sweep_once(eq_config, eq_captures, cfg.equality_windows, None)
    parallel_rows = _sweep_once(eq_config, eq_captures, cfg.equality_windows, exact)
    result.equality["sweep_parallel_f64_matches_serial"] = serial_rows == parallel_rows


def _bench_cache(cfg: TrainfastBenchConfig, result: TrainfastBenchResult) -> None:
    _, captures = _sweep_captures(cfg)
    benign = captures[0]
    spec = FeatureSpec()
    cache = DatasetCache()
    t0 = time.perf_counter()
    first = benign.labeled(spec, cfg.window, "benign", cache=cache)
    first_s = time.perf_counter() - t0
    from repro.telemetry.features import WindowedDataset

    t0 = time.perf_counter()
    # Time just the memoized windowing (labeled() also re-labels records,
    # which the cache deliberately leaves alone).
    repeat_windowed = cache.windowed(
        benign.series, spec, cfg.window, "session", builder=WindowedDataset._assemble
    )
    repeat_s = time.perf_counter() - t0
    hit = repeat_windowed is first.windowed and cache.hits > 0
    result.equality["cache_hit_on_reencode"] = bool(hit)
    result.cache = {
        "first_ms": first_s * 1e3,
        "repeat_ms": repeat_s * 1e3,
        "speedup": first_s / repeat_s if repeat_s > 0 else float("inf"),
        "hits": cache.hits,
        "misses": cache.misses,
    }


def run_bench(
    config: Optional[TrainfastBenchConfig] = None, quick: bool = False
) -> TrainfastBenchResult:
    """Run all measurements plus the equality re-verification."""
    cfg = config or (TrainfastBenchConfig.quick() if quick else TrainfastBenchConfig())
    result = TrainfastBenchResult()
    result.meta = {
        "quick": quick,
        "window": cfg.window,
        "feature_dim": cfg.feature_dim,
        "ae_rows": cfg.ae_rows,
        "lstm_rows": cfg.lstm_rows,
        "sweep_configs": len(cfg.sweep_windows),
        "sweep_epochs": cfg.sweep_epochs,
        "cpu_count": os.cpu_count() or 1,
    }
    _bench_trainers(cfg, result)
    trainer_floor = TRAINER_SPEEDUP_SMOKE_MIN if quick else TRAINER_SPEEDUP_MIN
    for t in result.trainers.values():
        t["floor"] = trainer_floor
    _check_trainer_equality(cfg, result)
    _bench_sweep(cfg, result)
    _bench_cache(cfg, result)
    return result


def violations(result: TrainfastBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the hard floors and the committed baseline."""
    out: list[str] = []
    for key, ok in result.equality.items():
        if not ok:
            out.append(f"equality contract broken: {key}")
    for name, t in result.trainers.items():
        floor = t.get("floor", TRAINER_SPEEDUP_MIN)
        if t["speedup"] < floor:
            out.append(
                f"{name} trainer speedup {t['speedup']:.2f}x below floor "
                f"{floor:.1f}x"
            )
    sweep_speedup = result.sweep.get("speedup", 0.0)
    sweep_floor = result.sweep.get("floor", SWEEP_SPEEDUP_MIN)
    if sweep_speedup < sweep_floor:
        out.append(
            f"sweep speedup {sweep_speedup:.2f}x below floor {sweep_floor:.1f}x"
        )
    if result.scaling.get("measured"):
        efficiency = result.scaling.get("efficiency", 0.0)
        if efficiency < SCALING_EFFICIENCY_MIN:
            out.append(
                f"worker scaling efficiency {efficiency:.0%} below floor "
                f"{SCALING_EFFICIENCY_MIN:.0%}"
            )
    if result.cache.get("speedup", 0.0) < CACHE_HIT_SPEEDUP_MIN:
        out.append(
            f"cache hit speedup {result.cache.get('speedup', 0.0):.1f}x below "
            f"floor {CACHE_HIT_SPEEDUP_MIN:.1f}x"
        )
    if baseline:
        for path, current in (
            *(
                (("trainers", name, "speedup"), t["speedup"])
                for name, t in result.trainers.items()
            ),
            (("sweep", "speedup"), sweep_speedup),
        ):
            node = baseline
            for part in path:
                node = node.get(part, {}) if isinstance(node, dict) else {}
            if isinstance(node, (int, float)) and current < node * BASELINE_SLACK:
                out.append(
                    f"{'.'.join(path)} {current:.2f}x regressed below "
                    f"{BASELINE_SLACK:.0%} of committed baseline {node:.2f}x"
                )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: TrainfastBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
