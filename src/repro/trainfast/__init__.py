"""Training fast path: compiled trainers, sweep fan-out, dataset cache.

The training-side twin of :mod:`repro.hotpath`. Three independent layers,
all behind :class:`TrainfastSettings` whose defaults keep the seed
training path bit-identical:

- :mod:`repro.trainfast.trainer` — compiled forward/backward/Adam kernels
  for the autoencoder and the LSTM (float64 = exact, float32 = fast);
- :mod:`repro.trainfast.sweep` — multiprocessing fan-out for
  ablation/experiment sweeps with submission-order, deterministic results;
- :mod:`repro.trainfast.cache` — content-addressed memoization of encoded
  telemetry datasets.

``repro.trainfast.bench`` measures all three against the committed
``BENCH_trainfast.json`` baseline (``python -m repro trainfast-bench``).
"""

from repro.trainfast.cache import DatasetCache, series_digest, spec_key
from repro.trainfast.settings import TrainfastSettings
from repro.trainfast.sweep import SweepRunner, derive_seed
from repro.trainfast.trainer import (
    CompiledAutoencoderTrainer,
    CompiledLstmTrainer,
    FlatAdam,
    compile_trainer,
    compiled_train_minibatch,
)

__all__ = [
    "CompiledAutoencoderTrainer",
    "CompiledLstmTrainer",
    "DatasetCache",
    "FlatAdam",
    "SweepRunner",
    "TrainfastSettings",
    "compile_trainer",
    "compiled_train_minibatch",
    "derive_seed",
    "series_digest",
    "spec_key",
]
