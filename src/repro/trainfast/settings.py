"""Configuration knobs for the training fast path (``repro.trainfast``).

Kept dependency-free (like :mod:`repro.hotpath.settings`) so every layer
can import it without cycles. **Every default preserves the seed's training
behaviour bit-for-bit**: the layer-object ``fit`` loops, serial sweeps, no
dataset memoization.

The three independent switches:

- ``compiled_trainer`` — route ``AnomalyDetector.fit`` through
  :mod:`repro.trainfast.trainer`: weights snapshotted into contiguous
  arrays, forward+backward through preallocated-buffer kernels
  (gate-permuted single-GEMM LSTM BPTT, fused Dense+ReLU autoencoder
  backprop), and an in-place Adam over one flat moment vector. The loss
  trajectory and the resulting weights are **bit-identical in float64** to
  the seed ``train_minibatch`` / ``Autoencoder.fit`` / ``LstmPredictor.fit``
  loops — enforced by tests/test_trainfast.py.
- ``sweep_workers`` — fan ablation/experiment configurations out across
  this many ``multiprocessing`` workers (:mod:`repro.trainfast.sweep`).
  ``0`` keeps the seed's strictly serial sweeps. Results are merged in
  submission order and each task re-seeds deterministically, so a parallel
  sweep returns exactly what the serial sweep returns.
- ``cache`` — content-addressed memoization of encoded telemetry
  (:mod:`repro.trainfast.cache`): per-record feature matrices keyed on
  (capture digest, FeatureSpec), window matrices additionally on
  (window, mode). Sweep configs that share preprocessing stop re-encoding
  identical telemetry. ``cache_dir`` adds a persistent on-disk layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class TrainfastSettings:
    """Knobs of the ``repro.trainfast`` subsystem (see module docstring)."""

    # Compiled forward/backward/Adam training kernels for detector.fit().
    compiled_trainer: bool = False
    # Kernel dtype for the compiled trainers. "float64" (default) is the
    # bit-identity contract mode; "float32" trades exactness (final-loss
    # relative error ~1e-8 on the paper workloads) for the documented
    # >=2x epoch throughput.
    trainer_dtype: str = "float64"
    # After a fit(), immediately snapshot the trained weights into the
    # fused inference kernels (repro.hotpath.compiled) in trainer_dtype, so
    # threshold fitting and subsequent scoring run compiled too. float64
    # keeps scoring bit-identical (the hotpath contract); float32 is the
    # fast mode. Off = the seed behaviour (score through the plain path
    # until the caller compiles explicitly).
    compiled_scoring: bool = False

    # Multiprocessing fan-out for ablation/experiment sweeps. 0 = serial
    # (the seed behaviour); N>0 runs sweep tasks across N workers.
    sweep_workers: int = 0

    # Content-addressed dataset cache for encoded window matrices.
    cache: bool = False
    # Optional persistent layer: directory for .npz cache entries. None
    # keeps the cache in-memory only.
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sweep_workers < 0:
            raise ValueError(
                f"sweep_workers must be >= 0, got {self.sweep_workers}"
            )
        if self.trainer_dtype not in ("float64", "float32"):
            raise ValueError(
                f"trainer_dtype must be 'float64' or 'float32', got {self.trainer_dtype!r}"
            )

    @property
    def any_enabled(self) -> bool:
        return (
            self.compiled_trainer
            or self.compiled_scoring
            or self.sweep_workers > 0
            or self.cache
        )
