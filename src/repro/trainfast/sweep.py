"""Multi-core sweep runner: fan experiment configurations across workers.

The repo's ablations and tables evaluate one configuration at a time —
train a detector, score benign/attack captures, emit a row — and every
configuration is independent of the others. :class:`SweepRunner` fans
those evaluations across ``multiprocessing`` workers while keeping the
results *indistinguishable* from the serial sweep:

- **fork inheritance, no capture pickling** — the pool uses the ``fork``
  start method, and the task function plus its closed-over context (the
  generated captures, a warm :class:`~repro.trainfast.cache.DatasetCache`)
  are stashed in a module global *before* the fork, so workers inherit
  them through copy-on-write memory instead of serializing megabytes of
  telemetry per task. Only the task index crosses the pipe going in, and
  only the small result row comes back.
- **submission-order merge** — ``Pool.map`` returns results positionally,
  so row order never depends on worker scheduling.
- **deterministic per-task seeding** — tasks must derive randomness from
  their own configuration (every repo experiment already seeds its
  detector/dataset from the config; :func:`derive_seed` is the helper for
  sweeps that need decorrelated per-index seeds). Nothing may read
  cross-task global RNG state, and then parallel == serial exactly.

Where ``fork`` is unavailable (non-POSIX platforms) or ``workers <= 1``,
``map`` degrades to the plain serial loop — same results, seed timing.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Optional, Sequence

from repro.slo import profiler as _profiler
from repro.trainfast.settings import TrainfastSettings

# Closure slot inherited by forked workers (see SweepRunner.map). Holding
# it in a module global instead of Pool initargs keeps arbitrary
# unpicklable context (captures, caches, lambdas) usable under fork.
_FORK_TASK: Optional[tuple] = None


def sweep_tools(settings: Optional[TrainfastSettings]):
    """(SweepRunner, DatasetCache or None) for optional settings.

    The one-liner experiment entry points (ablations, Table 2) call this to
    turn ``trainfast=None`` into the seed behaviour — a serial runner and
    no cache — and a populated :class:`TrainfastSettings` into its
    configured runner/cache pair.
    """
    from repro.trainfast.cache import DatasetCache

    if settings is None:
        return SweepRunner(0), None
    cache = DatasetCache(settings.cache_dir) if settings.cache else None
    return SweepRunner(settings.sweep_workers), cache


def derive_seed(base_seed: int, index: int) -> int:
    """Decorrelated deterministic seed for sweep task ``index``.

    Pure arithmetic on (base, index): the same value whether the task runs
    serially, on worker 0, or on worker 7.
    """
    return (int(base_seed) * 1_000_003 + index * 7_919 + 12_289) % (2**31 - 1)


def _run_indexed(index: int):
    fn, items = _FORK_TASK  # type: ignore[misc]
    return fn(items[index])


class SweepRunner:
    """Run ``fn`` over configurations, serially or across forked workers."""

    def __init__(self, workers: int = 0, metrics=None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._tasks_counter = None
        self._sweep_wall = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, metrics) -> None:
        """Count sweep tasks / time sweeps in a repro.obs registry."""
        self._tasks_counter = metrics.counter(
            "trainfast.sweep_tasks_total", help="experiment configurations run"
        )
        self._sweep_wall = metrics.histogram(
            "trainfast.sweep_wall_s",
            buckets=(0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0),
            help="whole-sweep wall clock per map() call",
        )

    @classmethod
    def from_settings(cls, settings: Optional[TrainfastSettings]) -> "SweepRunner":
        return cls(workers=settings.sweep_workers if settings else 0)

    @property
    def parallel_available(self) -> bool:
        return (
            self.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, fanned across the workers.

        Results come back in submission order. ``fn`` and ``items`` may
        close over anything (they are fork-inherited, never pickled); each
        *result* must be picklable — experiment rows are plain dataclasses.
        """
        global _FORK_TASK
        items = list(items)
        start = time.perf_counter()
        with _profiler.profile_block("trainfast.sweep"):
            workers = min(self.workers, len(items))
            if workers <= 1 or not self.parallel_available:
                results = [fn(item) for item in items]
            else:
                previous = _FORK_TASK
                _FORK_TASK = (fn, items)
                try:
                    context = multiprocessing.get_context("fork")
                    with context.Pool(processes=workers) as pool:
                        results = pool.map(
                            _run_indexed, range(len(items)), chunksize=1
                        )
                finally:
                    _FORK_TASK = previous
        if self._tasks_counter is not None:
            self._tasks_counter.inc(len(items))
            self._sweep_wall.observe(time.perf_counter() - start)
        return results
