"""Compiled training kernels: the training-side twin of ``repro.hotpath``.

The seed training loops pay costs the math never needs: a fresh allocation
for every intermediate of every batch, ``_StepCache`` objects and a
``np.concatenate`` per BPTT step, and an Adam step that allocates six
temporaries per parameter per batch. The trainers here run the *same*
arithmetic through preallocated buffers:

- **autoencoder** — fused Dense+ReLU forward/backward over the layer
  chain, ReLU masks kept from the forward pass, the first layer's unused
  input-gradient GEMM skipped;
- **LSTM** — the per-step input GEMMs of a batch hoisted into one
  ``[B*T, ...]`` GEMM, the three sigmoid gates regrouped into one
  contiguous ``[B, 3H]`` block (``[i,f,g,o] -> [i,f,o]+[g]``) so the gate
  nonlinearity is a single fused activation over contiguous memory,
  backward writing gate gradients straight into a ``[B, 4H]`` buffer in
  the seed's layout (no concatenate), and the final step's unused
  ``dz @ Wh.T`` skipped;
- **Adam** — moments, scratch, and gradients live in one flat contiguous
  vector updated with in-place ufuncs (persistent moment slots, zero
  allocation per step).

Like :mod:`repro.hotpath.compiled`, trainers take a ``dtype``:

- ``float64`` (default) carries a **bit-identity contract**, enforced by
  tests/test_trainfast.py: the per-epoch loss trajectory *and* the
  resulting weights are bit-identical to the seed loops
  (``Autoencoder.fit``, ``LstmPredictor.fit``, and
  ``repro.ml.training.train_minibatch`` including the validation split and
  early stopping). Every kernel mirrors the seed's op sequence — same GEMM
  shapes and association, same activation expressions, same Adam update
  order; reorderings are only applied where IEEE-754 guarantees the same
  bits (commuted multiplies, column-partitioned GEMMs, hoisted per-step
  GEMMs whose per-row dot products are unchanged, skipped results that
  feed nothing).
- ``float32`` runs the same kernels over single-precision weight
  snapshots (synced back to the model after ``fit``) for roughly another
  2x of memory bandwidth and SIMD width. Loss trajectories track the seed
  closely but are not bit-identical; ``AnomalyDetector`` routing always
  uses ``float64``.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.ml.autoencoder import Autoencoder, TrainReport
from repro.ml.lstm import LstmPredictor
from repro.ml.training import TrainConfig, TrainHistory
from repro.slo import profiler as _profiler

try:  # BLAS axpy (y += a*x in one pass, no temporary) for the f32 Adam
    from scipy.linalg.blas import saxpy as _saxpy
except ImportError:  # pragma: no cover - scipy always ships in the image
    _saxpy = None

_LOSS_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


class _ParamStore:
    """The trainable weights, as the kernels see them.

    In float64 the views *are* the model's ``Parameter.value`` arrays, so
    kernel updates land directly in the model (bit-identical, and safe to
    interleave with seed-path code). In float32 the views are slices of
    one flat single-precision snapshot; :meth:`sync_to_model` casts the
    trained weights back into the model's float64 parameters.
    """

    def __init__(self, params: list, dtype: str) -> None:
        self.params = list(params)
        self.dtype = np.dtype(dtype)
        if self.dtype == np.float64:
            self.views = [p.value for p in self.params]
            self._flat: Optional[np.ndarray] = None
        else:
            total = sum(p.value.size for p in self.params)
            self._flat = np.empty(total, dtype=self.dtype)
            self.views = []
            offset = 0
            for p in self.params:
                size = p.value.size
                view = self._flat[offset : offset + size].reshape(p.value.shape)
                view[...] = p.value
                self.views.append(view)
                offset += size

    def sync_to_model(self) -> None:
        if self._flat is not None:
            for p, view in zip(self.params, self.views):
                p.value[...] = view


class FlatAdam:
    """Adam over one flat parameter-sized vector, updated fully in place.

    Mirrors :class:`repro.ml.optim.Adam` op-for-op — ``m``/``v`` scaling
    and accumulation, bias correction, ``lr * m_hat / (sqrt(v_hat)+eps)``
    — so float64 parameter trajectories are bit-identical; it just never
    allocates after construction. Gradients are written into
    :attr:`grad_views` (one view per parameter, aligned with the store).
    """

    def __init__(
        self,
        store: _ParamStore,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.store = store
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        # float64 mirrors the seed op-for-op; float32 may fold scalar
        # factors together (same math, fewer memory passes).
        self.exact = store.dtype == np.float64
        dtype = store.dtype
        sizes = [w.size for w in store.views]
        total = sum(sizes)
        self._m = np.zeros(total, dtype=dtype)
        self._v = np.zeros(total, dtype=dtype)
        self._grad = np.zeros(total, dtype=dtype)
        self._s1 = np.empty(total, dtype=dtype)
        self._s2 = np.empty(total, dtype=dtype)
        self.grad_views: list[np.ndarray] = []
        self._update_views: list[np.ndarray] = []
        offset = 0
        for w, size in zip(store.views, sizes):
            self.grad_views.append(self._grad[offset : offset + size].reshape(w.shape))
            self._update_views.append(self._s2[offset : offset + size].reshape(w.shape))
            offset += size
        self._t = 0

    def step(self) -> None:
        """One in-place Adam update from the gradients in ``grad_views``."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        m, v, g, s1, s2 = self._m, self._v, self._grad, self._s1, self._s2
        if not self.exact and _saxpy is not None:
            # f32 fast mode: the moment accumulations as single-pass BLAS
            # axpy (y += a*x) instead of scale-into-scratch-then-add.
            np.multiply(m, self.beta1, out=m)
            _saxpy(g, m, a=1.0 - self.beta1)
            np.multiply(v, self.beta2, out=v)
            np.multiply(g, g, out=s1)
            _saxpy(s1, v, a=1.0 - self.beta2)
        else:
            # m = beta1*m + (1-beta1)*g  (seed: m *= b1; m += (1-b1)*grad)
            np.multiply(m, self.beta1, out=m)
            np.multiply(g, 1.0 - self.beta1, out=s1)
            np.add(m, s1, out=m)
            # v = beta2*v + (1-beta2)*g^2  (g**2 lowers to g*g for floats)
            np.multiply(v, self.beta2, out=v)
            np.multiply(g, g, out=s1)
            np.multiply(s1, 1.0 - self.beta2, out=s1)
            np.add(v, s1, out=v)
        if self.exact:
            # weight -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(m, bias1, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(s2, s1, out=s2)
            for w, update in zip(self.store.views, self._update_views):
                w -= update
        else:
            # Same update with the bias corrections folded into scalars:
            # sqrt(v/b2) == sqrt(v)/sqrt(b2), (m/b1)*lr == m*(lr/b1).
            np.sqrt(v, out=s1)
            np.multiply(s1, 1.0 / float(np.sqrt(bias2)), out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(m, s1, out=s2)
            np.multiply(s2, self.lr / bias1, out=s2)
            # s2 is the flat scratch the update views alias; the store's
            # flat weight vector takes the whole update in one op.
            self.store._flat -= self._s2


def _mirrored_loss(pred: np.ndarray, target: np.ndarray, diff: np.ndarray, sq: np.ndarray) -> float:
    """``mse_loss``'s scalar, computed into caller-owned buffers."""
    np.subtract(pred, target, out=diff)
    np.multiply(diff, diff, out=sq)
    return float(np.mean(sq))


def _loss_grad_inplace(diff: np.ndarray) -> np.ndarray:
    """Turn the prediction diff into ``mse_loss``'s gradient, in place.

    Seed: ``grad = 2.0 * diff / diff.size`` — multiply then divide, in that
    order, to keep the rounding identical.
    """
    np.multiply(diff, 2.0, out=diff)
    np.divide(diff, float(diff.size), out=diff)
    return diff


def _val_loss_only(pred: np.ndarray, target: np.ndarray) -> float:
    """``mse_loss`` scalar for a validation pass (gradient discarded)."""
    diff = pred - target
    return float(np.mean(diff * diff))


def _fast_loss_and_grad(pred: np.ndarray, target: np.ndarray, diff: np.ndarray) -> float:
    """float32-mode MSE: BLAS-dot scalar, one fused grad scale.

    Same math as ``mse_loss`` with the ``2/size`` factor folded into one
    multiply; not bit-identical, so only the non-exact path uses it.
    """
    np.subtract(pred, target, out=diff)
    flat = diff.ravel()
    loss = float(np.dot(flat, flat) / flat.size)
    np.multiply(diff, 2.0 / diff.size, out=diff)
    return loss


class CompiledAutoencoderTrainer:
    """Preallocated-buffer trainer for the seed :class:`Autoencoder`.

    In float64, ``fit`` mirrors :meth:`Autoencoder.fit` bit-for-bit: same
    shuffle stream, same batch schedule, same loss trajectory, same final
    weights. The model's parameters are updated in place (float32 syncs a
    single-precision snapshot back after ``fit``), so the autoencoder
    scores with the trained weights either way.
    """

    def __init__(self, autoencoder: Autoencoder, dtype: str = "float64") -> None:
        from repro.ml.layers import Dense, ReLU

        self.model = autoencoder
        self.dtype = np.dtype(dtype)
        self.input_dim = autoencoder.input_dim
        self.store = _ParamStore(autoencoder.model.params(), dtype)
        # (W view, b view, relu_after) per Dense, in forward order.
        self._chain: list[tuple] = []
        layers = autoencoder.model.layers
        dense_idx = 0
        for i, layer in enumerate(layers):
            if isinstance(layer, Dense):
                relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
                w = self.store.views[2 * dense_idx]
                b = self.store.views[2 * dense_idx + 1]
                self._chain.append((w, b, relu))
                dense_idx += 1
            elif not isinstance(layer, ReLU):
                raise TypeError(
                    f"unsupported autoencoder layer {type(layer).__name__}"
                )
        self._capacity = 0
        self._outs: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._gins: list[np.ndarray] = []
        self._diff: Optional[np.ndarray] = None
        self._sq: Optional[np.ndarray] = None
        self.epoch_wall_hist = None

    def attach_metrics(self, metrics) -> None:
        """Route per-epoch wall-clock cost into a repro.obs registry."""
        self.epoch_wall_hist = metrics.histogram(
            "trainfast.epoch_wall_s", help="compiled-trainer epoch wall clock"
        )

    def _ensure(self, rows: int) -> None:
        if rows <= self._capacity:
            return
        cap = max(rows, self._capacity * 2, 16)
        dt = self.dtype
        self._outs = [np.empty((cap, w.shape[1]), dtype=dt) for w, _, _ in self._chain]
        self._masks = [
            np.empty((cap, w.shape[1]), dtype=bool) for w, _, _ in self._chain
        ]
        # Input-gradient buffers; index 0 stays unused (the first layer's
        # input gradient feeds nothing and is skipped).
        self._gins = [np.empty((cap, w.shape[0]), dtype=dt) for w, _, _ in self._chain]
        self._diff = np.empty((cap, self.input_dim), dtype=dt)
        self._sq = np.empty((cap, self.input_dim), dtype=dt)
        self._capacity = cap

    # -- kernels -----------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> np.ndarray:
        """Fused Dense+ReLU chain; returns a view of the last buffer."""
        rows = x.shape[0]
        self._ensure(rows)
        cur = x
        for (w, b, relu), out_buf, mask_buf in zip(self._chain, self._outs, self._masks):
            out = out_buf[:rows]
            np.dot(cur, w, out=out)
            np.add(out, b, out=out)
            if relu:
                # x * (x > 0): the seed ReLU's exact expression.
                mask = mask_buf[:rows]
                np.greater(out, 0, out=mask)
                np.multiply(out, mask, out=out)
            cur = out
        return cur

    def _backward(self, x: np.ndarray, grad: np.ndarray, grad_views: list) -> None:
        """Accumulate parameter gradients into ``grad_views`` (W, b pairs).

        ``grad`` is consumed in place. The first layer's input-gradient
        GEMM (``grad @ W.T``) is skipped: the seed computes it only to
        return a value the training loop discards.
        """
        rows = x.shape[0]
        g = grad
        for li in range(len(self._chain) - 1, -1, -1):
            w, _, relu = self._chain[li]
            if relu:
                np.multiply(g, self._masks[li][:rows], out=g)
            layer_in = x if li == 0 else self._outs[li - 1][:rows]
            np.dot(layer_in.T, g, out=grad_views[2 * li])
            np.add.reduce(g, axis=0, out=grad_views[2 * li + 1])
            if li > 0:
                gin = self._gins[li][:rows]
                np.dot(g, w.T, out=gin)
                g = gin

    # -- training ----------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainReport:
        """Train to reconstruct ``x`` — :meth:`Autoencoder.fit`, compiled.

        ``rng`` defaults to the model's own shuffle stream so a detector
        alternating seed and compiled fits stays on one permutation
        sequence.
        """
        x = np.ascontiguousarray(x, dtype=self.dtype)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected [n, {self.input_dim}] inputs, got {x.shape}")
        if len(x) == 0:
            raise ValueError("cannot train on an empty dataset")
        rng = rng if rng is not None else self.model._shuffle_rng
        report = TrainReport()
        with _profiler.profile_block("trainfast.fit.autoencoder"):
            report.epoch_losses = _run_epochs_2d(self, x, x, epochs, batch_size, lr, rng)
        self.store.sync_to_model()
        return report


def _run_epochs_2d(
    trainer: CompiledAutoencoderTrainer,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int,
    batch_size: int,
    lr: float,
    rng: np.random.Generator,
    optimizer: Optional[FlatAdam] = None,
    on_epoch=None,
) -> list:
    """Shared mini-batch epochs over 2-D data for the autoencoder kernels."""
    n = len(inputs)
    optimizer = optimizer or FlatAdam(trainer.store, lr=lr)
    shuffled_x = np.empty_like(inputs)
    same = targets is inputs
    shuffled_y = shuffled_x if same else np.empty_like(targets)
    losses: list = []
    for _ in range(epochs):
        epoch_start = time.perf_counter()
        order = rng.permutation(n)
        np.take(inputs, order, axis=0, out=shuffled_x)
        if not same:
            np.take(targets, order, axis=0, out=shuffled_y)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            xb = shuffled_x[start : start + batch_size]
            yb = shuffled_y[start : start + batch_size]
            rows = xb.shape[0]
            pred = trainer._forward(xb)
            diff = trainer._diff[:rows]
            if optimizer.exact:
                loss = _mirrored_loss(pred, yb, diff, trainer._sq[:rows])
                _loss_grad_inplace(diff)
            else:
                loss = _fast_loss_and_grad(pred, yb, diff)
            trainer._backward(xb, diff, optimizer.grad_views)
            optimizer.step()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        _observe_epoch(trainer, time.perf_counter() - epoch_start)
        if on_epoch is not None and on_epoch(losses):
            break
    return losses


def _observe_epoch(trainer, elapsed_s: float) -> None:
    """Report one training epoch to the active profiler and the trainer's
    optional repro.obs histogram (cost: one None check each when unwired)."""
    prof = _profiler.CURRENT
    if prof is not None:
        prof.record("trainfast.epoch", elapsed_s)
    hist = getattr(trainer, "epoch_wall_hist", None)
    if hist is not None:
        hist.observe(elapsed_s)


class CompiledLstmTrainer:
    """Preallocated-buffer BPTT trainer for the seed :class:`LstmPredictor`.

    In float64, ``fit`` mirrors :meth:`LstmPredictor.fit` bit-for-bit. The
    forward pass hoists all per-step input GEMMs into one ``[B*T, ...]``
    GEMM and regroups the gate columns ``[i,f,g,o] -> [i,f,o] + [g]`` so
    the three sigmoid gates form one contiguous block (each GEMM output
    column depends only on its own weight column, so regrouping columns
    leaves every value bit-identical). The backward pass writes gate
    gradients straight into a ``[B, 4H]`` buffer laid out like the seed's
    ``np.concatenate([dzi, dzf, dzg, dzo])`` and runs the same three
    per-step GEMMs against the *original* weight layout, so every sum
    keeps the seed's accumulation order.
    """

    def __init__(self, model: LstmPredictor, dtype: str = "float64") -> None:
        self.model = model
        self.dtype = np.dtype(dtype)
        self._exact = self.dtype == np.float64
        self.input_dim = model.input_dim
        self.hidden_dim = model.hidden_dim
        self.output_dim = model.output_dim
        hd = self.hidden_dim
        self.store = _ParamStore(model.params(), dtype)
        self._wx, self._wh, self._b, self._head_w, self._head_b = self.store.views
        # Sigmoid-gate column group [i, f, o] (g = tanh handled separately).
        self._perm_sig = np.concatenate(
            [np.arange(0, 2 * hd), np.arange(3 * hd, 4 * hd)]
        )
        # Regrouped forward copies, refreshed after every optimizer step.
        dt = self.dtype
        self._wx_sig = np.ascontiguousarray(self._wx[:, self._perm_sig], dtype=dt)
        self._wh_sig = np.ascontiguousarray(self._wh[:, self._perm_sig], dtype=dt)
        self._b_sig = np.ascontiguousarray(self._b[self._perm_sig], dtype=dt)
        self._wx_g = np.ascontiguousarray(self._wx[:, 2 * hd : 3 * hd], dtype=dt)
        self._wh_g = np.ascontiguousarray(self._wh[:, 2 * hd : 3 * hd], dtype=dt)
        self._b_g = np.ascontiguousarray(self._b[2 * hd : 3 * hd], dtype=dt)
        self._capacity = 0
        self._steps = 0
        self._bufs: dict[str, np.ndarray] = {}
        self.epoch_wall_hist = None

    def attach_metrics(self, metrics) -> None:
        """Route per-epoch wall-clock cost into a repro.obs registry."""
        self.epoch_wall_hist = metrics.histogram(
            "trainfast.epoch_wall_s", help="compiled-trainer epoch wall clock"
        )

    def _refresh_grouped(self) -> None:
        hd = self.hidden_dim
        np.take(self._wx, self._perm_sig, axis=1, out=self._wx_sig)
        np.take(self._wh, self._perm_sig, axis=1, out=self._wh_sig)
        np.take(self._b, self._perm_sig, out=self._b_sig)
        self._wx_g[...] = self._wx[:, 2 * hd : 3 * hd]
        self._wh_g[...] = self._wh[:, 2 * hd : 3 * hd]
        self._b_g[...] = self._b[2 * hd : 3 * hd]

    def _ensure(self, rows: int, steps: int) -> None:
        if rows <= self._capacity and steps == self._steps:
            return
        cap = max(rows, self._capacity * 2 if steps == self._steps else rows, 16)
        hd, h3, h4 = self.hidden_dim, 3 * self.hidden_dim, 4 * self.hidden_dim
        od = self.output_dim
        dt = self.dtype
        self._bufs = {
            # Forward state, kept per step for BPTT. zs holds the three
            # sigmoid gates [i | f | o] contiguously; zg holds tanh'd g.
            "zx_sig": np.empty((cap * steps, h3), dtype=dt),
            "zx_g": np.empty((cap * steps, hd), dtype=dt),
            "zs": np.empty((steps, cap, h3), dtype=dt),
            "zg": np.empty((steps, cap, hd), dtype=dt),
            "zh": np.empty((cap, h3), dtype=dt),
            "c": np.empty((steps, cap, hd), dtype=dt),
            "tanh_c": np.empty((steps, cap, hd), dtype=dt),
            "hs": np.empty((cap, steps, hd), dtype=dt),
            "h": np.empty((cap, hd), dtype=dt),
            "cc": np.empty((cap, hd), dtype=dt),
            "tmp": np.empty((cap, hd), dtype=dt),
            # Head + loss.
            "pred": np.empty((cap * steps, od), dtype=dt),
            "diff": np.empty((cap * steps, od), dtype=dt),
            "sq": np.empty((cap * steps, od), dtype=dt),
            # Backward.
            "dh_all": np.empty((cap * steps, hd), dtype=dt),
            "dh": np.empty((cap, hd), dtype=dt),
            "dc": np.empty((cap, hd), dtype=dt),
            "e1": np.empty((cap, hd), dtype=dt),
            "e2": np.empty((cap, hd), dtype=dt),
        }
        if self._exact:
            # Per-step gate-grad buffer + per-step GEMM accumulators (the
            # seed's summation order).
            self._bufs["dz"] = np.empty((cap, h4), dtype=dt)
            self._bufs["s_wx"] = np.empty((self.input_dim, h4), dtype=dt)
            self._bufs["s_wh"] = np.empty((hd, h4), dtype=dt)
            self._bufs["s_b"] = np.empty(h4, dtype=dt)
        else:
            # All steps' gate grads kept so Wx/Wh/b gradients reduce to
            # one batched GEMM each after the BPTT loop.
            self._bufs["dz_all"] = np.empty((cap, steps, h4), dtype=dt)
            self._bufs["hprev"] = np.empty((cap, steps, hd), dtype=dt)
        self._capacity = cap
        self._steps = steps

    # -- kernels -----------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward over ``[B, T, D]``; fills the BPTT caches.

        Returns the ``[B*T, output_dim]`` prediction buffer (flat view).
        """
        rows, steps, _ = x.shape
        self._ensure(rows, steps)
        b = self._bufs
        hd, h3 = self.hidden_dim, 3 * self.hidden_dim
        # All per-step input GEMMs as one GEMM (per-row dots unchanged).
        flat_x = x.reshape(rows * steps, self.input_dim)
        zx_sig = b["zx_sig"][: rows * steps]
        zx_g = b["zx_g"][: rows * steps]
        np.dot(flat_x, self._wx_sig, out=zx_sig)
        np.dot(flat_x, self._wx_g, out=zx_g)
        zx_sig3 = zx_sig.reshape(rows, steps, h3)
        zx_g3 = zx_g.reshape(rows, steps, hd)
        h = b["h"][:rows]
        c = b["cc"][:rows]
        h.fill(0.0)
        c.fill(0.0)
        zh = b["zh"][:rows]
        tmp = b["tmp"][:rows]
        hs = b["hs"][:rows]
        for t in range(steps):
            zs = b["zs"][t][:rows]
            zg = b["zg"][t][:rows]
            # z = (xt @ Wx + h @ Wh) + b, in the seed's addition order,
            # column-partitioned into the [i|f|o] and [g] groups.
            np.dot(h, self._wh_sig, out=zh)
            np.add(zx_sig3[:, t, :], zh, out=zs)
            np.add(zs, self._b_sig, out=zs)
            np.dot(h, self._wh_g, out=tmp)
            np.add(zx_g3[:, t, :], tmp, out=zg)
            np.add(zg, self._b_g, out=zg)
            # Fused sigmoid over the contiguous [i | f | o] block.
            np.clip(zs, -60, 60, out=zs)
            np.negative(zs, out=zs)
            np.exp(zs, out=zs)
            np.add(zs, 1.0, out=zs)
            np.divide(1.0, zs, out=zs)
            np.tanh(zg, out=zg)
            # c = f * c + i * g
            i = zs[:, :hd]
            f = zs[:, hd : 2 * hd]
            o = zs[:, 2 * hd :]
            np.multiply(f, c, out=c)
            np.multiply(i, zg, out=tmp)
            np.add(c, tmp, out=c)
            b["c"][t][:rows] = c
            tanh_c = b["tanh_c"][t][:rows]
            np.tanh(c, out=tanh_c)
            np.multiply(o, tanh_c, out=h)
            hs[:, t, :] = h
        pred = b["pred"][: rows * steps]
        np.dot(hs.reshape(rows * steps, hd), self._head_w, out=pred)
        np.add(pred, self._head_b, out=pred)
        return pred

    def _backward(self, x: np.ndarray, grad_flat: np.ndarray, grad_views: list) -> None:
        """BPTT from ``dLoss/dPred`` (flat ``[B*T, od]``) into ``grad_views``.

        ``grad_views`` is aligned with ``model.params()``:
        ``[Wx, Wh, b, head.W, head.b]``. ``grad_flat`` is consumed.
        """
        rows, steps, _ = x.shape
        b = self._bufs
        hd = self.hidden_dim
        hs_flat = b["hs"][:rows].reshape(rows * steps, hd)
        # Head: one GEMM each for dW, db, and dh_all (the seed's Dense).
        np.dot(hs_flat.T, grad_flat, out=grad_views[3])
        np.add.reduce(grad_flat, axis=0, out=grad_views[4])
        dh_all = b["dh_all"][: rows * steps]
        np.dot(grad_flat, self._head_w.T, out=dh_all)
        dh_all3 = dh_all.reshape(rows, steps, hd)
        dh = b["dh"][:rows]
        dc = b["dc"][:rows]
        dh.fill(0.0)
        dc.fill(0.0)
        e1 = b["e1"][:rows]
        e2 = b["e2"][:rows]
        g_wx, g_wh, g_b = grad_views[0], grad_views[1], grad_views[2]
        exact = self._exact
        if exact:
            dz_step = b["dz"][:rows]
            s_wx, s_wh, s_b = b["s_wx"], b["s_wh"], b["s_b"]
            g_wx.fill(0.0)
            g_wh.fill(0.0)
            g_b.fill(0.0)
        else:
            dz_all = b["dz_all"][:rows]
        for t in range(steps - 1, -1, -1):
            zs = b["zs"][t][:rows]
            i = zs[:, :hd]
            f = zs[:, hd : 2 * hd]
            o = zs[:, 2 * hd :]
            g = b["zg"][t][:rows]
            tanh_c = b["tanh_c"][t][:rows]
            c_prev = b["c"][t - 1][:rows] if t > 0 else None
            np.add(dh, dh_all3[:, t, :], out=dh)
            # dc += (dh * o) * (1 - tanh_c^2)
            np.multiply(dh, o, out=e1)
            np.multiply(tanh_c, tanh_c, out=e2)
            np.subtract(1.0, e2, out=e2)
            np.multiply(e1, e2, out=e1)
            np.add(dc, e1, out=dc)
            # Gate gradients, written into dz in the seed's [i,f,g,o] order.
            dz = dz_step if exact else dz_all[:, t, :]
            dzi = dz[:, :hd]
            dzf = dz[:, hd : 2 * hd]
            dzg = dz[:, 2 * hd : 3 * hd]
            dzo = dz[:, 3 * hd :]
            # dzi = (dc*g) * i * (1-i)
            np.multiply(dc, g, out=e1)
            np.multiply(e1, i, out=dzi)
            np.subtract(1.0, i, out=e1)
            np.multiply(dzi, e1, out=dzi)
            # dzf = (dc*c_prev) * f * (1-f); c_prev is zeros at t == 0.
            if t > 0:
                np.multiply(dc, c_prev, out=e1)
            else:
                e1.fill(0.0)
            np.multiply(e1, f, out=dzf)
            np.subtract(1.0, f, out=e1)
            np.multiply(dzf, e1, out=dzf)
            # dzg = (dc*i) * (1-g^2)
            np.multiply(dc, i, out=e1)
            np.multiply(g, g, out=e2)
            np.subtract(1.0, e2, out=e2)
            np.multiply(e1, e2, out=dzg)
            # dzo = (dh*tanh_c) * o * (1-o)
            np.multiply(dh, tanh_c, out=e1)
            np.multiply(e1, o, out=dzo)
            np.subtract(1.0, o, out=e1)
            np.multiply(dzo, e1, out=dzo)
            if exact:
                # Parameter gradients, accumulated per step like the seed.
                xt = x[:, t, :]
                np.dot(xt.T, dz, out=s_wx)
                np.add(g_wx, s_wx, out=g_wx)
                if t > 0:
                    # h_prev is zeros at t == 0: contributes nothing to
                    # Wh.grad.
                    h_prev = b["hs"][:rows][:, t - 1, :]
                    np.dot(h_prev.T, dz, out=s_wh)
                    np.add(g_wh, s_wh, out=g_wh)
                np.add.reduce(dz, axis=0, out=s_b)
                np.add(g_b, s_b, out=g_b)
            # dh = dz @ Wh.T; dc = dc * f — skipped on the final step, where
            # the seed computes them only to throw them away.
            if t > 0:
                np.dot(dz, self._wh.T, out=dh)
                np.multiply(dc, f, out=dc)
        if not exact:
            # One batched GEMM per parameter over all steps' gate grads
            # (float32 mode: reassociates the per-step sums).
            dz_flat = dz_all.reshape(rows * steps, 4 * hd)
            np.dot(x.reshape(rows * steps, self.input_dim).T, dz_flat, out=g_wx)
            hp = b["hprev"][:rows]
            hp[:, 0, :].fill(0.0)
            hp[:, 1:, :] = b["hs"][:rows][:, :-1, :]
            np.dot(hp.reshape(rows * steps, hd).T, dz_flat, out=g_wh)
            np.add.reduce(dz_flat, axis=0, out=g_b)

    # -- training ----------------------------------------------------------------

    def fit(
        self,
        sequences: np.ndarray,
        targets: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 3e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainReport:
        """Train on benign sequences — :meth:`LstmPredictor.fit`, compiled."""
        sequences = np.ascontiguousarray(sequences, dtype=self.dtype)
        targets = np.ascontiguousarray(targets, dtype=self.dtype)
        if len(sequences) != len(targets):
            raise ValueError("sequences and targets must align")
        if len(sequences) == 0:
            raise ValueError("cannot train on an empty dataset")
        rng = rng if rng is not None else self.model._shuffle_rng
        report = TrainReport()
        with _profiler.profile_block("trainfast.fit.lstm"):
            report.epoch_losses = _run_epochs_3d(
                self, sequences, targets, epochs, batch_size, lr, rng
            )
        self.store.sync_to_model()
        return report


def _run_epochs_3d(
    trainer: CompiledLstmTrainer,
    sequences: np.ndarray,
    targets: np.ndarray,
    epochs: int,
    batch_size: int,
    lr: float,
    rng: np.random.Generator,
    optimizer: Optional[FlatAdam] = None,
    on_epoch=None,
) -> list:
    """Shared mini-batch epochs over sequence data for the LSTM kernels."""
    n = len(sequences)
    optimizer = optimizer or FlatAdam(trainer.store, lr=lr)
    shuffled_x = np.empty_like(sequences)
    shuffled_y = np.empty_like(targets)
    losses: list = []
    for _ in range(epochs):
        epoch_start = time.perf_counter()
        order = rng.permutation(n)
        np.take(sequences, order, axis=0, out=shuffled_x)
        np.take(targets, order, axis=0, out=shuffled_y)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            xb = shuffled_x[start : start + batch_size]
            yb = shuffled_y[start : start + batch_size]
            rows, steps, _ = xb.shape
            pred = trainer._forward(xb)
            flat_y = yb.reshape(rows * steps, trainer.output_dim)
            diff = trainer._bufs["diff"][: rows * steps]
            if optimizer.exact:
                loss = _mirrored_loss(
                    pred, flat_y, diff, trainer._bufs["sq"][: rows * steps]
                )
                _loss_grad_inplace(diff)
            else:
                loss = _fast_loss_and_grad(pred, flat_y, diff)
            trainer._backward(xb, diff, optimizer.grad_views)
            optimizer.step()
            trainer._refresh_grouped()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        _observe_epoch(trainer, time.perf_counter() - epoch_start)
        if on_epoch is not None and on_epoch(losses):
            break
    return losses


def compile_trainer(model, dtype: str = "float64"):
    """Build the matching compiled trainer for a seed model object."""
    if isinstance(model, Autoencoder):
        return CompiledAutoencoderTrainer(model, dtype=dtype)
    if isinstance(model, LstmPredictor):
        return CompiledLstmTrainer(model, dtype=dtype)
    raise TypeError(f"cannot compile a trainer for {type(model).__name__}")


def compiled_train_minibatch(
    model,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: Optional[TrainConfig] = None,
    metrics=None,
) -> TrainHistory:
    """:func:`repro.ml.training.train_minibatch` through compiled kernels.

    Mirrors the seed loop bit-for-bit in float64 — shuffle stream seeded
    from ``config.seed``, the same tail validation split, the same early
    stopping arithmetic — while running every batch through the
    preallocated-buffer kernels. ``model`` is a seed :class:`Autoencoder`
    or :class:`LstmPredictor`; its weights are trained in place.
    """
    config = config or TrainConfig()
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if len(inputs) != len(targets):
        raise ValueError("inputs and targets must align")
    if len(inputs) == 0:
        raise ValueError("cannot train on an empty dataset")

    n_val = 0
    if config.validation_fraction > 0:
        if not 0 < config.validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        n_val = max(1, int(len(inputs) * config.validation_fraction))
        if n_val >= len(inputs):
            raise ValueError("validation split leaves no training data")
    train_x = inputs[: len(inputs) - n_val]
    train_y = targets[: len(targets) - n_val]
    val_x = inputs[len(inputs) - n_val :]
    val_y = targets[len(targets) - n_val :]

    trainer = compile_trainer(model, dtype="float64")
    if metrics is not None:
        trainer.attach_metrics(metrics)
    optimizer = FlatAdam(trainer.store, lr=config.lr)
    rng = np.random.default_rng(config.seed)
    history = TrainHistory()
    epoch_loss_hist = (
        metrics.histogram("ml.train.epoch_loss", buckets=_LOSS_BUCKETS)
        if metrics is not None
        else None
    )
    val_loss_hist = (
        metrics.histogram("ml.train.val_loss", buckets=_LOSS_BUCKETS)
        if metrics is not None
        else None
    )
    state = {"best_val": float("inf"), "stale": 0}

    def on_epoch(losses: list) -> bool:
        history.epoch_losses.append(losses[-1])
        if epoch_loss_hist is not None:
            epoch_loss_hist.observe(losses[-1])
        if not n_val:
            return False
        if isinstance(model, LstmPredictor):
            rows, steps, _ = val_x.shape
            pred = trainer._forward(val_x)
            val_loss = _val_loss_only(
                pred, val_y.reshape(rows * steps, trainer.output_dim)
            )
        else:
            pred = trainer._forward(val_x)
            val_loss = _val_loss_only(pred, val_y)
        if val_loss_hist is not None:
            val_loss_hist.observe(val_loss)
        history.validation_losses.append(val_loss)
        epoch = len(history.epoch_losses) - 1
        if val_loss < state["best_val"] * (1.0 - config.min_improvement):
            state["best_val"] = val_loss
            history.best_epoch = epoch
            state["stale"] = 0
        else:
            state["stale"] += 1
            if state["stale"] >= config.patience:
                history.stopped_early = True
                return True
        return False

    if isinstance(model, LstmPredictor):
        _run_epochs_3d(
            trainer, train_x, train_y, config.epochs, config.batch_size,
            config.lr, rng, optimizer=optimizer, on_epoch=on_epoch,
        )
    else:
        _run_epochs_2d(
            trainer, train_x, train_y, config.epochs, config.batch_size,
            config.lr, rng, optimizer=optimizer, on_epoch=on_epoch,
        )
    if history.best_epoch < 0 and history.epoch_losses:
        history.best_epoch = int(np.argmin(history.epoch_losses))
    return history
