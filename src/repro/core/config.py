"""Framework configuration for 6G-XSec."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.genfast.settings import GenfastSettings
from repro.hotpath.settings import HotpathSettings
from repro.llmfast.settings import LlmfastSettings
from repro.megabatch.settings import MegabatchSettings
from repro.runtime.settings import RuntimeSettings
from repro.scale.settings import ScaleSettings
from repro.slo.settings import SloSettings
from repro.telemetry.features import FeatureSpec
from repro.trainfast.settings import TrainfastSettings


@dataclass
class XsecConfig:
    """All the knobs of the deployed framework (defaults match §4)."""

    # Telemetry featurization.
    spec: FeatureSpec = field(default_factory=FeatureSpec)
    window: int = 6

    # Detection (paper §4.1: 99th-percentile threshold; the LSTM's per-step
    # scores use a slightly lower operating point, see EXPERIMENTS.md).
    detector: str = "autoencoder"  # "autoencoder" | "lstm"
    threshold_percentile: float = 99.0
    ae_hidden_dim: int = 128
    ae_latent_dim: int = 24
    lstm_hidden_dim: int = 64
    train_epochs: int = 50
    train_lr: float = 2e-3
    seed: int = 7

    # E2 reporting.
    report_period_s: float = 0.1

    # MobiWatch live-history cap (records kept for featurization state).
    history_cap: int = 20000

    # LLM expert referencing.
    llm_model: str = "chatgpt-4o"
    llm_use_rag: bool = False
    # Cooldown before re-querying the LLM about the same session (the LLM
    # is the expensive stage; MobiWatch is the pre-filter).
    llm_session_cooldown_s: float = 30.0
    # Context entries included around a flagged window.
    llm_context_records: int = 40

    # Automated responses (paper §5, Automated Network Responses).
    auto_release: bool = False
    auto_blocklist: bool = False
    # dApp-style radio control: cap the setup-request rate at the DU when a
    # signaling storm is confirmed (effective against RNTI-hopping floods).
    auto_rate_limit: bool = False
    rate_limit_max_setups: int = 3
    rate_limit_window_s: float = 1.0

    # Horizontal scaling (repro.scale): sharded SDL, ingest batching,
    # batched inference pool. Defaults preserve the seed's single-node
    # behaviour bit-for-bit (see docs/SCALING.md).
    scale: ScaleSettings = field(default_factory=ScaleSettings)

    # Inference hot path (repro.hotpath): incremental per-session LSTM
    # scoring, fused compiled kernels, arena window assembly. Defaults
    # preserve the seed scoring path bit-for-bit (see docs/PERFORMANCE.md).
    hotpath: HotpathSettings = field(default_factory=HotpathSettings)

    # Training fast path (repro.trainfast): compiled training kernels,
    # multi-core experiment sweeps, content-addressed dataset cache.
    # Defaults preserve the seed training path bit-for-bit (see
    # docs/PERFORMANCE.md, "Training fast path").
    trainfast: TrainfastSettings = field(default_factory=TrainfastSettings)

    # Cross-session megabatch scoring (repro.megabatch): one fused
    # detector call per RIC tick across every touched UE, the int8/float16
    # quantized LSTM tier, and bounded per-session state via eviction.
    # Defaults preserve the seed's per-session scoring bit-for-bit (see
    # docs/PERFORMANCE.md, "Megabatch per-tick scoring").
    megabatch: MegabatchSettings = field(default_factory=MegabatchSettings)

    # SLO/observability plane (repro.slo): burn-rate alerting over
    # declarative objectives, continuous profiling, OpenMetrics/JSONL
    # export, verdict provenance. Defaults keep every output bit-identical
    # to the seed (see docs/OBSERVABILITY.md).
    slo: SloSettings = field(default_factory=SloSettings)

    # Process-parallel service runtime (repro.runtime): MobiWatch scoring
    # in supervised OS worker processes over the TLV socket transport,
    # restart-on-crash, and the `python -m repro runtime` deployment mode.
    # Defaults keep everything in-process and bit-identical to the seed
    # (see docs/RUNTIME.md).
    runtime: RuntimeSettings = field(default_factory=RuntimeSettings)

    # Telemetry generation/ingest fast lane (repro.genfast): columnar
    # MobiFlow batch indications with interned vocab ids, one acked SDL
    # write per batch, and one-pass vectorized featurization. Defaults
    # keep the seed per-record path bit-identical (see
    # docs/PERFORMANCE.md, "Generation & ingest").
    genfast: GenfastSettings = field(default_factory=GenfastSettings)

    # Verdict-plane fast path (repro.llmfast): content-addressed verdict
    # cache + in-flight coalescing, vectorized RAG retrieval, compiled
    # prompt assembly, and the storm-safe dispatch queue with batched
    # verdict persistence. Defaults keep the seed analyzer path
    # bit-identical (see docs/PERFORMANCE.md, "Verdict plane").
    llmfast: LlmfastSettings = field(default_factory=LlmfastSettings)
