"""One-call assembly of the full 6G-XSec deployment (Figure 3).

``SixGXSec`` stands up the simulated 5G network, embeds the RIC agent in
the CU, connects the near-RT RIC over E2, registers the MobiWatch and LLM
analyzer xApps, attaches the SMO (non-RT RIC) with the train-then-deploy
workflow and A1 policies, and wires the closed-loop pipeline.

Typical use::

    xsec = SixGXSec(XsecConfig())
    xsec.train_from_benign(benign_windows)       # SMO training job
    ue = xsec.net.add_ue("pixel5")
    xsec.net.sim.schedule(1.0, ue.start_session)
    xsec.run(until=30.0)
    print(xsec.pipeline.summary())
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import XsecConfig
from repro.core.llm_analyzer import LlmAnalyzerXApp
from repro.core.mobiwatch import MobiWatchXApp
from repro.core.pipeline import ClosedLoopPipeline
from repro.llm.client import SimulatedLlmServer
from repro.ml.detector import AnomalyDetector, AutoencoderDetector, LstmDetector
from repro.oran.e2agent import RicAgent
from repro.oran.ric import NearRtRic
from repro.oran.smo import Smo
from repro.ran.links import InterfaceLink
from repro.ran.network import FiveGNetwork, NetworkConfig
from repro.slo.runtime import SloRuntime


def build_detector(config: XsecConfig) -> AnomalyDetector:
    """Construct the configured (untrained) detector."""
    if config.detector == "autoencoder":
        detector: AnomalyDetector = AutoencoderDetector(
            window=config.window,
            feature_dim=config.spec.dim,
            hidden_dim=config.ae_hidden_dim,
            latent_dim=config.ae_latent_dim,
            percentile=config.threshold_percentile,
            seed=config.seed,
        )
    elif config.detector == "lstm":
        detector = LstmDetector(
            window=config.window,
            feature_dim=config.spec.dim,
            hidden_dim=config.lstm_hidden_dim,
            percentile=config.threshold_percentile,
            seed=config.seed,
        )
    else:
        raise ValueError(f"unknown detector {config.detector!r}")
    if config.trainfast.any_enabled:
        detector.attach_trainfast(config.trainfast)
    if config.megabatch.any_enabled:
        # fit() runs the int8 calibration pass + quantized threshold fit
        # when the quantized tier is on.
        detector.attach_megabatch(config.megabatch)
    return detector


class SixGXSec:
    """The assembled framework around a fresh simulated network."""

    def __init__(
        self,
        config: Optional[XsecConfig] = None,
        network_config: Optional[NetworkConfig] = None,
        llm_server: Optional[SimulatedLlmServer] = None,
    ) -> None:
        self.config = config or XsecConfig()
        self.net = FiveGNetwork(network_config or NetworkConfig(seed=self.config.seed))
        self.e2 = InterfaceLink(self.net.sim, "E2", latency_s=0.002)
        self.agent = RicAgent(self.net, self.e2, genfast=self.config.genfast)
        self.ric = NearRtRic(self.net.sim, self.e2, scale=self.config.scale)
        self.e2.connect(a_handler=self.agent.on_e2, b_handler=self.ric.e2term.on_e2)
        self.llm_server = llm_server or SimulatedLlmServer()
        self.mobiwatch = MobiWatchXApp(self.ric, self.config)
        self.analyzer = LlmAnalyzerXApp(
            self.ric, self.mobiwatch, server=self.llm_server, config=self.config
        )
        self.pipeline = ClosedLoopPipeline(self.mobiwatch, self.analyzer, self.config)
        self.smo = Smo(self.ric)
        # repro.slo: the observability plane (SLO engine, profilers,
        # exporter, health scoreboard). None when every slo switch is off,
        # so the seed path constructs nothing new.
        self.slo: Optional[SloRuntime] = None
        if self.config.slo.any_enabled:
            self.slo = SloRuntime(
                self.config.slo,
                self.obs.metrics,
                clock=lambda: self.net.sim.now,
            )
            # MobiWatch minted the store (it owns the SDL handle); the
            # runtime exposes it so `slo explain` has one entry point.
            self.slo.provenance = self.mobiwatch.provenance
            if self.slo.scoreboard is not None:
                sdl = self.ric.sdl
                if hasattr(sdl, "shard_names"):
                    self.slo.scoreboard.watch_sharded_sdl(sdl)
                if self.mobiwatch.pool is not None:
                    self.slo.scoreboard.watch_pool(
                        self.mobiwatch.pool, name=self.mobiwatch.name
                    )
        self._started = False

    @property
    def obs(self):
        """The deployment's observability context (``repro.obs``)."""
        return self.net.sim.obs

    def start(self) -> None:
        """Bring up E2 and the xApps (idempotent)."""
        if self._started:
            return
        self._started = True
        self.agent.start()
        self.ric.start()

    # -- model lifecycle ----------------------------------------------------------

    def train_from_benign(self, benign_windows: np.ndarray, **train_kwargs) -> AnomalyDetector:
        """Run the SMO train-then-deploy job on benign windows."""
        kwargs = dict(
            epochs=self.config.train_epochs,
            lr=self.config.train_lr,
        )
        kwargs.update(train_kwargs)

        def collect():
            return np.asarray(benign_windows)

        def train(dataset):
            detector = build_detector(self.config)
            detector.attach_metrics(self.obs.metrics)
            detector.fit(dataset, **kwargs)
            return detector

        job_name = f"mobiwatch-{self.config.detector}"
        self.smo.submit_training_job(
            job_name, collect=collect, train=train, deploy=self.deploy_detector
        )
        job = self.smo.run_job(job_name)
        if job.error:
            raise RuntimeError(f"training job failed: {job.error}")
        return job.model

    def deploy_detector(self, detector: AnomalyDetector) -> None:
        """Deploy an externally trained detector directly."""
        self.mobiwatch.deploy_detector(detector)
        # The process scoring pool only exists after deployment (workers
        # load the trained weights), so the scoreboard attaches here. The
        # probes are keyed by worker name; re-deploys overwrite in place.
        if (
            self.slo is not None
            and self.slo.scoreboard is not None
            and self.mobiwatch.pool is not None
        ):
            self.slo.scoreboard.watch_pool(self.mobiwatch.pool, name=self.mobiwatch.name)

    # -- execution ---------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        self.start()
        if self.slo is not None:
            self.slo.schedule_ticks(self.net.sim, until)
        processed = self.net.run(until=until, max_events=max_events)
        self.pipeline.poll_anomalies()
        if self.slo is not None:
            self.slo.finalize()
        return processed

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Release out-of-process resources (idempotent).

        The seed deployment owns nothing outside the interpreter, so this
        is a no-op there; with ``runtime.score_in_processes`` it drains
        and stops the scoring worker processes.
        """
        pool = self.mobiwatch.pool
        if pool is not None and not pool.closed:
            pool.close()

    def __enter__(self) -> "SixGXSec":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
