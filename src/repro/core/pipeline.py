"""Closed-loop pipeline: detect -> explain -> respond (Figure 3).

Tracks each incident end-to-end with timestamps (telemetry capture ->
MobiWatch detection -> LLM verdict -> control action), implements the
automated-response policy (§5, Automated Network Responses) mapping
confirmed attack classes to E2 control actions, and keeps the
human-supervision queue for detector/LLM contradictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import XsecConfig
from repro.core.llm_analyzer import LlmAnalyzerXApp, VerdictEvent
from repro.core.mobiwatch import AnomalyEvent, MobiWatchXApp
from repro.obs import LOOP_STAGES
from repro.obs.tracing import Tracer


@dataclass
class IncidentRecord:
    """One anomaly's journey through the loop."""

    anomaly: AnomalyEvent
    verdict: Optional[VerdictEvent] = None
    action: str = ""
    action_at: Optional[float] = None

    @property
    def detection_latency_s(self) -> Optional[float]:
        """Newest telemetry entry -> MobiWatch alarm."""
        return self.anomaly.detected_at - self.anomaly.newest_record_ts

    @property
    def explanation_latency_s(self) -> Optional[float]:
        """MobiWatch alarm -> parsed LLM verdict."""
        if self.verdict is None:
            return None
        return self.verdict.completed_at - self.anomaly.detected_at

    @property
    def response_latency_s(self) -> Optional[float]:
        """MobiWatch alarm -> control action issued."""
        if self.action_at is None:
            return None
        return self.action_at - self.anomaly.detected_at


class ClosedLoopPipeline:
    """Wires MobiWatch -> LLM analyzer -> automated responses."""

    def __init__(
        self,
        mobiwatch: MobiWatchXApp,
        analyzer: LlmAnalyzerXApp,
        config: Optional[XsecConfig] = None,
    ) -> None:
        self.config = config or XsecConfig()
        self.mobiwatch = mobiwatch
        self.analyzer = analyzer
        self.incidents: list[IncidentRecord] = []
        self._by_anomaly: dict[int, IncidentRecord] = {}
        self.actions_taken: list[tuple[str, dict]] = []
        analyzer.on_verdict(self._on_verdict)
        # Observe anomalies as MobiWatch emits them (shared list reference).
        self._seen_anomalies = 0
        self._action_counters: dict[str, object] = {}

    def _count_action(self, action: str) -> None:
        counter = self._action_counters.get(action)
        if counter is None:
            counter = self._action_counters[action] = (
                self.mobiwatch.sim.obs.metrics.counter(
                    "pipeline.actions_total", labels={"action": action}
                )
            )
        counter.inc()

    def poll_anomalies(self) -> None:
        """Fold newly emitted MobiWatch anomalies into incident records."""
        while self._seen_anomalies < len(self.mobiwatch.anomalies):
            anomaly = self.mobiwatch.anomalies[self._seen_anomalies]
            incident = IncidentRecord(anomaly=anomaly)
            self.incidents.append(incident)
            self._by_anomaly[id(anomaly)] = incident
            self._seen_anomalies += 1

    # -- verdict handling -------------------------------------------------------

    def _on_verdict(self, event: VerdictEvent) -> None:
        self.poll_anomalies()
        incident = self._by_anomaly.get(id(event.anomaly))
        if incident is None:
            incident = IncidentRecord(anomaly=event.anomaly)
            self.incidents.append(incident)
            self._by_anomaly[id(event.anomaly)] = incident
        incident.verdict = event
        if event.confirmed:
            self._respond(incident, event)

    def _respond(self, incident: IncidentRecord, event: VerdictEvent) -> None:
        """Map the confirmed attack class to an E2 control action."""
        top = (
            event.verdict.response.top_attacks[0][0].lower()
            if event.verdict.response.top_attacks
            else ""
        )
        anomaly = event.anomaly
        if self.config.auto_blocklist and "tmsi" in top and anomaly.s_tmsi is not None:
            self.mobiwatch.blocklist_tmsi(anomaly.s_tmsi)
            incident.action = "blocklist_tmsi"
            incident.action_at = self.mobiwatch.now
            self.actions_taken.append(("blocklist_tmsi", {"tmsi": anomaly.s_tmsi}))
            self._count_action("blocklist_tmsi")
        elif self.config.auto_rate_limit and "signaling storm" in top:
            params = {
                "max_setups": self.config.rate_limit_max_setups,
                "window_s": self.config.rate_limit_window_s,
            }
            self.mobiwatch.rate_limit_access(**params)
            incident.action = "rate_limit_access"
            incident.action_at = self.mobiwatch.now
            self.actions_taken.append(("rate_limit_access", params))
            self._count_action("rate_limit_access")
        elif self.config.auto_release and anomaly.rnti is not None:
            self.mobiwatch.release_ue(anomaly.rnti)
            incident.action = "release_ue"
            incident.action_at = self.mobiwatch.now
            self.actions_taken.append(("release_ue", {"rnti": anomaly.rnti}))
            self._count_action("release_ue")
        if incident.action:
            store = getattr(self.mobiwatch, "provenance", None)
            if store is not None:
                store.attach_action(
                    anomaly.provenance_id,
                    action=incident.action,
                    action_at=incident.action_at,
                )

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> dict:
        self.poll_anomalies()
        confirmed = [
            i for i in self.incidents if i.verdict is not None and i.verdict.confirmed
        ]
        return {
            "anomalies": len(self.incidents),
            "verdicts": sum(1 for i in self.incidents if i.verdict is not None),
            "confirmed": len(confirmed),
            "needs_human_review": len(self.analyzer.human_review_queue),
            "actions": len(self.actions_taken),
            "queries_suppressed": self.analyzer.queries_suppressed,
        }

    def latency_report(self) -> dict:
        """Control-loop timing stats (the near-RT budget is 10ms-1s)."""
        self.poll_anomalies()
        detection = [
            latency
            for i in self.incidents
            if (latency := i.detection_latency_s) is not None
        ]
        explanation = [
            latency
            for i in self.incidents
            if (latency := i.explanation_latency_s) is not None
        ]
        response = [
            latency
            for i in self.incidents
            if (latency := i.response_latency_s) is not None
        ]

        def stats(values):
            if not values:
                return {"n": 0}
            ordered = sorted(values)
            return {
                "n": len(ordered),
                "mean": sum(ordered) / len(ordered),
                "p50": ordered[len(ordered) // 2],
                "max": ordered[-1],
            }

        return {
            "detection_s": stats(detection),
            "explanation_s": stats(explanation),
            "response_s": stats(response),
        }

    def scale_report(self) -> dict:
        """Horizontal-scaling health: shards, ingest batcher, inference pool.

        Empty sections mean the corresponding repro.scale feature is off
        (the seed's single-node path).
        """
        report: dict = {}
        sdl = self.mobiwatch.sdl
        if hasattr(sdl, "health"):
            report["sdl"] = sdl.health()
        batcher = getattr(self.mobiwatch.ric.e2term, "ingest_batcher", None)
        if batcher is not None:
            report["ingest"] = batcher.stats()
        if self.mobiwatch.pool is not None:
            report["pool"] = self.mobiwatch.pool.stats()
        supervisor = getattr(self.mobiwatch.pool, "supervisor", None)
        if supervisor is not None:
            # repro.runtime: per-process liveness and restart counts for
            # the supervised scoring workers.
            report["runtime"] = supervisor.health()
        genfast = self.config.genfast
        if genfast.any_enabled:
            # repro.genfast: which generation/ingest fast lanes are active.
            report["genfast"] = {
                "columnar_batches": genfast.columnar_batches,
                "batched_sdl_writes": genfast.batched_sdl_writes,
                "vectorized_features": genfast.vectorized_features,
                "sim_fastlane": genfast.sim_fastlane,
            }
        llmfast = self.config.llmfast
        if llmfast.any_enabled:
            # repro.llmfast: the verdict-plane ledger (the invariant
            # offered == analyzed + coalesced + cache_hits + shed + pending
            # holds at every instant) plus cache/dispatcher internals.
            analyzer = self.analyzer
            section: dict = {"ledger": analyzer.ledger()}
            section["cache"] = analyzer.analyst.cache_stats
            if analyzer._dispatcher is not None:
                section["dispatch"] = analyzer._dispatcher.stats()
            report["llmfast"] = section
        return report

    # -- loop tracing (repro.obs) ---------------------------------------------------

    def loop_tracer(self) -> Tracer:
        """One trace per incident, reconstructed from the loop's timestamps.

        Stage spans (sim seconds), in loop order:

        - ``capture``    — oldest -> newest telemetry entry of the flagged window;
        - ``indication`` — newest capture -> xApp ingest (report batching +
          E2 transport + RMR hops);
        - ``sdl_write``  — zero-width marker at ingest (its cost is wall-clock,
          see the ``sdl.write_wall_s`` histogram);
        - ``detection``  — ingest -> MobiWatch alarm (windowing + inference +
          short-session maturity);
        - ``verdict``    — alarm -> parsed LLM verdict;
        - ``action``     — verdict -> E2 control action issued.
        """
        self.poll_anomalies()
        mobiwatch = self.mobiwatch
        tracer = Tracer(clock=lambda: mobiwatch.now)
        for incident in self.incidents:
            anomaly = incident.anomaly
            trace = tracer.trace("mobiflow-incident", session=anomaly.session_id)
            indices = anomaly.record_indices
            newest_ts = anomaly.newest_record_ts
            if indices:
                first_ts = mobiwatch.series[indices[0]].timestamp
                trace.span("capture", start=first_ts, end=newest_ts, records=len(indices))
                arrival = mobiwatch.arrival_time(indices[-1])
            else:
                arrival = None
            if arrival is not None:
                trace.span("indication", start=newest_ts, end=arrival)
                trace.span("sdl_write", start=arrival, end=arrival)
                detection_start = arrival
            else:
                detection_start = newest_ts
            trace.span(
                "detection",
                start=detection_start,
                end=anomaly.detected_at,
                score=anomaly.score,
            )
            if incident.verdict is not None:
                trace.span(
                    "verdict",
                    start=anomaly.detected_at,
                    end=incident.verdict.completed_at,
                    confirmed=incident.verdict.confirmed,
                )
            if incident.action_at is not None:
                action_start = (
                    incident.verdict.completed_at
                    if incident.verdict is not None
                    else anomaly.detected_at
                )
                trace.span(
                    "action",
                    start=action_start,
                    end=incident.action_at,
                    action=incident.action,
                )
        return tracer

    def stage_breakdown(self) -> dict:
        """Per-stage latency stats over every incident's loop trace."""
        return self.loop_tracer().stage_breakdown(list(LOOP_STAGES))

    def render_stage_breakdown(self) -> str:
        tracer = self.loop_tracer()
        return tracer.render_breakdown(
            list(LOOP_STAGES),
            title=(
                f"closed-loop stage latency over {len(tracer.traces)} incidents "
                "(sim seconds; near-RT budget: capture->alarm within 1s)"
            ),
        )
