"""The LLM analyzer xApp (paper §3.3, Figure 3).

Receives anomaly events from MobiWatch over RMR, builds the Figure 5
prompt from the flagged sequence plus context, queries the configured LLM
through the REST-style client (with the provider's simulated response
latency), parses the text into classification / explanation / attribution
/ remediation, cross-compares with the detector's verdict (contradictions
escalate to human supervision), and publishes verdict events for the
closed-loop responder.

With ``XsecConfig.llmfast`` flags on (defaults off: the seed path is
bit-identical) the xApp runs the verdict-plane fast path: anomalies whose
canonical trace signature already has a cached analysis resolve without a
provider round trip; concurrent identical queries coalesce onto one
pending request and the verdict fans out to every waiter; and the
storm-safe dispatcher bounds provider concurrency, orders the backlog by
severity, sheds (counted, never silently) once the backlog overflows, and
persists each completion's verdict fan-out as one batched SDL write.  The
ledger invariant ``offered == analyzed + coalesced + cache_hits + shed +
pending`` holds at every instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import XsecConfig
from repro.core.mobiwatch import XSEC_ANOMALY_MTYPE, AnomalyEvent, MobiWatchXApp
from repro.llm.analyst import ExpertAnalyst, ExpertVerdict
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.obs.metrics import WallTimer
from repro.oran.xapp import XApp
from repro.scale.sharded_sdl import ShardedSdl
from repro.slo import profiler as _profiler

SDL_VERDICT_NS = "xsec.verdicts"

VerdictCallback = Callable[["VerdictEvent"], None]


@dataclass(frozen=True)
class VerdictEvent:
    """Analyzer output for one anomaly event."""

    anomaly: AnomalyEvent
    verdict: ExpertVerdict
    completed_at: float

    @property
    def confirmed(self) -> bool:
        """LLM agrees with MobiWatch that the sequence is anomalous."""
        return self.verdict.response.is_anomalous

    @property
    def needs_human_review(self) -> bool:
        return self.verdict.needs_human_review


@dataclass
class _PendingQuery:
    """One in-flight or queued provider request (repro.llmfast)."""

    event: AnomalyEvent
    records: list
    signature: object = None
    priority: float = 0.0
    # Coalesced anomalies waiting on this request's verdict.
    waiters: list = field(default_factory=list)


class LlmAnalyzerXApp(XApp):
    """Expert-referencing xApp chained behind MobiWatch."""

    def __init__(
        self,
        ric,
        mobiwatch: MobiWatchXApp,
        server: Optional[SimulatedLlmServer] = None,
        config: Optional[XsecConfig] = None,
        name: str = "llm-analyzer",
    ) -> None:
        super().__init__(ric, name)
        self.config = config or XsecConfig()
        self.mobiwatch = mobiwatch
        self.server = server or SimulatedLlmServer()
        llmfast = self.config.llmfast
        self.analyst = ExpertAnalyst(
            client=LlmClient(server=self.server, model=self.config.llm_model),
            use_rag=self.config.llm_use_rag,
            llmfast=llmfast if llmfast.any_enabled else None,
        )
        self.verdicts: list[VerdictEvent] = []
        self.human_review_queue: list[VerdictEvent] = []
        self._callbacks: list[VerdictCallback] = []
        self._session_last_query: dict[int, float] = {}
        self.queries_sent = 0
        self.queries_suppressed = 0
        # Explicit monotonic verdict-key counter: SDL keys must not be
        # coupled to len(self.verdicts) (list length wraps key identity
        # past the pad width and breaks if the list is ever pruned).
        self._verdict_seq = 0
        # repro.llmfast ledger.  Terminal outcomes for every offered
        # anomaly (one that survived the cooldown): a full provider
        # round trip (analyzed), joining an in-flight request
        # (coalesced), a verdict-cache hit (cache_hits), or a counted
        # drop under storm load (shed); pending covers the rest.
        self.offered = 0
        self.analyzed = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.shed = 0
        self.pending = 0
        self.sessions_evicted = 0
        self._fast = llmfast if llmfast.fast_submit_enabled else None
        self._dispatcher = None
        self._inflight: dict = {}
        metrics = self.sim.obs.metrics
        self._queries_counter = metrics.counter(
            "llm.queries_total", help="LLM queries issued"
        )
        self._suppressed_counter = metrics.counter(
            "llm.queries_suppressed_total", help="queries dropped by cooldown"
        )
        self._latency_hist = metrics.histogram(
            "llm.response_latency_s", help="simulated provider round trip"
        )
        self._analyze_wall = metrics.histogram(
            "llm.analyze_wall_s", help="prompt build + parse wall-clock cost"
        )
        self._verdict_counters = {
            confirmed: metrics.counter(
                "llm.verdicts_total", labels={"confirmed": str(confirmed).lower()}
            )
            for confirmed in (True, False)
        }
        self._review_counter = metrics.counter(
            "llm.human_review_total", help="contradictions escalated to humans"
        )
        # repro.llmfast counters (gated: the disabled path creates no new
        # metric series).
        self._cache_hits_counter = None
        self._coalesced_counter = None
        self._shed_counter = None
        if self._fast is not None:
            self._cache_hits_counter = metrics.counter(
                "llm.cache_hits_total", help="verdicts served from the cache"
            )
            self._coalesced_counter = metrics.counter(
                "llm.coalesced_total", help="queries joined to an in-flight request"
            )
            self._shed_counter = metrics.counter(
                "llm.shed_total", help="queries shed by the storm dispatcher"
            )
            if llmfast.dispatch:
                from repro.llmfast.dispatch import StormDispatcher

                self._dispatcher = StormDispatcher(
                    max_inflight=llmfast.max_inflight,
                    queue_capacity=llmfast.queue_capacity,
                )
        # Bugfix: _session_last_query grew without bound — megabatch
        # session eviction never reached analyzer state.  Prune the
        # cooldown ledger whenever MobiWatch evicts the session
        # (release- or idle-driven).
        self._sessions_evicted_counter = None
        if self.config.megabatch.eviction_enabled:
            self._sessions_evicted_counter = metrics.counter(
                "llm.sessions_evicted_total",
                help="analyzer session state pruned by eviction",
            )
        mobiwatch.on_session_evicted(self._on_session_evicted)
        # repro.slo liveness heartbeat (gated so the disabled path creates
        # no new metric series).
        self._heartbeat_gauge = None
        if self.config.slo.enabled:
            self._heartbeat_gauge = metrics.gauge(
                "health.heartbeat_ts",
                labels={"component": self.name},
                help="sim time of the component's last heartbeat",
            )

    def start(self) -> None:
        super().start()
        # Receive MobiWatch's anomaly events.
        self.ric.rmr.add_route(XSEC_ANOMALY_MTYPE, self.name)

    def on_verdict(self, callback: VerdictCallback) -> None:
        self._callbacks.append(callback)

    # -- RMR ----------------------------------------------------------------

    def on_message(self, mtype: int, sub_id: int, payload) -> None:
        if mtype == XSEC_ANOMALY_MTYPE and isinstance(payload, AnomalyEvent):
            self._on_anomaly(payload)
        else:
            super().on_message(mtype, sub_id, payload)

    # -- session state ------------------------------------------------------

    def _on_session_evicted(self, session_id: int) -> None:
        if self._session_last_query.pop(session_id, None) is not None:
            self.sessions_evicted += 1
            if self._sessions_evicted_counter is not None:
                self._sessions_evicted_counter.inc()

    def ledger(self) -> dict:
        """The fast-path accounting; the invariant must always hold."""
        return {
            "offered": self.offered,
            "analyzed": self.analyzed,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "pending": self.pending,
        }

    # -- analysis -----------------------------------------------------------------

    def _on_anomaly(self, event: AnomalyEvent) -> None:
        if self._heartbeat_gauge is not None:
            self._heartbeat_gauge.set(self.now)
        # MobiWatch is the pre-filter; the LLM is rate-limited per session
        # because each query is expensive (§3.3).
        last = self._session_last_query.get(event.session_id)
        if last is not None and self.now - last < self.config.llm_session_cooldown_s:
            self.queries_suppressed += 1
            self._suppressed_counter.inc()
            return
        self._session_last_query[event.session_id] = self.now
        records = self.mobiwatch.context_for(
            event, max_records=self.config.llm_context_records
        )
        if self._fast is not None:
            self._fast_submit(event, records)
            return
        self.queries_sent += 1
        self._queries_counter.inc()
        # Simulate the web-API round trip: the verdict lands after the
        # provider's response latency.
        prompt_probe = "".join(r.msg for r in records)
        latency = self.server.latency_for(self.config.llm_model, prompt_probe)
        self._latency_hist.observe(latency)
        self.schedule(
            latency, lambda: self._complete(event, records), name=f"{self.name}.llm"
        )

    def _complete(self, event: AnomalyEvent, records) -> None:
        with _profiler.profile_block("llm.analyze"), WallTimer(self._analyze_wall):
            verdict = self.analyst.analyze(records, detector_flagged=True)
        self._deliver(event, verdict)

    # -- verdict delivery (shared by the seed and fast paths) ----------------

    def _verdict_row(self, event: AnomalyEvent, result: VerdictEvent) -> tuple:
        verdict = result.verdict
        self._verdict_seq += 1
        return (
            f"{self._verdict_seq:012d}",
            {
                "session": event.session_id,
                "model": verdict.model,
                "verdict": verdict.response.verdict,
                "top_attack": (
                    verdict.response.top_attacks[0][0]
                    if verdict.response.top_attacks
                    else ""
                ),
                "needs_human_review": verdict.needs_human_review,
                "completed_at": result.completed_at,
            },
        )

    def _deliver(self, event: AnomalyEvent, verdict: ExpertVerdict, rows=None) -> None:
        """Record, persist, and publish one verdict.

        ``rows`` batches the SDL write: when a list is passed the row is
        appended for the caller to persist via ``set_many``; otherwise it
        is written immediately (the seed's one-write-per-verdict path).
        """
        result = VerdictEvent(anomaly=event, verdict=verdict, completed_at=self.now)
        self.verdicts.append(result)
        self._verdict_counters[result.confirmed].inc()
        self.log(
            "verdict",
            session=event.session_id,
            confirmed=result.confirmed,
            needs_human_review=result.needs_human_review,
        )
        row = self._verdict_row(event, result)
        if rows is None:
            self.sdl.set(SDL_VERDICT_NS, row[0], row[1])
        else:
            rows.append(row)
        store = getattr(self.mobiwatch, "provenance", None)
        if store is not None:
            store.attach_verdict(
                event.provenance_id,
                model=verdict.model,
                verdict_text=verdict.response.verdict,
                top_attack=(
                    verdict.response.top_attacks[0][0]
                    if verdict.response.top_attacks
                    else ""
                ),
                confirmed=result.confirmed,
                completed_at=result.completed_at,
            )
        if result.needs_human_review:
            # Contradictory results require human supervision (§3.3).
            self.human_review_queue.append(result)
            self._review_counter.inc()
        for callback in self._callbacks:
            callback(result)

    # -- fast path (repro.llmfast) -------------------------------------------

    def _fast_submit(self, event: AnomalyEvent, records) -> None:
        fast = self._fast
        self.offered += 1
        signature = self.analyst.signature_for(records)
        if fast.verdict_cache and signature is not None:
            verdict = self.analyst.cached_verdict(signature, detector_flagged=True)
            if verdict is not None:
                self.cache_hits += 1
                self._cache_hits_counter.inc()
                # The verdict is already resolved; deliver it on the next
                # sim step (no provider round trip, no WAN latency).
                self.schedule(
                    0.0,
                    lambda: self._deliver(event, verdict),
                    name=f"{self.name}.llm-cached",
                )
                return
        if fast.coalesce and signature is not None:
            inflight = self._inflight.get(signature)
            if inflight is not None:
                inflight.waiters.append(event)
                self.coalesced += 1
                self._coalesced_counter.inc()
                return
        threshold = event.threshold if event.threshold else 1.0
        request = _PendingQuery(
            event=event,
            records=records,
            signature=signature,
            priority=event.score / threshold,
        )
        self.pending += 1
        if self._dispatcher is None:
            self._fire(request)
            return
        outcome, item = self._dispatcher.submit(request.priority, request)
        if outcome == "dispatch":
            self._fire(item)
        elif outcome == "shed":
            # Counted, never silent: the dropped request (the newcomer or
            # a displaced lower-priority queued entry) is logged.
            self.pending -= 1
            self.shed += 1
            self._shed_counter.inc()
            self.log(
                "query shed under storm load",
                session=item.event.session_id,
                priority=round(item.priority, 3),
                backlog=self._dispatcher.backlog,
            )
        # "queued": the dispatcher holds it until a slot frees up.

    def _fire(self, request: _PendingQuery) -> None:
        self.queries_sent += 1
        self._queries_counter.inc()
        records = request.records
        prompt_probe = "".join(r.msg for r in records)
        latency = self.server.latency_for(self.config.llm_model, prompt_probe)
        self._latency_hist.observe(latency)
        if self._fast.coalesce and request.signature is not None:
            self._inflight[request.signature] = request
        self.schedule(
            latency, lambda: self._fast_complete(request), name=f"{self.name}.llm"
        )

    def _fast_complete(self, request: _PendingQuery) -> None:
        if request.signature is not None:
            self._inflight.pop(request.signature, None)
        with _profiler.profile_block("llm.analyze"), WallTimer(self._analyze_wall):
            verdict = self.analyst.analyze(
                request.records, detector_flagged=True, signature=request.signature
            )
        self.pending -= 1
        self.analyzed += 1
        # The verdict fans out to the primary anomaly and every coalesced
        # waiter; with dispatch on, the whole fan-out persists as one
        # batched SDL write.
        rows: Optional[list] = [] if self._dispatcher is not None else None
        self._deliver(request.event, verdict, rows=rows)
        for waiter in request.waiters:
            self._deliver(waiter, verdict, rows=rows)
        if rows:
            self._persist_rows(rows)
        if self._dispatcher is not None:
            next_request = self._dispatcher.complete()
            if next_request is not None:
                self._fire(next_request)

    def _persist_rows(self, rows: list) -> None:
        """Batch-persist one completion's verdict fan-out."""
        if isinstance(self.sdl, ShardedSdl):
            # Group by session so placement matches per-session reads.
            groups: dict[str, list] = {}
            for row in rows:
                groups.setdefault(str(row[1]["session"]), []).append(row)
            for shard_key, pairs in groups.items():
                self.sdl.set_many(SDL_VERDICT_NS, pairs, shard_key=shard_key)
        else:
            self.sdl.set_many(SDL_VERDICT_NS, rows)
