"""The LLM analyzer xApp (paper §3.3, Figure 3).

Receives anomaly events from MobiWatch over RMR, builds the Figure 5
prompt from the flagged sequence plus context, queries the configured LLM
through the REST-style client (with the provider's simulated response
latency), parses the text into classification / explanation / attribution
/ remediation, cross-compares with the detector's verdict (contradictions
escalate to human supervision), and publishes verdict events for the
closed-loop responder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import XsecConfig
from repro.core.mobiwatch import XSEC_ANOMALY_MTYPE, AnomalyEvent, MobiWatchXApp
from repro.llm.analyst import ExpertAnalyst, ExpertVerdict
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.obs.metrics import WallTimer
from repro.oran.xapp import XApp
from repro.slo import profiler as _profiler

SDL_VERDICT_NS = "xsec.verdicts"

VerdictCallback = Callable[["VerdictEvent"], None]


@dataclass(frozen=True)
class VerdictEvent:
    """Analyzer output for one anomaly event."""

    anomaly: AnomalyEvent
    verdict: ExpertVerdict
    completed_at: float

    @property
    def confirmed(self) -> bool:
        """LLM agrees with MobiWatch that the sequence is anomalous."""
        return self.verdict.response.is_anomalous

    @property
    def needs_human_review(self) -> bool:
        return self.verdict.needs_human_review


class LlmAnalyzerXApp(XApp):
    """Expert-referencing xApp chained behind MobiWatch."""

    def __init__(
        self,
        ric,
        mobiwatch: MobiWatchXApp,
        server: Optional[SimulatedLlmServer] = None,
        config: Optional[XsecConfig] = None,
        name: str = "llm-analyzer",
    ) -> None:
        super().__init__(ric, name)
        self.config = config or XsecConfig()
        self.mobiwatch = mobiwatch
        self.server = server or SimulatedLlmServer()
        self.analyst = ExpertAnalyst(
            client=LlmClient(server=self.server, model=self.config.llm_model),
            use_rag=self.config.llm_use_rag,
        )
        self.verdicts: list[VerdictEvent] = []
        self.human_review_queue: list[VerdictEvent] = []
        self._callbacks: list[VerdictCallback] = []
        self._session_last_query: dict[int, float] = {}
        self.queries_sent = 0
        self.queries_suppressed = 0
        metrics = self.sim.obs.metrics
        self._queries_counter = metrics.counter(
            "llm.queries_total", help="LLM queries issued"
        )
        self._suppressed_counter = metrics.counter(
            "llm.queries_suppressed_total", help="queries dropped by cooldown"
        )
        self._latency_hist = metrics.histogram(
            "llm.response_latency_s", help="simulated provider round trip"
        )
        self._analyze_wall = metrics.histogram(
            "llm.analyze_wall_s", help="prompt build + parse wall-clock cost"
        )
        self._verdict_counters = {
            confirmed: metrics.counter(
                "llm.verdicts_total", labels={"confirmed": str(confirmed).lower()}
            )
            for confirmed in (True, False)
        }
        self._review_counter = metrics.counter(
            "llm.human_review_total", help="contradictions escalated to humans"
        )
        # repro.slo liveness heartbeat (gated so the disabled path creates
        # no new metric series).
        self._heartbeat_gauge = None
        if self.config.slo.enabled:
            self._heartbeat_gauge = metrics.gauge(
                "health.heartbeat_ts",
                labels={"component": self.name},
                help="sim time of the component's last heartbeat",
            )

    def start(self) -> None:
        super().start()
        # Receive MobiWatch's anomaly events.
        self.ric.rmr.add_route(XSEC_ANOMALY_MTYPE, self.name)

    def on_verdict(self, callback: VerdictCallback) -> None:
        self._callbacks.append(callback)

    # -- RMR ----------------------------------------------------------------

    def on_message(self, mtype: int, sub_id: int, payload) -> None:
        if mtype == XSEC_ANOMALY_MTYPE and isinstance(payload, AnomalyEvent):
            self._on_anomaly(payload)
        else:
            super().on_message(mtype, sub_id, payload)

    # -- analysis -----------------------------------------------------------------

    def _on_anomaly(self, event: AnomalyEvent) -> None:
        if self._heartbeat_gauge is not None:
            self._heartbeat_gauge.set(self.now)
        # MobiWatch is the pre-filter; the LLM is rate-limited per session
        # because each query is expensive (§3.3).
        last = self._session_last_query.get(event.session_id)
        if last is not None and self.now - last < self.config.llm_session_cooldown_s:
            self.queries_suppressed += 1
            self._suppressed_counter.inc()
            return
        self._session_last_query[event.session_id] = self.now
        records = self.mobiwatch.context_for(
            event, max_records=self.config.llm_context_records
        )
        self.queries_sent += 1
        self._queries_counter.inc()
        # Simulate the web-API round trip: the verdict lands after the
        # provider's response latency.
        prompt_probe = "".join(r.msg for r in records)
        latency = self.server.latency_for(self.config.llm_model, prompt_probe)
        self._latency_hist.observe(latency)
        self.schedule(
            latency, lambda: self._complete(event, records), name=f"{self.name}.llm"
        )

    def _complete(self, event: AnomalyEvent, records) -> None:
        with _profiler.profile_block("llm.analyze"), WallTimer(self._analyze_wall):
            verdict = self.analyst.analyze(records, detector_flagged=True)
        result = VerdictEvent(anomaly=event, verdict=verdict, completed_at=self.now)
        self.verdicts.append(result)
        self._verdict_counters[result.confirmed].inc()
        self.log(
            "verdict",
            session=event.session_id,
            confirmed=result.confirmed,
            needs_human_review=result.needs_human_review,
        )
        self.sdl.set(
            SDL_VERDICT_NS,
            f"{len(self.verdicts):06d}",
            {
                "session": event.session_id,
                "model": verdict.model,
                "verdict": verdict.response.verdict,
                "top_attack": (
                    verdict.response.top_attacks[0][0]
                    if verdict.response.top_attacks
                    else ""
                ),
                "needs_human_review": verdict.needs_human_review,
                "completed_at": result.completed_at,
            },
        )
        store = getattr(self.mobiwatch, "provenance", None)
        if store is not None:
            store.attach_verdict(
                event.provenance_id,
                model=verdict.model,
                verdict_text=verdict.response.verdict,
                top_attack=(
                    verdict.response.top_attacks[0][0]
                    if verdict.response.top_attacks
                    else ""
                ),
                confirmed=result.confirmed,
                completed_at=result.completed_at,
            )
        if result.needs_human_review:
            # Contradictory results require human supervision (§3.3).
            self.human_review_queue.append(result)
            self._review_counter.inc()
        for callback in self._callbacks:
            callback(result)
