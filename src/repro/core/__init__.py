"""6G-XSec core: the paper's primary contribution, assembled.

- :mod:`.config` — framework configuration
- :mod:`.mobiwatch` — the MobiWatch unsupervised anomaly-detection xApp
- :mod:`.llm_analyzer` — the LLM expert-referencing xApp
- :mod:`.pipeline` — detect -> explain -> respond closed loop with human
  supervision on contradictions
- :mod:`.framework` — one-call assembly of the full Figure 3 system on a
  simulated network
"""

from repro.core.config import XsecConfig
from repro.core.mobiwatch import AnomalyEvent, MobiWatchXApp
from repro.core.llm_analyzer import LlmAnalyzerXApp, VerdictEvent
from repro.core.pipeline import ClosedLoopPipeline, IncidentRecord
from repro.core.framework import SixGXSec

__all__ = [
    "XsecConfig",
    "AnomalyEvent",
    "MobiWatchXApp",
    "LlmAnalyzerXApp",
    "VerdictEvent",
    "ClosedLoopPipeline",
    "IncidentRecord",
    "SixGXSec",
]
