"""MobiWatch: the unsupervised anomaly-detection xApp (paper §3.2).

Subscribes to the MobiFlow-extended KPM service model, stores incoming
telemetry in the SDL, featurizes the stream, and scores each session's
most recent window with the deployed detector. Sessions whose window score
exceeds the trained threshold produce :class:`AnomalyEvent`\\ s, routed over
RMR to the LLM analyzer xApp (the pre-filter/expensive-expert chain of
§3.3).

The deployed model arrives via the SMO train-then-deploy workflow
(Figure 3: "Train -> Deploy"); until a model is deployed the xApp only
accumulates telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from typing import Optional

import numpy as np

from repro.core.config import XsecConfig
from repro.hotpath.arena import SessionWindowArena
from repro.hotpath.incremental import IncrementalLstmScorer
from repro.megabatch.quantized import QuantizedLstmEngine
from repro.ml.detector import AnomalyDetector, LstmDetector
from repro.obs.metrics import WallTimer
from repro.oran.e2ap import ActionType, RicIndication
from repro.oran.e2sm_kpm import (
    ACTION_BLOCKLIST_TMSI,
    ACTION_RATE_LIMIT_ACCESS,
    ACTION_RELEASE_UE,
    MOBIFLOW_RAN_FUNCTION_ID,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.oran.xapp import XApp
from repro.scale.pool import InferencePool
from repro.scale.sharded_sdl import ShardedSdl
from repro.sim.engine import Event
from repro.slo import profiler as _profiler
from repro.slo.provenance import ProvenanceStore
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

# The RRC message that ends a session (the release signal eviction keys on).
RRC_RELEASE_MSG = "RRCRelease"

# RMR message type for anomaly events toward the analyzer xApp.
XSEC_ANOMALY_MTYPE = 60001

SDL_TELEMETRY_NS = "xsec.mobiflow"
SDL_ANOMALY_NS = "xsec.anomalies"


@dataclass(frozen=True)
class AnomalyEvent:
    """One flagged telemetry window."""

    detected_at: float
    session_id: int
    rnti: Optional[int]
    s_tmsi: Optional[int]
    score: float
    threshold: float
    # Indices into MobiWatch's record history covered by the window.
    record_indices: tuple
    # Timestamp of the newest telemetry entry in the window.
    newest_record_ts: float = 0.0
    # Evidence chain id (repro.slo provenance); None when slo is disabled.
    provenance_id: Optional[int] = None


class MobiWatchXApp(XApp):
    """Unsupervised anomaly detection over live security telemetry."""

    def __init__(self, ric, config: Optional[XsecConfig] = None, name: str = "mobiwatch") -> None:
        super().__init__(ric, name)
        self.config = config or XsecConfig()
        self.detector: Optional[AnomalyDetector] = None
        self.series = TelemetrySeries()
        self._encoder = self.config.spec.streaming_encoder()
        # Entries are None'd out when a session is evicted (no-arena mode).
        self._rows: list[Optional[np.ndarray]] = []
        # Arrival (ingest) sim-time per record index — feeds the loop traces.
        self._arrival_ts: list[float] = []
        self._session_records: dict[int, list[int]] = {}
        self._alerted_counts: dict[int, int] = {}
        # At most one pending short-session maturity check per session
        # (scheduling one per touch double-scored quiet short sessions:
        # two timers at the same record count both pass the count guard).
        self._pending_maturity: dict[int, Event] = {}
        self.records_seen = 0
        self.windows_scored = 0
        self.sessions_evicted = 0
        # Observers notified after a session's state is evicted (the LLM
        # analyzer prunes its per-session cooldown ledger through this).
        self._evict_callbacks: list = []
        self.anomalies: list[AnomalyEvent] = []
        metrics = self.sim.obs.metrics
        self._records_counter = metrics.counter(
            "mobiwatch.records_total", help="telemetry records ingested"
        )
        self._windows_counter = metrics.counter(
            "mobiwatch.windows_scored_total", help="inference passes"
        )
        self._anomaly_counter = metrics.counter(
            "mobiwatch.anomalies_total", help="alarms emitted"
        )
        self._capture_to_ingest = metrics.histogram(
            "mobiwatch.capture_to_ingest_s",
            help="record capture -> xApp ingest (report batching + E2 + RMR)",
        )
        self._inference_wall = metrics.histogram(
            "mobiwatch.inference_wall_s", help="detector scoring wall-clock cost"
        )
        self._score_hist = metrics.histogram(
            "mobiwatch.window_score",
            buckets=(1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
            help="detector anomaly scores",
        )
        self._detection_latency = metrics.histogram(
            "mobiwatch.detection_latency_s",
            help="newest telemetry entry of a flagged window -> alarm",
        )
        # repro.hotpath: per-session row arenas replace the _rows list (the
        # last window becomes one contiguous view), and incremental LSTM
        # scoring carries per-session hidden state. Defaults off, keeping
        # the seed's assembly + full-window re-run path bit-identical.
        # repro.megabatch's per-tick gather rides the same arena (its
        # window views are the gather sources), so batching forces it on.
        self._arena: Optional[SessionWindowArena] = None
        if self.config.hotpath.arena_enabled or self.config.megabatch.batching_enabled:
            self._arena = SessionWindowArena(self.config.spec.dim, self.config.window)
        self._incremental: Optional[IncrementalLstmScorer] = None
        # repro.megabatch: one fused detector call per tick across every
        # touched session; optional int8/float16 quantized LSTM tier with
        # carried state; session eviction bounds per-session state. All
        # default off (see docs/PERFORMANCE.md, "Megabatch").
        self._quantized: Optional[QuantizedLstmEngine] = None
        self._mb_gather = False
        self._mb_buf: Optional[np.ndarray] = None
        self._last_touch: dict[int, float] = {}
        self._track_touch = self.config.megabatch.evict_idle_s > 0
        self._evicted_counter = None
        if self.config.megabatch.eviction_enabled:
            self._evicted_counter = metrics.counter(
                "mobiwatch.sessions_evicted_total",
                help="sessions whose per-session state was dropped",
            )
        # repro.scale: UE-sharded SDL placement + batched inference pool.
        # Both default off, keeping the seed's inline per-window path.
        self._sharded_sdl = isinstance(self.sdl, ShardedSdl)
        self.pool: Optional[InferencePool] = None
        if self.config.scale.pooling_enabled:
            self.pool = InferencePool(
                lambda matrix: self.detector.scores(matrix),
                workers=self.config.scale.pool_workers,
                batch_windows=self.config.scale.pool_batch_windows,
                service_time_per_window_s=self.config.scale.pool_service_time_s,
                metrics=metrics,
                clock=lambda: self.sim.now,
                name=self.name,
            )
        # repro.slo: provenance minting + liveness heartbeat. Both gated on
        # slo.enabled so the disabled path creates no new metric series.
        self.provenance: Optional[ProvenanceStore] = None
        self._heartbeat_gauge = None
        self._scoring_path = "seed"
        if self.config.slo.enabled:
            self.provenance = ProvenanceStore(metrics=metrics, sdl=self.sdl)
            self._heartbeat_gauge = metrics.gauge(
                "health.heartbeat_ts",
                labels={"component": self.name},
                help="sim time of the component's last heartbeat",
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        super().start()
        trigger = MobiFlowKpmModel.encode_event_trigger(
            MobiFlowReportStyle(self.config.report_period_s).to_trigger()
        )
        self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger, ActionType.REPORT)
        if self._track_touch:
            self.schedule(
                self.config.megabatch.evict_sweep_s,
                self._evict_sweep,
                name=f"{self.name}.evict",
            )

    def deploy_detector(self, detector: AnomalyDetector) -> None:
        """Install a trained model (called by the SMO deploy step)."""
        if detector.threshold.threshold is None:
            raise ValueError("detector must be fitted before deployment")
        self.detector = detector
        detector.attach_metrics(self.sim.obs.metrics)
        hotpath = self.config.hotpath
        if hotpath.compiled:
            detector.compile(hotpath.dtype)
        self._incremental = None
        if hotpath.incremental:
            if isinstance(detector, LstmDetector):
                self._incremental = IncrementalLstmScorer(
                    detector, hotpath, metrics=self.sim.obs.metrics
                )
                # Sessions may already hold telemetry: replay their rows so
                # the carried state matches record-by-record ingest.
                for session_id in self._arena.session_ids():
                    self._incremental.warm_up(
                        session_id, self._arena.session_rows(session_id)
                    )
            else:
                self.log(
                    "hotpath.incremental ignored: carried-state scoring "
                    f"needs the LSTM detector, got {detector.name}"
                )
        # repro.megabatch: the quantized tier needs an LSTM fitted with
        # megabatch attached (the fit runs the calibration pass); anything
        # else falls back to the float gather path.
        megabatch = self.config.megabatch
        self._quantized = None
        if megabatch.quantized:
            if not isinstance(detector, LstmDetector):
                self.log(
                    "megabatch.quantized ignored: the int8 tier needs the "
                    f"LSTM detector, got {detector.name}"
                )
            elif detector.calibration is None:
                self.log(
                    "megabatch.quantized ignored: detector was fitted without "
                    "megabatch attached (no calibration pass)"
                )
            else:
                self._quantized = QuantizedLstmEngine(
                    detector,
                    detector.calibration,
                    megabatch,
                    metrics=self.sim.obs.metrics,
                )
                for session_id in self._arena.session_ids():
                    self._quantized.warm_up(
                        session_id, self._arena.session_rows(session_id)
                    )
        # repro.runtime: window scoring in supervised OS worker processes.
        # Spawned at deploy time (the workers need the trained weights) and
        # plugged into the same self.pool slot: _score_window's pool branch,
        # _flush_pool's call sites, and the health scoreboard all apply
        # unchanged. Bit-identity with the seed path is preserved — the
        # workers score one [1, window*dim] call per window and the blocking
        # flush is invisible to sim time (see docs/RUNTIME.md).
        if self.config.runtime.score_in_processes:
            from repro.runtime.bridge import ProcessScoringPool

            if isinstance(self.pool, ProcessScoringPool):
                self.pool.close()  # re-deploy: workers need the new weights
            self.pool = ProcessScoringPool(
                detector,
                self.config.runtime,
                metrics=self.sim.obs.metrics,
                clock=lambda: self.sim.now,
                name=self.name,
            )
        # Per-tick gather batching: one fused detector call per tick. The
        # incremental scorer already pays O(1) per score, so it wins when
        # both are configured.
        self._mb_gather = (
            megabatch.batching_enabled
            and self._quantized is None
            and self._incremental is None
        )
        if megabatch.batching_enabled and self._incremental is not None:
            self.log("megabatch batching idle: hotpath.incremental takes precedence")
        # Provenance names the runtime that produced each score, since the
        # fast paths carry documented tolerances (docs/PERFORMANCE.md).
        parts = []
        if self._quantized is not None:
            parts.append(f"quantized-int8-{megabatch.state_dtype}")
        elif self._incremental is not None:
            parts.append(
                f"incremental-{hotpath.incremental_mode}-{hotpath.incremental_dtype}"
            )
        elif hotpath.compiled:
            parts.append(f"compiled-{hotpath.dtype}")
        if self._mb_gather:
            parts.append("megabatch")
        if (
            self.pool is not None
            and self._incremental is None
            and self._quantized is None
            and not self._mb_gather
        ):
            if self.config.runtime.score_in_processes:
                parts.append(f"process-{self.config.runtime.workers}w")
            else:
                parts.append(f"pool-{self.config.scale.pool_workers}w")
        self._scoring_path = "+".join(parts) if parts else "seed"
        self.log(
            "detector deployed",
            detector=detector.name,
            threshold=detector.threshold.threshold,
        )

    # -- policy (A1) -----------------------------------------------------------

    def on_policy(self, policy_type_id: int, policy: dict) -> None:
        """Detection-policy updates: re-fit the operating threshold."""
        percentile = policy.get("threshold_percentile")
        if percentile is not None and self.detector is not None:
            if self.detector.training_scores is None:
                self.log("policy ignored: no training scores retained")
                return
            self.detector.threshold.percentile = float(percentile)
            self.detector.threshold.fit(self.detector.training_scores)
            self.log(f"threshold re-fit at percentile {percentile}")

    # -- telemetry ingestion -------------------------------------------------------

    def on_indication(self, indication: RicIndication) -> None:
        # Stage boundary for the slo profiler: ingest covers decode + SDL
        # writes + featurization; scoring shows up under its own blocks.
        with _profiler.profile_block("mobiwatch.ingest"):
            self._on_indication(indication)

    def _on_indication(self, indication: RicIndication) -> None:
        records = MobiFlowKpmModel.decode_indication(
            indication.indication_header, indication.indication_message
        )
        if self._heartbeat_gauge is not None:
            self._heartbeat_gauge.set(self.now)
        touched: list[int] = []
        # (session, row) per record this tick — feeds the quantized tier's
        # fused batched steps. Session-release signals drive eviction.
        tick_rows: list = []
        released: list[int] = []
        evict_release = self.config.megabatch.evict_on_release
        # repro.genfast: defer per-record SDL writes and flush them as one
        # acked batched write per shard after the ingest loop. Stored
        # values and watcher notifications are identical; only the write
        # batching changes.
        batch_writes = self.config.genfast.batched_sdl_writes
        pending_writes: list[tuple[int, MobiFlowRecord]] = []
        for record in records:
            index = len(self.series)
            if index and record.timestamp < self.series[index - 1].timestamp:
                # Batches from different report intervals can interleave
                # slightly; process in arrival order, clamping the clock.
                record = dataclasses_replace(
                    record, timestamp=self.series[index - 1].timestamp
                )
            self.series.append(record)
            row = self._encoder.push(record)
            if self._arena is not None:
                if record.session_id:
                    self._arena.append(record.session_id, row)
                    if self._incremental is not None:
                        self._incremental.push(record.session_id, row)
            else:
                self._rows.append(row)
            self._arrival_ts.append(self.now)
            if batch_writes:
                pending_writes.append((index, record))
            elif self._sharded_sdl:
                # Place telemetry by UE session so one session's records
                # stay on one shard (and its replicas).
                self.sdl.set(
                    SDL_TELEMETRY_NS,
                    f"{index:09d}",
                    _record_value(record),
                    shard_key=str(record.session_id or index),
                )
            else:
                self.sdl.set(SDL_TELEMETRY_NS, f"{index:09d}", _record_value(record))
            self.records_seen += 1
            self._records_counter.inc()
            self._capture_to_ingest.observe(self.now - record.timestamp)
            if record.session_id:
                session_id = record.session_id
                self._session_records.setdefault(session_id, []).append(index)
                touched.append(session_id)
                if self._track_touch:
                    self._last_touch[session_id] = self.now
                if self._quantized is not None:
                    tick_rows.append((session_id, row))
                if evict_release and record.msg == RRC_RELEASE_MSG:
                    released.append(session_id)
        if pending_writes:
            if self._sharded_sdl:
                # Same placement as the per-record path: group by shard key
                # so each session's batch lands on its session's shard.
                groups: dict[str, list[tuple[str, dict]]] = {}
                for index, record in pending_writes:
                    groups.setdefault(str(record.session_id or index), []).append(
                        (f"{index:09d}", _record_value(record))
                    )
                for shard_key, pairs in groups.items():
                    self.sdl.set_many(SDL_TELEMETRY_NS, pairs, shard_key=shard_key)
            else:
                self.sdl.set_many(
                    SDL_TELEMETRY_NS,
                    [
                        (f"{index:09d}", _record_value(record))
                        for index, record in pending_writes
                    ],
                )
        if self.detector is not None:
            unique = list(dict.fromkeys(touched))
            if self._quantized is not None:
                self._quantized_ingest(tick_rows)
                self._quantized_tick(unique)
            elif self._mb_gather:
                self._megabatch_tick(unique)
            else:
                for session_id in unique:
                    self._score_session(session_id)
        self._flush_pool()
        if released:
            self._evict_released(released)
            self._flush_pool()

    # -- scoring ------------------------------------------------------------------------

    # A session shorter than the window is scored (left-padded) only after
    # it has gone quiet for this long: an in-flight registration is not an
    # "uncompleted connection" until it stalls. Keeps live semantics equal
    # to the offline windowing without alarming on every session prefix.
    SHORT_SESSION_MATURITY_S = 0.75

    def _score_session(self, session_id: int) -> None:
        indices = self._session_records.get(session_id, [])
        if not indices:
            return
        if len(indices) < self.config.window:
            self._schedule_maturity(session_id, len(indices))
            return
        self._score_window(session_id, indices)

    def _schedule_maturity(self, session_id: int, count: int) -> None:
        """(Re)arm the session's single pending maturity check.

        Superseded checks are cancelled: scheduling one per touch left two
        timers at the same record count, both passing the count guard and
        double-scoring a quiet short session (inflated windows_scored,
        score histogram, and profiler samples).
        """
        pending = self._pending_maturity.get(session_id)
        if pending is not None:
            pending.cancel()
        self._pending_maturity[session_id] = self.schedule(
            self.SHORT_SESSION_MATURITY_S,
            lambda: self._mature_short_session(session_id, count),
            name=f"{self.name}.mature",
        )

    def _mature_short_session(self, session_id: int, count: int) -> None:
        self._pending_maturity.pop(session_id, None)
        indices = self._session_records.get(session_id, [])
        if len(indices) != count:
            return  # progressed since the check was armed
        self._score_window(session_id, indices)
        self._flush_pool()

    # -- megabatch per-tick scoring (repro.megabatch) ------------------------------

    def _split_ready(self, session_ids) -> tuple:
        """Partition a tick's touched sessions into score-now vs short.

        Short sessions get their (single) maturity check armed, exactly as
        the per-session path would.
        """
        window = self.config.window
        ready: list[int] = []
        counts: list[int] = []
        chosens: list[list] = []
        for session_id in session_ids:
            indices = self._session_records.get(session_id, [])
            if not indices:
                continue
            if len(indices) < window:
                self._schedule_maturity(session_id, len(indices))
                continue
            ready.append(session_id)
            counts.append(len(indices))
            chosens.append(indices[-window:])
        return ready, counts, chosens

    def _megabatch_tick(self, session_ids) -> None:
        ready, counts, chosens = self._split_ready(session_ids)
        self._megabatch_score(ready, counts, chosens)

    def _megabatch_score(self, ready, counts, chosens) -> None:
        """Gather the ready sessions' pending windows; score the tick batch.

        Each arena window view is copied into one reusable
        ``[n_sessions, window * dim]`` matrix. Under the compiled float32
        kernels the whole matrix goes through **one fused GEMM per tick**
        (the performance tier, hotpath-tolerance contract). In float64 the
        rows are scored through the same ``[1, window*dim]``-shaped calls
        the seed path makes — BLAS dispatches different (differently
        accumulated) kernels per batch height, so a fused float64 call
        would drift from the seed in the last ulps; the row-shaped calls
        keep float64 scores (and the anomaly events they produce)
        bit-identical to the seed path, enforced per attack scenario by
        tests/test_megabatch.py. Bookkeeping (counter bumps, histogram
        fill, threshold sweep) is batched per tick in both modes.
        """
        if not ready:
            return
        width = self.config.window * self.config.spec.dim
        buf = self._mb_buf
        if buf is None or buf.shape[0] < len(ready) or buf.shape[1] != width:
            capacity = len(ready) if buf is None else max(len(ready), buf.shape[0] * 2)
            buf = self._mb_buf = np.empty((capacity, width), dtype=self._arena.dtype)
        matrix = buf[: len(ready)]
        for row, session_id in enumerate(ready):
            matrix[row] = self._arena.window_rows(session_id).reshape(-1)
        fused = (
            self.config.hotpath.compiled and self.config.hotpath.dtype == "float32"
        )
        with _profiler.profile_block("mobiwatch.score"), WallTimer(self._inference_wall):
            if fused or len(ready) == 1:
                scores = np.asarray(self.detector.scores(matrix), dtype=np.float64)
            else:
                scores = np.array(
                    [
                        float(self.detector.scores(matrix[i : i + 1])[0])
                        for i in range(len(ready))
                    ]
                )
        threshold = self.detector.threshold.threshold or 0.0
        self._handle_scores_batch(ready, counts, chosens, scores, self.now, threshold)

    def _quantized_ingest(self, tick_rows) -> None:
        """Advance carried quantized state: one fused batched step per wave.

        Wave k holds each session's k-th record of the tick, so session
        ids are unique within a wave (one state slot, one update) and a
        tick with r records per session costs r fused steps total —
        instead of r steps *per session*.
        """
        wave_index: dict[int, int] = {}
        waves: list[tuple[list, list]] = []
        for session_id, row in tick_rows:
            wave = wave_index.get(session_id, 0)
            if wave == len(waves):
                waves.append(([], []))
            waves[wave][0].append(session_id)
            waves[wave][1].append(row)
            wave_index[session_id] = wave + 1
        for session_ids, rows in waves:
            self._quantized.megastep(session_ids, np.asarray(rows, dtype=np.float32))

    def _quantized_tick(self, session_ids) -> None:
        ready, counts, chosens = self._split_ready(session_ids)
        if not ready:
            return
        with _profiler.profile_block("mobiwatch.score"), WallTimer(self._inference_wall):
            scores = self._quantized.window_scores_for(ready)
        self._handle_scores_batch(
            ready, counts, chosens, scores, self.now, self._quantized_operating_threshold()
        )

    def _quantized_operating_threshold(self) -> float:
        """The quantized tier's own percentile operating point.

        Quantized scores live in a (slightly) different score space than
        float64 scores, so the detector fits a separate threshold on the
        quantized training scores; the float64 threshold is the fallback.
        """
        quantized = self.detector.quantized_threshold
        if quantized is not None and quantized.threshold is not None:
            return quantized.threshold
        return self.detector.threshold.threshold or 0.0

    # -- session eviction (repro.megabatch: bounded per-session state) -------------

    def _evict_released(self, released) -> None:
        for session_id in dict.fromkeys(released):
            pending = self._pending_maturity.pop(session_id, None)
            if pending is not None:
                pending.cancel()
                # The release completes the session: score its final short
                # window now instead of waiting out the maturity timer.
                indices = self._session_records.get(session_id, [])
                if indices:
                    self._score_window(session_id, indices)
            self._evict_session(session_id)

    def _evict_sweep(self) -> None:
        horizon = self.now - self.config.megabatch.evict_idle_s
        stale = [s for s, t in self._last_touch.items() if t <= horizon]
        for session_id in stale:
            self._evict_session(session_id)
        self.schedule(
            self.config.megabatch.evict_sweep_s,
            self._evict_sweep,
            name=f"{self.name}.evict",
        )

    def _evict_session(self, session_id: int) -> bool:
        """Drop every piece of the session's per-xApp state.

        Without eviction, _session_records / _rows / _alerted_counts and
        the scorers' carried state grow forever — a leak at fleet scale.
        A re-appearing session starts from an empty window history.
        """
        pending = self._pending_maturity.pop(session_id, None)
        if pending is not None:
            pending.cancel()
        indices = self._session_records.pop(session_id, None)
        if indices is None:
            return False
        if self._arena is None:
            # Row arrays are only reachable through _session_records;
            # None them out (the list keeps index alignment).
            for index in indices:
                self._rows[index] = None
        self._alerted_counts.pop(session_id, None)
        self._last_touch.pop(session_id, None)
        if self._arena is not None:
            self._arena.release(session_id)
        if self._incremental is not None:
            self._incremental.release(session_id)
        if self._quantized is not None:
            self._quantized.release(session_id)
        self.sessions_evicted += 1
        if self._evicted_counter is not None:
            self._evicted_counter.inc()
        for callback in self._evict_callbacks:
            callback(session_id)
        return True

    def on_session_evicted(self, callback) -> None:
        """Register an observer for session evictions (called with the
        session id after every successful :meth:`_evict_session`)."""
        self._evict_callbacks.append(callback)

    def _flush_pool(self) -> None:
        if self.pool is not None and self.pool.pending:
            self.pool.flush()

    def _score_window(self, session_id: int, indices: list) -> None:
        if self.detector is None:
            return
        window = self.config.window
        spec = self.config.spec
        chosen = indices[-window:]
        if self._quantized is not None:
            # Carried-state tier: the fused batched steps already ran at
            # ingest; the score is the session's error-ring max.
            with WallTimer(self._inference_wall):
                score = self._quantized.window_score(session_id)
            self._handle_score(
                session_id,
                len(indices),
                chosen,
                score,
                self.now,
                threshold=self._quantized_operating_threshold(),
            )
            return
        if self._mb_gather:
            # Matured short sessions route through the same gather call as
            # the per-tick batch (a batch of one).
            self._megabatch_score([session_id], [len(indices)], [list(chosen)])
            return
        if self._incremental is not None:
            # O(1) carried-state scoring: one fused LSTM step was already
            # paid at ingest; the score is a max over stored per-record
            # errors. Bypasses the pool (there is no batch to amortize).
            with WallTimer(self._inference_wall):
                score = self._incremental.window_score(
                    session_id, rows=self._arena.session_rows(session_id)
                )
            self._handle_score(session_id, len(indices), chosen, score, self.now)
            return
        if self._arena is not None:
            # The arena's zero pad prefix makes the padded-or-full last
            # window a single contiguous view: no stack, no pad allocation.
            rows = self._arena.window_rows(session_id)
        else:
            rows = np.stack([self._rows[i] for i in chosen])
            if len(chosen) < window:
                padded = np.zeros((window, spec.dim), dtype=rows.dtype)
                padded[window - len(chosen) :] = rows
                rows = padded
        if self.pool is not None:
            record_count = len(indices)
            self.pool.submit(
                session_id,
                rows.reshape(-1),
                lambda score, done_at: self._handle_score(
                    session_id, record_count, list(chosen), score, done_at
                ),
            )
            return
        vector = rows.reshape(1, -1)
        with _profiler.profile_block("mobiwatch.score"), WallTimer(self._inference_wall):
            score = float(self.detector.scores(vector)[0])
        self._handle_score(session_id, len(indices), chosen, score, self.now)

    def _handle_score(
        self,
        session_id: int,
        record_count: int,
        chosen: list,
        score: float,
        detected_at: float,
        threshold: Optional[float] = None,
    ) -> None:
        """Threshold + alert logic, shared by the inline and pooled paths.

        ``threshold`` overrides the detector's float64 operating point
        (the quantized tier passes its own).
        """
        self.windows_scored += 1
        self._windows_counter.inc()
        self._score_hist.observe(score)
        if threshold is None:
            threshold = self.detector.threshold.threshold or 0.0
        if score <= threshold:
            return
        self._maybe_alert(session_id, record_count, chosen, score, detected_at, threshold)

    def _handle_scores_batch(
        self,
        session_ids: list,
        record_counts: list,
        chosens: list,
        scores: np.ndarray,
        detected_at: float,
        threshold: float,
    ) -> None:
        """Batched counterpart of :meth:`_handle_score` (one tick's scores)."""
        n = len(session_ids)
        self.windows_scored += n
        self._windows_counter.inc(n)
        self._score_hist.observe_many(scores)
        for i in np.flatnonzero(scores > threshold):
            self._maybe_alert(
                session_ids[i],
                record_counts[i],
                list(chosens[i]),
                float(scores[i]),
                detected_at,
                threshold,
            )

    def _maybe_alert(
        self,
        session_id: int,
        record_count: int,
        chosen: list,
        score: float,
        detected_at: float,
        threshold: float,
    ) -> None:
        # One alert per session per record-count (new evidence -> new alert).
        if self._alerted_counts.get(session_id) == record_count:
            return
        self._alerted_counts[session_id] = record_count
        newest = self.series[chosen[-1]]
        self._detection_latency.observe(max(0.0, detected_at - newest.timestamp))
        provenance_id = None
        if self.provenance is not None:
            prov = self.provenance.mint(
                session_id=session_id,
                detected_at=detected_at,
                score=score,
                threshold=threshold,
                record_indices=tuple(chosen),
                records=[self.series[i] for i in chosen],
                detector=self.detector,
                scoring_path=self._scoring_path,
                arrival_ts=self.arrival_time(chosen[-1]),
            )
            provenance_id = prov.provenance_id
        event = AnomalyEvent(
            detected_at=detected_at,
            session_id=session_id,
            rnti=newest.rnti,
            s_tmsi=newest.s_tmsi,
            score=score,
            threshold=threshold,
            record_indices=tuple(chosen),
            newest_record_ts=newest.timestamp,
            provenance_id=provenance_id,
        )
        self.anomalies.append(event)
        self._anomaly_counter.inc()
        self.log(
            "anomaly detected",
            session=session_id,
            score=round(score, 5),
            threshold=round(threshold, 5),
        )
        self.sdl.set(
            SDL_ANOMALY_NS,
            f"{len(self.anomalies):06d}",
            {
                "session": session_id,
                "score": score,
                "threshold": threshold,
                "detected_at": event.detected_at,
            },
        )
        self.ric.rmr.send(XSEC_ANOMALY_MTYPE, -1, event)

    # -- context access (for the analyzer) ---------------------------------------------

    def arrival_time(self, record_index: int) -> Optional[float]:
        """Sim time when the record reached this xApp (loop-trace input)."""
        if 0 <= record_index < len(self._arrival_ts):
            return self._arrival_ts[record_index]
        return None

    def context_for(self, event: AnomalyEvent, max_records: int = 40) -> list[MobiFlowRecord]:
        """The flagged window plus surrounding stream context."""
        end = event.record_indices[-1] + 1
        start = max(0, end - max_records)
        return self.series[start:end].records

    # -- response helpers (used by the pipeline's closed loop) ---------------------------

    def release_ue(self, rnti: int) -> None:
        header, message = MobiFlowKpmModel.encode_control(ACTION_RELEASE_UE, rnti=rnti)
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)

    def blocklist_tmsi(self, tmsi: int) -> None:
        header, message = MobiFlowKpmModel.encode_control(
            ACTION_BLOCKLIST_TMSI, tmsi=tmsi
        )
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)

    def rate_limit_access(self, max_setups: int, window_s: float) -> None:
        header, message = MobiFlowKpmModel.encode_control(
            ACTION_RATE_LIMIT_ACCESS, max_setups=max_setups, window_s=window_s
        )
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)


def _record_value(record: MobiFlowRecord) -> dict:
    return {k: v for k, v in record.to_dict().items() if v is not None}
