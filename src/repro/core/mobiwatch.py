"""MobiWatch: the unsupervised anomaly-detection xApp (paper §3.2).

Subscribes to the MobiFlow-extended KPM service model, stores incoming
telemetry in the SDL, featurizes the stream, and scores each session's
most recent window with the deployed detector. Sessions whose window score
exceeds the trained threshold produce :class:`AnomalyEvent`\\ s, routed over
RMR to the LLM analyzer xApp (the pre-filter/expensive-expert chain of
§3.3).

The deployed model arrives via the SMO train-then-deploy workflow
(Figure 3: "Train -> Deploy"); until a model is deployed the xApp only
accumulates telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from typing import Optional

import numpy as np

from repro.core.config import XsecConfig
from repro.hotpath.arena import SessionWindowArena
from repro.hotpath.incremental import IncrementalLstmScorer
from repro.ml.detector import AnomalyDetector, LstmDetector
from repro.obs.metrics import WallTimer
from repro.oran.e2ap import ActionType, RicIndication
from repro.oran.e2sm_kpm import (
    ACTION_BLOCKLIST_TMSI,
    ACTION_RATE_LIMIT_ACCESS,
    ACTION_RELEASE_UE,
    MOBIFLOW_RAN_FUNCTION_ID,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.oran.xapp import XApp
from repro.scale.pool import InferencePool
from repro.scale.sharded_sdl import ShardedSdl
from repro.slo import profiler as _profiler
from repro.slo.provenance import ProvenanceStore
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

# RMR message type for anomaly events toward the analyzer xApp.
XSEC_ANOMALY_MTYPE = 60001

SDL_TELEMETRY_NS = "xsec.mobiflow"
SDL_ANOMALY_NS = "xsec.anomalies"


@dataclass(frozen=True)
class AnomalyEvent:
    """One flagged telemetry window."""

    detected_at: float
    session_id: int
    rnti: Optional[int]
    s_tmsi: Optional[int]
    score: float
    threshold: float
    # Indices into MobiWatch's record history covered by the window.
    record_indices: tuple
    # Timestamp of the newest telemetry entry in the window.
    newest_record_ts: float = 0.0
    # Evidence chain id (repro.slo provenance); None when slo is disabled.
    provenance_id: Optional[int] = None


class MobiWatchXApp(XApp):
    """Unsupervised anomaly detection over live security telemetry."""

    def __init__(self, ric, config: Optional[XsecConfig] = None, name: str = "mobiwatch") -> None:
        super().__init__(ric, name)
        self.config = config or XsecConfig()
        self.detector: Optional[AnomalyDetector] = None
        self.series = TelemetrySeries()
        self._encoder = self.config.spec.streaming_encoder()
        self._rows: list[np.ndarray] = []
        # Arrival (ingest) sim-time per record index — feeds the loop traces.
        self._arrival_ts: list[float] = []
        self._session_records: dict[int, list[int]] = {}
        self._alerted_counts: dict[int, int] = {}
        self.records_seen = 0
        self.windows_scored = 0
        self.anomalies: list[AnomalyEvent] = []
        metrics = self.sim.obs.metrics
        self._records_counter = metrics.counter(
            "mobiwatch.records_total", help="telemetry records ingested"
        )
        self._windows_counter = metrics.counter(
            "mobiwatch.windows_scored_total", help="inference passes"
        )
        self._anomaly_counter = metrics.counter(
            "mobiwatch.anomalies_total", help="alarms emitted"
        )
        self._capture_to_ingest = metrics.histogram(
            "mobiwatch.capture_to_ingest_s",
            help="record capture -> xApp ingest (report batching + E2 + RMR)",
        )
        self._inference_wall = metrics.histogram(
            "mobiwatch.inference_wall_s", help="detector scoring wall-clock cost"
        )
        self._score_hist = metrics.histogram(
            "mobiwatch.window_score",
            buckets=(1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
            help="detector anomaly scores",
        )
        self._detection_latency = metrics.histogram(
            "mobiwatch.detection_latency_s",
            help="newest telemetry entry of a flagged window -> alarm",
        )
        # repro.hotpath: per-session row arenas replace the _rows list (the
        # last window becomes one contiguous view), and incremental LSTM
        # scoring carries per-session hidden state. Defaults off, keeping
        # the seed's assembly + full-window re-run path bit-identical.
        self._arena: Optional[SessionWindowArena] = None
        if self.config.hotpath.arena_enabled:
            self._arena = SessionWindowArena(self.config.spec.dim, self.config.window)
        self._incremental: Optional[IncrementalLstmScorer] = None
        # repro.scale: UE-sharded SDL placement + batched inference pool.
        # Both default off, keeping the seed's inline per-window path.
        self._sharded_sdl = isinstance(self.sdl, ShardedSdl)
        self.pool: Optional[InferencePool] = None
        if self.config.scale.pooling_enabled:
            self.pool = InferencePool(
                lambda matrix: self.detector.scores(matrix),
                workers=self.config.scale.pool_workers,
                batch_windows=self.config.scale.pool_batch_windows,
                service_time_per_window_s=self.config.scale.pool_service_time_s,
                metrics=metrics,
                clock=lambda: self.sim.now,
                name=self.name,
            )
        # repro.slo: provenance minting + liveness heartbeat. Both gated on
        # slo.enabled so the disabled path creates no new metric series.
        self.provenance: Optional[ProvenanceStore] = None
        self._heartbeat_gauge = None
        self._scoring_path = "seed"
        if self.config.slo.enabled:
            self.provenance = ProvenanceStore(metrics=metrics, sdl=self.sdl)
            self._heartbeat_gauge = metrics.gauge(
                "health.heartbeat_ts",
                labels={"component": self.name},
                help="sim time of the component's last heartbeat",
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        super().start()
        trigger = MobiFlowKpmModel.encode_event_trigger(
            MobiFlowReportStyle(self.config.report_period_s).to_trigger()
        )
        self.subscribe(MOBIFLOW_RAN_FUNCTION_ID, trigger, ActionType.REPORT)

    def deploy_detector(self, detector: AnomalyDetector) -> None:
        """Install a trained model (called by the SMO deploy step)."""
        if detector.threshold.threshold is None:
            raise ValueError("detector must be fitted before deployment")
        self.detector = detector
        detector.attach_metrics(self.sim.obs.metrics)
        hotpath = self.config.hotpath
        if hotpath.compiled:
            detector.compile(hotpath.dtype)
        self._incremental = None
        if hotpath.incremental:
            if isinstance(detector, LstmDetector):
                self._incremental = IncrementalLstmScorer(
                    detector, hotpath, metrics=self.sim.obs.metrics
                )
                # Sessions may already hold telemetry: replay their rows so
                # the carried state matches record-by-record ingest.
                for session_id in self._arena.session_ids():
                    self._incremental.warm_up(
                        session_id, self._arena.session_rows(session_id)
                    )
            else:
                self.log(
                    "hotpath.incremental ignored: carried-state scoring "
                    f"needs the LSTM detector, got {detector.name}"
                )
        # Provenance names the runtime that produced each score, since the
        # fast paths carry documented tolerances (docs/PERFORMANCE.md).
        parts = []
        if self._incremental is not None:
            parts.append(
                f"incremental-{hotpath.incremental_mode}-{hotpath.incremental_dtype}"
            )
        elif hotpath.compiled:
            parts.append(f"compiled-{hotpath.dtype}")
        if self.pool is not None and self._incremental is None:
            parts.append(f"pool-{self.config.scale.pool_workers}w")
        self._scoring_path = "+".join(parts) if parts else "seed"
        self.log(
            "detector deployed",
            detector=detector.name,
            threshold=detector.threshold.threshold,
        )

    # -- policy (A1) -----------------------------------------------------------

    def on_policy(self, policy_type_id: int, policy: dict) -> None:
        """Detection-policy updates: re-fit the operating threshold."""
        percentile = policy.get("threshold_percentile")
        if percentile is not None and self.detector is not None:
            if self.detector.training_scores is None:
                self.log("policy ignored: no training scores retained")
                return
            self.detector.threshold.percentile = float(percentile)
            self.detector.threshold.fit(self.detector.training_scores)
            self.log(f"threshold re-fit at percentile {percentile}")

    # -- telemetry ingestion -------------------------------------------------------

    def on_indication(self, indication: RicIndication) -> None:
        # Stage boundary for the slo profiler: ingest covers decode + SDL
        # writes + featurization; scoring shows up under its own blocks.
        with _profiler.profile_block("mobiwatch.ingest"):
            self._on_indication(indication)

    def _on_indication(self, indication: RicIndication) -> None:
        records = MobiFlowKpmModel.decode_indication(
            indication.indication_header, indication.indication_message
        )
        if self._heartbeat_gauge is not None:
            self._heartbeat_gauge.set(self.now)
        touched: list[int] = []
        for record in records:
            index = len(self.series)
            if index and record.timestamp < self.series[index - 1].timestamp:
                # Batches from different report intervals can interleave
                # slightly; process in arrival order, clamping the clock.
                record = dataclasses_replace(
                    record, timestamp=self.series[index - 1].timestamp
                )
            self.series.append(record)
            row = self._encoder.push(record)
            if self._arena is not None:
                if record.session_id:
                    self._arena.append(record.session_id, row)
                    if self._incremental is not None:
                        self._incremental.push(record.session_id, row)
            else:
                self._rows.append(row)
            self._arrival_ts.append(self.now)
            if self._sharded_sdl:
                # Place telemetry by UE session so one session's records
                # stay on one shard (and its replicas).
                self.sdl.set(
                    SDL_TELEMETRY_NS,
                    f"{index:09d}",
                    _record_value(record),
                    shard_key=str(record.session_id or index),
                )
            else:
                self.sdl.set(SDL_TELEMETRY_NS, f"{index:09d}", _record_value(record))
            self.records_seen += 1
            self._records_counter.inc()
            self._capture_to_ingest.observe(self.now - record.timestamp)
            if record.session_id:
                self._session_records.setdefault(record.session_id, []).append(index)
                touched.append(record.session_id)
        if self.detector is not None:
            for session_id in dict.fromkeys(touched):
                self._score_session(session_id)
        self._flush_pool()

    # -- scoring ------------------------------------------------------------------------

    # A session shorter than the window is scored (left-padded) only after
    # it has gone quiet for this long: an in-flight registration is not an
    # "uncompleted connection" until it stalls. Keeps live semantics equal
    # to the offline windowing without alarming on every session prefix.
    SHORT_SESSION_MATURITY_S = 0.75

    def _score_session(self, session_id: int) -> None:
        indices = self._session_records.get(session_id, [])
        if not indices:
            return
        if len(indices) < self.config.window:
            count = len(indices)
            self.schedule(
                self.SHORT_SESSION_MATURITY_S,
                lambda: self._mature_short_session(session_id, count),
                name=f"{self.name}.mature",
            )
            return
        self._score_window(session_id, indices)

    def _mature_short_session(self, session_id: int, count: int) -> None:
        indices = self._session_records.get(session_id, [])
        if len(indices) != count:
            return  # progressed (or another maturation check is pending)
        self._score_window(session_id, indices)
        self._flush_pool()

    def _flush_pool(self) -> None:
        if self.pool is not None and self.pool.pending:
            self.pool.flush()

    def _score_window(self, session_id: int, indices: list) -> None:
        if self.detector is None:
            return
        window = self.config.window
        spec = self.config.spec
        chosen = indices[-window:]
        if self._incremental is not None:
            # O(1) carried-state scoring: one fused LSTM step was already
            # paid at ingest; the score is a max over stored per-record
            # errors. Bypasses the pool (there is no batch to amortize).
            with WallTimer(self._inference_wall):
                score = self._incremental.window_score(
                    session_id, rows=self._arena.session_rows(session_id)
                )
            self._handle_score(session_id, len(indices), chosen, score, self.now)
            return
        if self._arena is not None:
            # The arena's zero pad prefix makes the padded-or-full last
            # window a single contiguous view: no stack, no pad allocation.
            rows = self._arena.window_rows(session_id)
        else:
            rows = np.stack([self._rows[i] for i in chosen])
            if len(chosen) < window:
                padded = np.zeros((window, spec.dim), dtype=rows.dtype)
                padded[window - len(chosen) :] = rows
                rows = padded
        if self.pool is not None:
            record_count = len(indices)
            self.pool.submit(
                session_id,
                rows.reshape(-1),
                lambda score, done_at: self._handle_score(
                    session_id, record_count, list(chosen), score, done_at
                ),
            )
            return
        vector = rows.reshape(1, -1)
        with _profiler.profile_block("mobiwatch.score"), WallTimer(self._inference_wall):
            score = float(self.detector.scores(vector)[0])
        self._handle_score(session_id, len(indices), chosen, score, self.now)

    def _handle_score(
        self,
        session_id: int,
        record_count: int,
        chosen: list,
        score: float,
        detected_at: float,
    ) -> None:
        """Threshold + alert logic, shared by the inline and pooled paths."""
        self.windows_scored += 1
        self._windows_counter.inc()
        self._score_hist.observe(score)
        threshold = self.detector.threshold.threshold or 0.0
        if score <= threshold:
            return
        # One alert per session per record-count (new evidence -> new alert).
        if self._alerted_counts.get(session_id) == record_count:
            return
        self._alerted_counts[session_id] = record_count
        newest = self.series[chosen[-1]]
        self._detection_latency.observe(max(0.0, detected_at - newest.timestamp))
        provenance_id = None
        if self.provenance is not None:
            prov = self.provenance.mint(
                session_id=session_id,
                detected_at=detected_at,
                score=score,
                threshold=threshold,
                record_indices=tuple(chosen),
                records=[self.series[i] for i in chosen],
                detector=self.detector,
                scoring_path=self._scoring_path,
                arrival_ts=self.arrival_time(chosen[-1]),
            )
            provenance_id = prov.provenance_id
        event = AnomalyEvent(
            detected_at=detected_at,
            session_id=session_id,
            rnti=newest.rnti,
            s_tmsi=newest.s_tmsi,
            score=score,
            threshold=threshold,
            record_indices=tuple(chosen),
            newest_record_ts=newest.timestamp,
            provenance_id=provenance_id,
        )
        self.anomalies.append(event)
        self._anomaly_counter.inc()
        self.log(
            "anomaly detected",
            session=session_id,
            score=round(score, 5),
            threshold=round(threshold, 5),
        )
        self.sdl.set(
            SDL_ANOMALY_NS,
            f"{len(self.anomalies):06d}",
            {
                "session": session_id,
                "score": score,
                "threshold": threshold,
                "detected_at": event.detected_at,
            },
        )
        self.ric.rmr.send(XSEC_ANOMALY_MTYPE, -1, event)

    # -- context access (for the analyzer) ---------------------------------------------

    def arrival_time(self, record_index: int) -> Optional[float]:
        """Sim time when the record reached this xApp (loop-trace input)."""
        if 0 <= record_index < len(self._arrival_ts):
            return self._arrival_ts[record_index]
        return None

    def context_for(self, event: AnomalyEvent, max_records: int = 40) -> list[MobiFlowRecord]:
        """The flagged window plus surrounding stream context."""
        end = event.record_indices[-1] + 1
        start = max(0, end - max_records)
        return self.series[start:end].records

    # -- response helpers (used by the pipeline's closed loop) ---------------------------

    def release_ue(self, rnti: int) -> None:
        header, message = MobiFlowKpmModel.encode_control(ACTION_RELEASE_UE, rnti=rnti)
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)

    def blocklist_tmsi(self, tmsi: int) -> None:
        header, message = MobiFlowKpmModel.encode_control(
            ACTION_BLOCKLIST_TMSI, tmsi=tmsi
        )
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)

    def rate_limit_access(self, max_setups: int, window_s: float) -> None:
        header, message = MobiFlowKpmModel.encode_control(
            ACTION_RATE_LIMIT_ACCESS, max_setups=max_setups, window_s=window_s
        )
        self.send_control(MOBIFLOW_RAN_FUNCTION_ID, header, message)


def _record_value(record: MobiFlowRecord) -> dict:
    return {k: v for k, v in record.to_dict().items() if v is not None}
