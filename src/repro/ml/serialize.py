"""Detector persistence: save/load trained models to a single ``.npz``.

The SMO's model catalog needs durable artifacts (Figure 3's
train-then-deploy splits across machines in a real deployment). A saved
detector carries its weights, hyperparameters, and the fitted threshold,
so a deployment can load and serve it without retraining.
"""

from __future__ import annotations

import io
import pathlib
from typing import Union

import numpy as np

from repro import wire
from repro.ml.detector import AnomalyDetector, AutoencoderDetector, LstmDetector

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


class SerializeError(ValueError):
    """Raised on malformed or incompatible model files."""


def _meta_for(detector: AnomalyDetector) -> dict:
    meta = {
        "format": _FORMAT_VERSION,
        "kind": detector.name,
        "window": detector.window,
        "feature_dim": detector.feature_dim,
        "percentile": detector.threshold.percentile,
        "threshold": detector.threshold.threshold,
    }
    if isinstance(detector, AutoencoderDetector):
        meta["hidden_dim"] = detector.model.hidden_dim
        meta["latent_dim"] = detector.model.latent_dim
        meta["aggregate"] = detector.aggregate
    elif isinstance(detector, LstmDetector):
        meta["hidden_dim"] = detector.model.hidden_dim
    return meta


def _params_of(detector: AnomalyDetector) -> list[np.ndarray]:
    if isinstance(detector, AutoencoderDetector):
        return [p.value for p in detector.model.model.params()]
    if isinstance(detector, LstmDetector):
        return [p.value for p in detector.model.params()]
    raise SerializeError(f"cannot serialize detector kind {detector.name!r}")


def save_detector(detector: AnomalyDetector, path: PathLike) -> None:
    """Write a trained detector (weights + config + threshold) to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dumps_detector(detector))


def dumps_detector(detector: AnomalyDetector) -> bytes:
    """Serialize a trained detector to bytes (the ``.npz`` format in memory).

    The process runtime (repro.runtime) ships models to scoring-worker
    processes as bytes over the spawn arguments, so the worker can
    deserialize without touching the filesystem.
    """
    if detector.threshold.threshold is None:
        raise SerializeError("refusing to save an unfitted detector")
    arrays = {f"param_{i}": value for i, value in enumerate(_params_of(detector))}
    if detector.training_scores is not None:
        arrays["training_scores"] = detector.training_scores
    arrays["meta"] = np.frombuffer(wire.encode(_meta_for(detector)), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def loads_detector(data: bytes) -> AnomalyDetector:
    """Deserialize a detector produced by :func:`dumps_detector`."""
    return load_detector(io.BytesIO(data))


def load_detector(path: "PathLike | io.BytesIO") -> AnomalyDetector:
    """Load a detector saved by :func:`save_detector`."""
    with np.load(path) as archive:
        try:
            meta = wire.decode(archive["meta"].tobytes())
        except (KeyError, wire.WireError) as exc:
            raise SerializeError(f"not a detector file: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("format") != _FORMAT_VERSION:
            raise SerializeError(f"unsupported format {meta.get('format')!r}")
        kind = meta.get("kind")
        if kind == "autoencoder":
            detector: AnomalyDetector = AutoencoderDetector(
                window=meta["window"],
                feature_dim=meta["feature_dim"],
                hidden_dim=meta["hidden_dim"],
                latent_dim=meta["latent_dim"],
                percentile=meta["percentile"],
                aggregate=meta["aggregate"],
            )
            params = detector.model.model.params()
        elif kind == "lstm":
            detector = LstmDetector(
                window=meta["window"],
                feature_dim=meta["feature_dim"],
                hidden_dim=meta["hidden_dim"],
                percentile=meta["percentile"],
            )
            params = detector.model.params()
        else:
            raise SerializeError(f"unknown detector kind {kind!r}")
        for i, param in enumerate(params):
            stored = archive[f"param_{i}"]
            if stored.shape != param.value.shape:
                raise SerializeError(
                    f"weight {i} shape mismatch: {stored.shape} vs {param.value.shape}"
                )
            param.value[...] = stored
        detector.threshold.threshold = float(meta["threshold"])
        if "training_scores" in archive:
            detector.training_scores = archive["training_scores"]
    return detector
