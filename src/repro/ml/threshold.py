"""Percentile thresholding over training-set anomaly scores (paper §4.1).

"After training, we select a 99% percentile threshold among the
reconstruction errors for anomaly detection, assuming 1% outliers within
the training set caused by network noise."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class PercentileThreshold:
    """Decision rule ``y = 1[score > threshold]``."""

    percentile: float = 99.0
    threshold: Optional[float] = None

    def fit(self, training_scores: np.ndarray) -> "PercentileThreshold":
        scores = np.asarray(training_scores, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("cannot fit a threshold on empty scores")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")
        self.threshold = float(np.percentile(scores, self.percentile))
        return self

    def classify(self, scores: np.ndarray) -> np.ndarray:
        """Boolean anomaly decisions for each score."""
        if self.threshold is None:
            raise RuntimeError("threshold not fitted")
        return np.asarray(scores, dtype=np.float64) > self.threshold
