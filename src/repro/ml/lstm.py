"""LSTM next-step predictor with manual BPTT (paper §3.2, Sequence Modeling).

``x_hat_{i+N} = f_LSTM(x_i .. x_{i+N-1})``: the model reads a window of
telemetry feature vectors and predicts the next entry's features; the
prediction error against the actual entry is the anomaly score. The forward
and backward passes (backpropagation through time) are implemented directly
in numpy and verified against finite differences in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.autoencoder import TrainReport
from repro.ml.layers import Dense, Parameter, glorot_init
from repro.ml.losses import mse_loss, per_sample_mse
from repro.ml.optim import Adam


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


@dataclass
class _StepCache:
    """Intermediate values of one timestep, kept for BPTT."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LstmPredictor:
    """Single-layer LSTM + linear head predicting the next feature vector."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 32,
        output_dim: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim if output_dim is not None else input_dim
        rng = np.random.default_rng(seed)
        h = hidden_dim
        self.Wx = Parameter(glorot_init(rng, input_dim, 4 * h))
        self.Wh = Parameter(glorot_init(rng, h, 4 * h))
        self.b = Parameter(np.zeros(4 * h))
        # Forget-gate bias starts positive: standard trick for gradient flow.
        self.b.value[h : 2 * h] = 1.0
        self.head = Dense(h, self.output_dim, rng)
        self._caches: list[_StepCache] = []
        self._shuffle_rng = np.random.default_rng(seed + 1)

    def params(self) -> list[Parameter]:
        return [self.Wx, self.Wh, self.b] + self.head.params()

    def reset(self) -> None:
        """Drop BPTT state from the last forward pass (inference cleanup)."""
        self._caches = []
        self.head.reset()

    # -- forward -----------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the LSTM over ``[batch, time, input_dim]``.

        Returns per-step predictions ``[batch, time, output_dim]`` where the
        prediction at step ``t`` is the model's estimate of ``x_{t+1}`` given
        the prefix ``x_0 .. x_t``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(f"expected [B, T, {self.input_dim}], got {x.shape}")
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.hidden_dim))
        c = np.zeros((batch, self.hidden_dim))
        self._caches = []
        hidden_states = []
        hd = self.hidden_dim
        for t in range(steps):
            xt = x[:, t, :]
            z = xt @ self.Wx.value + h @ self.Wh.value + self.b.value
            i = _sigmoid(z[:, :hd])
            f = _sigmoid(z[:, hd : 2 * hd])
            g = np.tanh(z[:, 2 * hd : 3 * hd])
            o = _sigmoid(z[:, 3 * hd :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._caches.append(
                _StepCache(x=xt, h_prev=h, c_prev=c, i=i, f=f, g=g, o=o, c=c_new, tanh_c=tanh_c)
            )
            hidden_states.append(h_new)
            h, c = h_new, c_new
        stacked = np.stack(hidden_states, axis=1)  # [B, T, H]
        flat_pred = self.head.forward(stacked.reshape(batch * steps, hd))
        return flat_pred.reshape(batch, steps, self.output_dim)

    # -- backward (BPTT) -----------------------------------------------------------

    def backward(self, grad_pred: np.ndarray) -> None:
        """Accumulate parameter gradients for the last forward pass.

        ``grad_pred`` is dLoss/dPredictions with shape [B, T, output_dim].
        """
        if not self._caches:
            raise RuntimeError("backward called before forward")
        batch, steps, _ = grad_pred.shape
        hd = self.hidden_dim
        dh_all = self.head.backward(
            grad_pred.reshape(batch * steps, self.output_dim)
        ).reshape(batch, steps, hd)
        dh = np.zeros((batch, hd))
        dc = np.zeros((batch, hd))
        for t, cache in zip(reversed(range(steps)), reversed(self._caches)):
            dh = dh + dh_all[:, t, :]
            do = dh * cache.tanh_c
            dtanh_c = dh * cache.o
            dc = dc + dtanh_c * (1.0 - cache.tanh_c**2)
            di = dc * cache.g
            dg = dc * cache.i
            df = dc * cache.c_prev
            dc_prev = dc * cache.f
            # Gate pre-activations.
            dzi = di * cache.i * (1.0 - cache.i)
            dzf = df * cache.f * (1.0 - cache.f)
            dzg = dg * (1.0 - cache.g**2)
            dzo = do * cache.o * (1.0 - cache.o)
            dz = np.concatenate([dzi, dzf, dzg, dzo], axis=1)
            self.Wx.grad += cache.x.T @ dz
            self.Wh.grad += cache.h_prev.T @ dz
            self.b.grad += dz.sum(axis=0)
            dh = dz @ self.Wh.value.T
            dc = dc_prev
        self._caches = []

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        sequences: np.ndarray,
        targets: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 3e-3,
    ) -> TrainReport:
        """Train on benign sequences.

        ``targets`` has shape [B, T, output_dim]: the next-entry ground truth
        at every step (i.e. the input sequence shifted left by one).
        """
        sequences = np.asarray(sequences, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(sequences) != len(targets):
            raise ValueError("sequences and targets must align")
        if len(sequences) == 0:
            raise ValueError("cannot train on an empty dataset")
        optimizer = Adam(self.params(), lr=lr)
        report = TrainReport()
        n = len(sequences)
        for _ in range(epochs):
            order = self._shuffle_rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                optimizer.zero_grad()
                pred = self.forward(sequences[idx])
                loss, grad = mse_loss(pred, targets[idx])
                self.backward(grad)
                optimizer.step()
                epoch_loss += loss
                batches += 1
            report.epoch_losses.append(epoch_loss / max(batches, 1))
        return report

    def prediction_errors(self, sequences: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-sample anomaly scores: MSE averaged over steps and features."""
        sequences = np.asarray(sequences, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(sequences) == 0:
            return np.zeros(0)
        pred = self.forward(sequences)
        self.reset()  # inference only: drop BPTT state
        return per_sample_mse(pred, targets)

    def per_step_errors(self, sequences: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-step anomaly scores [B, T]: MSE of each next-entry prediction.

        A single out-of-place telemetry entry spikes exactly the step that
        predicts it, so the max over steps is a dilution-free window score.
        """
        sequences = np.asarray(sequences, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(sequences) == 0:
            return np.zeros((0, 0))
        pred = self.forward(sequences)
        self.reset()
        return np.mean((pred - targets) ** 2, axis=2)
