"""Detection metrics matching the paper's Table 2 columns.

On the benign dataset there are no positives, so recall and F1 are reported
as N/A (as the paper does); accuracy there equals the true-negative rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """Return (tp, fp, tn, fn)."""
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tp, fp, tn, fn


@dataclass(frozen=True)
class DetectionMetrics:
    """Accuracy / precision / recall / F1 with N/A handling."""

    tp: int
    fp: int
    tn: int
    fn: int

    @classmethod
    def from_labels(cls, y_true: np.ndarray, y_pred: np.ndarray) -> "DetectionMetrics":
        tp, fp, tn, fn = confusion_matrix(y_true, y_pred)
        return cls(tp=tp, fp=fp, tn=tn, fn=fn)

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            raise ValueError("no samples")
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> Optional[float]:
        """None when nothing was predicted positive (undefined)."""
        denominator = self.tp + self.fp
        if denominator == 0:
            return None
        return self.tp / denominator

    @property
    def recall(self) -> Optional[float]:
        denominator = self.tp + self.fn
        if denominator == 0:
            return None  # N/A: no positives in ground truth
        return self.tp / denominator

    @property
    def f1(self) -> Optional[float]:
        precision, recall = self.precision, self.recall
        if precision is None or recall is None or (precision + recall) == 0:
            return None
        return 2 * precision * recall / (precision + recall)

    @property
    def false_positive_rate(self) -> Optional[float]:
        denominator = self.fp + self.tn
        if denominator == 0:
            return None
        return self.fp / denominator

    @property
    def has_positives(self) -> bool:
        return (self.tp + self.fn) > 0

    def as_row(self) -> dict:
        """Render for tabular reporting ('N/A' where undefined)."""

        def pct(value: Optional[float]) -> str:
            return "N/A" if value is None else f"{100.0 * value:.2f}%"

        return {
            "accuracy": pct(self.accuracy),
            "precision": pct(self.precision),
            "recall": pct(self.recall),
            "f1": pct(self.f1),
        }
