"""Loss functions returning (scalar loss, gradient w.r.t. prediction)."""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def per_sample_mse(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Row-wise mean squared error (the anomaly score)."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return np.mean((pred - target) ** 2, axis=tuple(range(1, pred.ndim)))
