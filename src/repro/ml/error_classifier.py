"""Supervised attack-type classifier over reconstruction-error patterns.

Paper §4.1 observes that "different attack instances of the same type
exhibit highly similar group anomaly patterns with respect to the
reconstruction errors" and suggests "this feature is potentially useful for
training a supervised attack classifier". This module implements that
follow-on idea: each attack event is summarized by the *shape* of its
reconstruction-error burst (a fixed-length signature), and a
nearest-centroid classifier recognizes the attack type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def error_signature(scores: np.ndarray, length: int = 16) -> np.ndarray:
    """Summarize an error burst into a fixed-length, scale-normalized shape.

    The burst is linearly resampled to ``length`` points and normalized by
    its peak, so instances of the same attack align regardless of duration
    or absolute error magnitude.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("empty error burst")
    positions = np.linspace(0.0, scores.size - 1.0, length)
    resampled = np.interp(positions, np.arange(scores.size), scores)
    peak = resampled.max()
    if peak > 0:
        resampled = resampled / peak
    return resampled


@dataclass
class _ClassCentroid:
    label: str
    centroid: np.ndarray
    count: int


class ErrorPatternClassifier:
    """Nearest-centroid classifier on error signatures."""

    def __init__(self, signature_length: int = 16) -> None:
        self.signature_length = signature_length
        self._centroids: dict[str, _ClassCentroid] = {}

    @property
    def labels(self) -> list[str]:
        return sorted(self._centroids)

    def fit(self, bursts: list[np.ndarray], labels: list[str]) -> "ErrorPatternClassifier":
        """Learn one centroid per attack label from labeled error bursts."""
        if len(bursts) != len(labels):
            raise ValueError("bursts and labels must align")
        if not bursts:
            raise ValueError("cannot fit on no data")
        grouped: dict[str, list[np.ndarray]] = {}
        for burst, label in zip(bursts, labels):
            grouped.setdefault(label, []).append(
                error_signature(burst, self.signature_length)
            )
        self._centroids = {
            label: _ClassCentroid(
                label=label,
                centroid=np.mean(np.stack(signatures), axis=0),
                count=len(signatures),
            )
            for label, signatures in grouped.items()
        }
        return self

    def predict(self, burst: np.ndarray) -> str:
        """Classify one error burst to the nearest attack centroid."""
        if not self._centroids:
            raise RuntimeError("classifier not fitted")
        signature = error_signature(burst, self.signature_length)
        best_label, best_distance = "", float("inf")
        for label, entry in sorted(self._centroids.items()):
            distance = float(np.linalg.norm(signature - entry.centroid))
            if distance < best_distance:
                best_label, best_distance = label, distance
        return best_label

    def predict_many(self, bursts: list[np.ndarray]) -> list[str]:
        return [self.predict(burst) for burst in bursts]
