"""Optimizers: SGD with momentum, and Adam."""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Parameter


class Optimizer:
    def __init__(self, params: list[Parameter]) -> None:
        self.params = list(params)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * param.grad
                param.value += velocity
            else:
                param.value -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
