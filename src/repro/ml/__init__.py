"""From-scratch numpy deep-learning stack for the MobiWatch models (§3.2).

The paper trains two lightweight unsupervised models on benign telemetry
only:

- an **Autoencoder** scored by reconstruction error, and
- an **LSTM** next-step predictor scored by prediction error,

with a percentile threshold over training-set errors (99% in §4.1). Only
numpy is available offline, so the layers, Adam, and LSTM backpropagation
through time are implemented here directly; gradients are verified against
finite differences in the test suite.
"""

from repro.ml.layers import Dense, Parameter, ReLU, Sequential, Sigmoid, Tanh
from repro.ml.optim import Adam, Sgd
from repro.ml.losses import mse_loss
from repro.ml.autoencoder import Autoencoder
from repro.ml.lstm import LstmPredictor
from repro.ml.threshold import PercentileThreshold
from repro.ml.metrics import DetectionMetrics, confusion_matrix
from repro.ml.detector import (
    AnomalyDetector,
    AutoencoderDetector,
    LstmDetector,
)
from repro.ml.error_classifier import ErrorPatternClassifier
from repro.ml.training import (
    TrainConfig,
    TrainHistory,
    train_autoencoder,
    train_lstm,
    train_minibatch,
)
from repro.ml.serialize import load_detector, save_detector

__all__ = [
    "Dense",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Adam",
    "Sgd",
    "mse_loss",
    "Autoencoder",
    "LstmPredictor",
    "PercentileThreshold",
    "DetectionMetrics",
    "confusion_matrix",
    "AnomalyDetector",
    "AutoencoderDetector",
    "LstmDetector",
    "ErrorPatternClassifier",
    "TrainConfig",
    "TrainHistory",
    "train_autoencoder",
    "train_lstm",
    "train_minibatch",
    "load_detector",
    "save_detector",
]
