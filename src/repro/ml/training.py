"""Shared mini-batch training loop with validation and early stopping.

Both MobiWatch models (the autoencoder and the LSTM predictor) train with
the same recipe — shuffled mini-batches, Adam, MSE — so the loop lives here
once. Beyond deduplication it adds what the ad-hoc loops lacked: an
optional validation split with early stopping (patience on the validation
loss), which the SMO's training jobs use to avoid hand-tuning epoch counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.ml.losses import mse_loss
from repro.ml.optim import Adam
from repro.obs.metrics import MetricsRegistry


@dataclass
class TrainConfig:
    """Knobs of one training run."""

    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    # Fraction of samples held out for validation (0 disables early stop).
    validation_fraction: float = 0.0
    # Stop after this many epochs without validation improvement.
    patience: int = 5
    # Minimum relative improvement to reset patience.
    min_improvement: float = 1e-4
    seed: int = 0


@dataclass
class TrainHistory:
    """Loss trajectory of one training run (superset of TrainReport)."""

    epoch_losses: list = field(default_factory=list)
    validation_losses: list = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


# The trainable: forward(batch_x) -> prediction; backward(grad); params();
# optional reset() drops forward state kept only for the backward pass (the
# loop calls it, when present, after inference-only forwards such as the
# validation pass).
class TrainableProtocol:  # pragma: no cover - documentation only
    def forward(self, x: np.ndarray) -> np.ndarray: ...
    def backward(self, grad: np.ndarray) -> None: ...
    def params(self) -> list: ...
    def reset(self) -> None: ...


def train_minibatch(
    trainable,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: Optional[TrainConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> TrainHistory:
    """Train ``trainable`` to map ``inputs`` to ``targets`` with MSE/Adam.

    With ``validation_fraction > 0`` a tail split is held out; training
    stops once the validation loss fails to improve for ``patience``
    epochs, and the history records where the best epoch was. With a
    ``metrics`` registry, per-epoch losses are observed into
    ``ml.train.epoch_loss`` (and validation into ``ml.train.val_loss``).
    """
    config = config or TrainConfig()
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if len(inputs) != len(targets):
        raise ValueError("inputs and targets must align")
    if len(inputs) == 0:
        raise ValueError("cannot train on an empty dataset")

    n_val = 0
    if config.validation_fraction > 0:
        if not 0 < config.validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        n_val = max(1, int(len(inputs) * config.validation_fraction))
        if n_val >= len(inputs):
            raise ValueError("validation split leaves no training data")
    train_x, train_y = inputs[: len(inputs) - n_val], targets[: len(targets) - n_val]
    val_x, val_y = inputs[len(inputs) - n_val :], targets[len(targets) - n_val :]

    optimizer = Adam(trainable.params(), lr=config.lr)
    shuffle = np.random.default_rng(config.seed)
    history = TrainHistory()
    loss_buckets = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
    epoch_loss_hist = (
        metrics.histogram("ml.train.epoch_loss", buckets=loss_buckets)
        if metrics is not None
        else None
    )
    val_loss_hist = (
        metrics.histogram("ml.train.val_loss", buckets=loss_buckets)
        if metrics is not None
        else None
    )
    best_val = float("inf")
    stale_epochs = 0
    n = len(train_x)
    for epoch in range(config.epochs):
        order = shuffle.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            optimizer.zero_grad()
            prediction = trainable.forward(train_x[idx])
            loss, grad = mse_loss(prediction, train_y[idx])
            trainable.backward(grad)
            optimizer.step()
            epoch_loss += loss
            batches += 1
        history.epoch_losses.append(epoch_loss / max(batches, 1))
        if epoch_loss_hist is not None:
            epoch_loss_hist.observe(history.epoch_losses[-1])

        if n_val:
            val_loss, _ = mse_loss(trainable.forward(val_x), val_y)
            if val_loss_hist is not None:
                val_loss_hist.observe(val_loss)
            # Inference pass must not leave stale backward state behind.
            reset = getattr(trainable, "reset", None)
            if reset is not None:
                reset()
            history.validation_losses.append(val_loss)
            if val_loss < best_val * (1.0 - config.min_improvement):
                best_val = val_loss
                history.best_epoch = epoch
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= config.patience:
                    history.stopped_early = True
                    break
    if history.best_epoch < 0 and history.epoch_losses:
        history.best_epoch = int(np.argmin(history.epoch_losses))
    return history


class _AutoencoderAdapter:
    """Adapts an Autoencoder's Sequential model to the trainable protocol."""

    def __init__(self, model) -> None:
        self._model = model

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._model.forward(x)

    def backward(self, grad: np.ndarray) -> None:
        self._model.backward(grad)

    def params(self) -> list:
        return self._model.params()

    def reset(self) -> None:
        self._model.reset()


def train_autoencoder(autoencoder, windows: np.ndarray, config: TrainConfig) -> TrainHistory:
    """Train an :class:`~repro.ml.autoencoder.Autoencoder` via the shared loop."""
    if windows.ndim != 2 or windows.shape[1] != autoencoder.input_dim:
        raise ValueError(
            f"expected [n, {autoencoder.input_dim}] windows, got {windows.shape}"
        )
    adapter = _AutoencoderAdapter(autoencoder.model)
    return train_minibatch(adapter, windows, windows, config)


def train_lstm(predictor, sequences: np.ndarray, targets: np.ndarray, config: TrainConfig) -> TrainHistory:
    """Train an :class:`~repro.ml.lstm.LstmPredictor` via the shared loop."""
    return train_minibatch(predictor, sequences, targets, config)
