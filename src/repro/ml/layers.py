"""Neural network layers with manual forward/backward passes."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = value.astype(np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer(abc.ABC):
    """A differentiable module. ``backward`` consumes dL/d(output) and
    returns dL/d(input), accumulating parameter gradients on the way."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray: ...

    def params(self) -> list[Parameter]:
        return []

    def reset(self) -> None:
        """Drop cached forward state kept for backward (inference cleanup)."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def glorot_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Layer):
    """Fully connected layer ``y = xW + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.W = Parameter(glorot_init(rng, in_dim, out_dim))
        self.b = Parameter(np.zeros(out_dim))
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.W.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.W.value.T

    def params(self) -> list[Parameter]:
        return [self.W, self.b]

    def reset(self) -> None:
        self._x = None


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask

    def reset(self) -> None:
        self._mask = None


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)

    def reset(self) -> None:
        self._y = None


class Tanh(Layer):
    def __init__(self) -> None:
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)

    def reset(self) -> None:
        self._y = None


class Sequential(Layer):
    """Layer composition."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> list[Parameter]:
        out: list[Parameter] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def reset(self) -> None:
        for layer in self.layers:
            layer.reset()
