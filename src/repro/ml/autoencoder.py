"""Autoencoder for reconstruction-error anomaly scoring (paper §3.2).

``S_hat = f_AE(S)``: the flattened telemetry window is compressed through a
bottleneck and reconstructed; windows unlike the benign training
distribution reconstruct poorly. Mean-squared reconstruction error is the
anomaly score, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.layers import Dense, ReLU, Sequential
from repro.ml.losses import mse_loss, per_sample_mse
from repro.ml.optim import Adam


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    epoch_losses: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Autoencoder:
    """Symmetric MLP autoencoder with a sigmoid output (inputs are one-hot)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 64,
        latent_dim: int = 16,
        seed: int = 0,
    ) -> None:
        if latent_dim >= input_dim:
            raise ValueError("latent dimension must compress the input")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        rng = np.random.default_rng(seed)
        self.encoder = Sequential(
            Dense(input_dim, hidden_dim, rng),
            ReLU(),
            Dense(hidden_dim, latent_dim, rng),
            ReLU(),
        )
        # Linear output: feature values are weighted one-hots that may
        # exceed 1.0, which a squashing output could never reconstruct.
        self.decoder = Sequential(
            Dense(latent_dim, hidden_dim, rng),
            ReLU(),
            Dense(hidden_dim, input_dim, rng),
        )
        self.model = Sequential(*self.encoder.layers, *self.decoder.layers)
        self._shuffle_rng = np.random.default_rng(seed + 1)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Project inputs to the latent space."""
        return self.encoder.forward(np.asarray(x, dtype=np.float64))

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        return self.model.forward(np.asarray(x, dtype=np.float64))

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
    ) -> TrainReport:
        """Train to reconstruct benign windows."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected [n, {self.input_dim}] inputs, got {x.shape}")
        if len(x) == 0:
            raise ValueError("cannot train on an empty dataset")
        optimizer = Adam(self.model.params(), lr=lr)
        report = TrainReport()
        n = len(x)
        for _ in range(epochs):
            order = self._shuffle_rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = x[order[start : start + batch_size]]
                optimizer.zero_grad()
                pred = self.model.forward(batch)
                loss, grad = mse_loss(pred, batch)
                self.model.backward(grad)
                optimizer.step()
                epoch_loss += loss
                batches += 1
            report.epoch_losses.append(epoch_loss / max(batches, 1))
        return report

    def reconstruction_errors(self, x: np.ndarray) -> np.ndarray:
        """Per-window anomaly scores (row-wise MSE)."""
        x = np.asarray(x, dtype=np.float64)
        if len(x) == 0:
            return np.zeros(0)
        return per_sample_mse(self.reconstruct(x), x)
