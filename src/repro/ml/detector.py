"""Unified anomaly-detector interface over the two models (paper §3.2).

Both detectors consume the :class:`~repro.telemetry.features.WindowedDataset`
window matrix ``[num_windows, N * D]``:

- the **Autoencoder** reconstructs the whole window;
- the **LSTM** reads the first ``N-1`` entries of the window and predicts
  the last one, so its score for window ``S_i`` is the prediction error on
  ``x_{i+N-1}`` — the alignment keeps both models' decisions comparable
  window-for-window under the paper's labeling rule.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.ml.autoencoder import Autoencoder, TrainReport
from repro.ml.lstm import LstmPredictor
from repro.ml.threshold import PercentileThreshold
from repro.obs.metrics import MetricsRegistry

# Reconstruction/prediction errors live well below 1.0 on benign traffic.
_ERROR_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def merge_session_groups(window_records) -> list:
    """Rebuild per-session record groups from sessionized window records.

    Sessionized windowing emits each session's windows contiguously and
    adjacent windows of one session overlap, so a linear connectivity pass
    reconstructs the per-session record lists exactly. Shared by the
    float64 session-context scorer and the quantized tier's offline
    evaluation (:mod:`repro.megabatch.quantized`).
    """
    merged: list = []
    current: Optional[set] = None
    for window_indices in window_records:
        indices = set(window_indices)
        if current is not None and (indices & current):
            current |= indices
        else:
            if current is not None:
                merged.append(sorted(current))
            current = indices
    if current is not None:
        merged.append(sorted(current))
    return merged


class AnomalyDetector(abc.ABC):
    """fit on benign windows -> score/detect arbitrary windows."""

    name: str = "detector"

    def __init__(self, window: int, feature_dim: int, percentile: float = 99.0) -> None:
        self.window = window
        self.feature_dim = feature_dim
        self.threshold = PercentileThreshold(percentile=percentile)
        self.training_scores: Optional[np.ndarray] = None
        self.metrics: Optional[MetricsRegistry] = None
        # Fused inference kernels over a weight snapshot; scores() routes
        # through them once compile() has run (repro.hotpath.compiled).
        self._compiled = None
        # Training fast path (repro.trainfast): when attached and enabled,
        # fit() routes through the compiled training kernels.
        self._trainfast = None
        # Megabatch tier (repro.megabatch): with the quantized tier on,
        # fit() also runs the int8 calibration pass over the training
        # windows and fits a separate operating threshold in quantized
        # score space (quantized scores are not float64 scores, so reusing
        # the float64 threshold would shift the operating point).
        self._megabatch = None
        self.calibration = None
        self.quantized_threshold: Optional[PercentileThreshold] = None

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """Route training/inference error distributions into a registry."""
        self.metrics = metrics

    def attach_trainfast(self, settings) -> None:
        """Adopt :class:`~repro.trainfast.settings.TrainfastSettings`.

        With ``compiled_trainer`` on, :meth:`fit` trains through the
        preallocated-buffer kernels of :mod:`repro.trainfast.trainer` in
        ``settings.trainer_dtype`` — float64 (the default) reproduces the
        seed loss trajectory and weights bit-for-bit; float32 is the
        documented fast mode.
        """
        self._trainfast = settings

    def attach_megabatch(self, settings) -> None:
        """Adopt :class:`~repro.megabatch.settings.MegabatchSettings`.

        With the quantized tier on, subsequent fits calibrate the int8
        input scale over the training windows (:func:`calibrate_windows`)
        and fit :attr:`quantized_threshold` at the same percentile on the
        quantized tier's own training scores.
        """
        self._megabatch = settings

    def _fit_quantized_tier(self, windows: np.ndarray) -> None:
        """Calibration + quantized-threshold pass after a fit (if attached)."""
        self.calibration = None
        self.quantized_threshold = None
        if self._megabatch is None or not self._megabatch.quantized:
            return
        from repro.megabatch.quantized import calibrate_windows

        self.calibration = calibrate_windows(windows, self._megabatch)
        self._fit_quantized_threshold(windows)

    def _fit_quantized_threshold(self, windows: np.ndarray) -> None:
        """Detector-specific quantized threshold fit (no-op by default)."""

    def compile(self, dtype: str = "float32"):
        """Snapshot the current weights into fused inference kernels.

        Afterwards :meth:`scores` runs through preallocated-buffer kernels
        in ``dtype`` — float64 kernels score bit-identically to the plain
        path; float32 trades the documented hotpath tolerance for
        throughput. Any further :meth:`fit` drops the snapshot (stale
        weights); call ``compile`` again after retraining.
        """
        from repro.hotpath.compiled import compile_detector

        self._compiled = compile_detector(self, dtype)
        if self.metrics is not None:
            self._compiled.attach_metrics(self.metrics)
        return self._compiled

    @property
    def compiled(self):
        """The active compiled kernels, or ``None``."""
        return self._compiled

    def _check(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        expected = self.window * self.feature_dim
        if windows.ndim != 2 or windows.shape[1] != expected:
            raise ValueError(
                f"expected [n, {expected}] windows "
                f"(window={self.window} x dim={self.feature_dim}), got {windows.shape}"
            )
        return windows

    def fit(self, benign_windows: np.ndarray, **train_kwargs) -> TrainReport:
        """Train on benign windows and fit the percentile threshold."""
        windows = self._check(benign_windows)
        report = self._train(windows, **train_kwargs)
        self._compiled = None  # weights changed: any kernel snapshot is stale
        if self._trainfast is not None and self._trainfast.compiled_scoring:
            # Snapshot the fresh weights into fused inference kernels so the
            # threshold fit and all subsequent scoring run compiled (float64
            # stays bit-identical; float32 is the documented fast mode).
            self.compile(self._trainfast.trainer_dtype)
        self.training_scores = self.scores(windows)
        self.threshold.fit(self.training_scores)
        self._fit_quantized_tier(windows)
        if self.metrics is not None:
            loss_hist = self.metrics.histogram(
                f"ml.{self.name}.epoch_loss", buckets=_ERROR_BUCKETS
            )
            for loss in report.epoch_losses:
                loss_hist.observe(loss)
            score_hist = self.metrics.histogram(
                f"ml.{self.name}.training_score", buckets=_ERROR_BUCKETS
            )
            for score in self.training_scores:
                score_hist.observe(float(score))
            self.metrics.gauge(f"ml.{self.name}.threshold").set(
                self.threshold.threshold or 0.0
            )
        return report

    def detect(self, windows: np.ndarray) -> np.ndarray:
        """Boolean anomaly decision per window."""
        return self.threshold.classify(self.scores(windows))

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Anomaly score per window (higher = more anomalous)."""
        if self._compiled is not None:
            # The kernels convert into their own dtype buffers; skip the
            # reference path's float64 up-conversion (pure allocation here).
            windows = np.asarray(windows)
            expected = self.window * self.feature_dim
            if windows.ndim != 2 or windows.shape[1] != expected:
                raise ValueError(
                    f"expected [n, {expected}] windows "
                    f"(window={self.window} x dim={self.feature_dim}), got {windows.shape}"
                )
            return self._compiled.scores(windows)
        return self._scores(self._check(windows))

    def _train(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        """Dispatch training to the seed loop or the compiled kernels."""
        if self._trainfast is not None and self._trainfast.compiled_trainer:
            return self._fit_model_compiled(windows, **train_kwargs)
        return self._fit_model(windows, **train_kwargs)

    @abc.abstractmethod
    def _fit_model(self, windows: np.ndarray, **train_kwargs) -> TrainReport: ...

    def _fit_model_compiled(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        """Same training, through repro.trainfast's compiled kernels."""
        raise NotImplementedError

    @abc.abstractmethod
    def _scores(self, windows: np.ndarray) -> np.ndarray:
        """Reference scoring path on checked ``[n, window*dim]`` windows."""


class AutoencoderDetector(AnomalyDetector):
    """Reconstruction-error detector.

    ``aggregate='max'`` (default) scores a window by the worst-reconstructed
    entry slot rather than the window mean, so a single anomalous telemetry
    entry is not diluted across the other N-1 entries; ``'mean'`` gives the
    plain whole-window MSE.
    """

    name = "autoencoder"

    def __init__(
        self,
        window: int,
        feature_dim: int,
        hidden_dim: int = 64,
        latent_dim: int = 16,
        percentile: float = 99.0,
        seed: int = 0,
        aggregate: str = "max",
    ) -> None:
        super().__init__(window, feature_dim, percentile)
        if aggregate not in ("max", "mean"):
            raise ValueError(f"aggregate must be 'max' or 'mean', got {aggregate!r}")
        self.aggregate = aggregate
        self.model = Autoencoder(
            input_dim=window * feature_dim,
            hidden_dim=hidden_dim,
            latent_dim=latent_dim,
            seed=seed,
        )

    def _fit_model(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        return self.model.fit(windows, **train_kwargs)

    def _fit_model_compiled(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        from repro.trainfast.trainer import compile_trainer

        trainer = compile_trainer(self.model, self._trainfast.trainer_dtype)
        return trainer.fit(windows, **train_kwargs)

    def _scores(self, windows: np.ndarray) -> np.ndarray:
        if self.aggregate == "mean":
            return self.model.reconstruction_errors(windows)
        return self.per_slot_errors(windows).max(axis=1)

    def per_slot_errors(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruction MSE per entry slot: [n, window]."""
        windows = self._check(windows)
        if len(windows) == 0:
            return np.zeros((0, self.window))
        reconstruction = self.model.reconstruct(windows)
        diff = (reconstruction - windows).reshape(-1, self.window, self.feature_dim)
        return np.mean(diff**2, axis=2)


class LstmDetector(AnomalyDetector):
    """Next-step prediction-error detector."""

    name = "lstm"

    def __init__(
        self,
        window: int,
        feature_dim: int,
        hidden_dim: int = 32,
        percentile: float = 99.0,
        seed: int = 0,
    ) -> None:
        if window < 2:
            raise ValueError("LSTM detector needs window >= 2 (context + target)")
        super().__init__(window, feature_dim, percentile)
        self.model = LstmPredictor(
            input_dim=feature_dim, hidden_dim=hidden_dim, output_dim=feature_dim, seed=seed
        )

    def _split(self, windows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Window matrix -> (inputs [n, N-1, D], next-step targets [n, N-1, D]).

        Inputs are the window's entries 0..N-2; targets are entries 1..N-1
        (the sequence shifted by one), so the model predicts every entry of
        the window except the first.
        """
        n = windows.shape[0]
        unflattened = windows.reshape(n, self.window, self.feature_dim)
        return unflattened[:, :-1, :], unflattened[:, 1:, :]

    def _fit_model(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        sequences, targets = self._split(windows)
        return self.model.fit(sequences, targets, **train_kwargs)

    def _fit_model_compiled(self, windows: np.ndarray, **train_kwargs) -> TrainReport:
        from repro.trainfast.trainer import compile_trainer

        sequences, targets = self._split(windows)
        trainer = compile_trainer(self.model, self._trainfast.trainer_dtype)
        return trainer.fit(sequences, targets, **train_kwargs)

    def _scores(self, windows: np.ndarray) -> np.ndarray:
        """Window score: worst next-step prediction error within the window."""
        sequences, targets = self._split(windows)
        return self.model.per_step_errors(sequences, targets).max(axis=1)

    # -- session-context scoring -------------------------------------------------

    def record_errors(
        self, per_record: np.ndarray, groups: list
    ) -> np.ndarray:
        """Next-step prediction error per record with *full session context*.

        ``groups`` lists each session's record indices (stream order). The
        LSTM runs once over each whole session, so a record's error uses
        every earlier record of its session as context — not just the
        window prefix. Only each session's first record is unpredictable
        (error 0).
        """
        per_record = np.asarray(per_record, dtype=np.float64)
        errors = np.zeros(per_record.shape[0])
        for indices in groups:
            indices = list(indices)
            if len(indices) < 2:
                continue
            sequence = per_record[indices]
            per_step = self.model.per_step_errors(
                sequence[None, :-1, :], sequence[None, 1:, :]
            )[0]
            errors[indices[1:]] = per_step
        return errors

    def session_window_scores(self, windowed) -> np.ndarray:
        """Score every window of a sessionized WindowedDataset by the worst
        session-context record error it contains."""
        merged = merge_session_groups(windowed.window_records)
        record_errors = self.record_errors(windowed.per_record, merged)
        return np.array(
            [
                record_errors[list(indices)].max() if indices else 0.0
                for indices in windowed.window_records
            ]
        )

    def fit_with_session_context(self, windowed, **train_kwargs):
        """Train on the dataset's windows, then fit the threshold on
        session-context scores (keeps train/serve scoring identical)."""
        windows = self._check(windowed.windows)
        report = self._train(windows, **train_kwargs)
        self._compiled = None  # weights changed: any kernel snapshot is stale
        self.training_scores = self.session_window_scores(windowed)
        self.threshold.fit(self.training_scores)
        # Quantized tier: calibrate, then fit its threshold on quantized
        # *session-context* scores — same scoring semantics the threshold
        # above uses in float64.
        self.calibration = None
        self.quantized_threshold = None
        if self._megabatch is not None and self._megabatch.quantized:
            from repro.megabatch.quantized import (
                QuantizedLstmEngine,
                calibrate_windows,
            )

            self.calibration = calibrate_windows(windows, self._megabatch)
            engine = QuantizedLstmEngine(self, self.calibration, self._megabatch)
            self.quantized_threshold = PercentileThreshold(
                percentile=self.threshold.percentile
            )
            self.quantized_threshold.fit(engine.session_window_scores(windowed))
        return report

    def _fit_quantized_threshold(self, windows: np.ndarray) -> None:
        """Fit the quantized tier's operating threshold on its own scores.

        A fresh engine snapshots the just-trained weights; its window-mode
        training scores define the percentile operating point in quantized
        score space (mirroring how the float64 threshold is fit on float64
        training scores).
        """
        from repro.megabatch.quantized import QuantizedLstmEngine

        engine = QuantizedLstmEngine(self, self.calibration, self._megabatch)
        quantized_scores = engine.window_scores(windows, self.window)
        self.quantized_threshold = PercentileThreshold(
            percentile=self.threshold.percentile
        )
        self.quantized_threshold.fit(quantized_scores)
