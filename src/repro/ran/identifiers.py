"""5G identifier spaces used by the MobiFlow telemetry (Table 1 of the paper).

- **RNTI** — Radio Network Temporary Identifier, a 16-bit L2 identifier the
  DU assigns per RRC connection. The BTS DoS attack manifests as a rapid
  stream of fresh RNTIs.
- **5G-S-TMSI / 5G-TMSI** — temporary subscriber identity assigned by the
  AMF; reused TMSIs across sessions are the Blind DoS signature.
- **SUPI** — Subscription Permanent Identifier (IMSI-format); appearing in
  plaintext on the air interface is the identity-extraction signature.
- **SUCI** — concealed SUPI, what a compliant UE sends instead.
- **5G-GUTI** — globally unique temporary identity wrapping the 5G-TMSI.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Set

# C-RNTI value range per 3GPP TS 38.321 (values outside are reserved).
RNTI_MIN = 0x0001
RNTI_MAX = 0xFFEF

TMSI_BITS = 32


class IdentifierExhausted(RuntimeError):
    """Raised when an allocator runs out of free identifiers."""


@dataclass(frozen=True)
class Supi:
    """Subscription Permanent Identifier in IMSI format (MCC+MNC+MSIN)."""

    mcc: str
    mnc: str
    msin: str

    def __post_init__(self) -> None:
        if not (self.mcc.isdigit() and len(self.mcc) == 3):
            raise ValueError(f"MCC must be 3 digits, got {self.mcc!r}")
        if not (self.mnc.isdigit() and len(self.mnc) in (2, 3)):
            raise ValueError(f"MNC must be 2-3 digits, got {self.mnc!r}")
        if not (self.msin.isdigit() and 9 <= len(self.msin) <= 10):
            raise ValueError(f"MSIN must be 9-10 digits, got {self.msin!r}")

    def __str__(self) -> str:
        return f"imsi-{self.mcc}{self.mnc}{self.msin}"

    @classmethod
    def parse(cls, text: str) -> "Supi":
        if not text.startswith("imsi-"):
            raise ValueError(f"not an imsi-format SUPI: {text!r}")
        digits = text[len("imsi-") :]
        if len(digits) < 14 or not digits.isdigit():
            raise ValueError(f"malformed SUPI digits: {digits!r}")
        return cls(mcc=digits[:3], mnc=digits[3:5], msin=digits[5:])


def conceal_supi(supi: Supi, home_network_key: bytes = b"hn-public-key") -> str:
    """Produce a SUCI — a one-way concealment of the SUPI's MSIN.

    Real networks use ECIES (Profile A/B); we substitute a keyed hash, which
    preserves the property the detector relies on: the permanent identifier
    never appears on the air interface in a compliant flow, and two
    registrations by the same UE yield unlinkable SUCIs only if the network
    rotates the concealment — we keep it deterministic so tests can assert
    stability.
    """
    digest = hashlib.sha256(bytes(str(supi), "utf-8") + home_network_key).hexdigest()
    return f"suci-{supi.mcc}-{supi.mnc}-{digest[:16]}"


@dataclass(frozen=True)
class Guti:
    """5G Globally Unique Temporary Identity (simplified)."""

    plmn: str
    amf_region: int
    amf_set: int
    amf_pointer: int
    tmsi: int

    def s_tmsi(self) -> int:
        """Derive the 5G-S-TMSI (AMF set + pointer + TMSI), truncated."""
        return ((self.amf_set & 0x3FF) << 38) | ((self.amf_pointer & 0x3F) << 32) | (
            self.tmsi & 0xFFFFFFFF
        )

    def __str__(self) -> str:
        return (
            f"guti-{self.plmn}-{self.amf_region:02x}{self.amf_set:03x}"
            f"{self.amf_pointer:02x}-{self.tmsi:08x}"
        )


class RntiAllocator:
    """Allocates C-RNTIs the way a DU does: random free value per connection."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._in_use: Set[int] = set()

    @property
    def in_use(self) -> frozenset[int]:
        return frozenset(self._in_use)

    def allocate(self) -> int:
        if len(self._in_use) >= (RNTI_MAX - RNTI_MIN + 1):
            raise IdentifierExhausted("RNTI space exhausted")
        while True:
            rnti = self._rng.randint(RNTI_MIN, RNTI_MAX)
            if rnti not in self._in_use:
                self._in_use.add(rnti)
                return rnti

    def release(self, rnti: int) -> None:
        self._in_use.discard(rnti)


class TmsiAllocator:
    """Allocates 32-bit 5G-TMSIs; the AMF assigns one per registration."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._in_use: Set[int] = set()

    def allocate(self) -> int:
        if len(self._in_use) >= 2**TMSI_BITS:
            raise IdentifierExhausted("TMSI space exhausted")
        while True:
            tmsi = self._rng.getrandbits(TMSI_BITS)
            if tmsi not in self._in_use:
                self._in_use.add(tmsi)
                return tmsi

    def release(self, tmsi: int) -> None:
        self._in_use.discard(tmsi)


class GutiAllocator:
    """Wraps a :class:`TmsiAllocator` to mint full 5G-GUTIs."""

    def __init__(
        self,
        rng: random.Random,
        plmn: str = "00101",
        amf_region: int = 1,
        amf_set: int = 1,
        amf_pointer: int = 0,
    ) -> None:
        self._tmsis = TmsiAllocator(rng)
        self._plmn = plmn
        self._amf_region = amf_region
        self._amf_set = amf_set
        self._amf_pointer = amf_pointer

    def allocate(self) -> Guti:
        return Guti(
            plmn=self._plmn,
            amf_region=self._amf_region,
            amf_set=self._amf_set,
            amf_pointer=self._amf_pointer,
            tmsi=self._tmsis.allocate(),
        )

    def release(self, guti: Optional[Guti]) -> None:
        if guti is not None:
            self._tmsis.release(guti.tmsi)
