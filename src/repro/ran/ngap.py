"""NG Application Protocol messages between the CU and AMF (TS 38.413).

NGAP carries the NAS PDUs; the MobiFlow collector parses these envelopes for
the NAS-layer telemetry (registration identities, authentication flow,
selected security algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ran.messages import Direction, Message, Protocol


@dataclass
class NgInitialUeMessage(Message):
    """CU -> AMF: first NAS message of a UE (inside RRCSetupComplete)."""

    NAME = "NGInitialUEMessage"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    ran_ue_id: int = 0
    nas_pdu: bytes = b""
    establishment_cause: str = ""


@dataclass
class NgUplinkNasTransport(Message):
    """CU -> AMF: subsequent uplink NAS PDU."""

    NAME = "NGUplinkNASTransport"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0
    nas_pdu: bytes = b""


@dataclass
class NgDownlinkNasTransport(Message):
    """AMF -> CU: downlink NAS PDU to deliver to the UE."""

    NAME = "NGDownlinkNASTransport"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0
    nas_pdu: bytes = b""


@dataclass
class NgInitialContextSetupRequest(Message):
    """AMF -> CU: establish the secured UE context (triggers AS security)."""

    NAME = "NGInitialContextSetupRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0
    # Security material for the AS: key + allowed algorithms.
    kgnb: bytes = b""
    cipher_alg: int = 0
    integrity_alg: int = 0


@dataclass
class NgInitialContextSetupResponse(Message):
    """CU -> AMF: secured context established."""

    NAME = "NGInitialContextSetupResponse"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0


@dataclass
class NgUeContextReleaseRequest(Message):
    """CU -> AMF: CU asks to release a UE (e.g. inactivity timeout)."""

    NAME = "NGUEContextReleaseRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0
    cause: str = "user-inactivity"


@dataclass
class NgUeContextReleaseCommand(Message):
    """AMF -> CU: release the UE's NG context."""

    NAME = "NGUEContextReleaseCommand"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0
    cause: str = "normal"


@dataclass
class NgUeContextReleaseComplete(Message):
    """CU -> AMF: NG context released."""

    NAME = "NGUEContextReleaseComplete"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    ran_ue_id: int = 0
    amf_ue_id: int = 0


@dataclass
class NgPaging(Message):
    """AMF -> CU: page an idle UE."""

    NAME = "NGPaging"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    s_tmsi: int = 0
