"""Point-to-point wireline interfaces (F1, NG) with capture taps.

Each link delivers :class:`~repro.ran.messages.Message` envelopes between two
endpoints with a fixed latency. Taps observe every envelope as it enters the
link — this is where the pcap capture (and later the E2 RIC agent) hooks in,
mirroring how the paper instruments the F1AP/NGAP interfaces.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ran.messages import Message
from repro.sim.engine import Simulator

# A tap sees (timestamp, interface_name, message).
Tap = Callable[[float, str, Message], None]
Handler = Callable[[Message], None]


class InterfaceLink:
    """Bidirectional message pipe between two protocol endpoints."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency_s: float = 0.001,
    ) -> None:
        self.sim = sim
        self.name = name
        self.latency_s = latency_s
        self._a_handler: Optional[Handler] = None
        self._b_handler: Optional[Handler] = None
        self._taps: list[Tap] = []
        self.messages_carried = 0

    def connect(self, a_handler: Handler, b_handler: Handler) -> None:
        """Wire up the two endpoints (a = e.g. DU/CU, b = e.g. CU/AMF)."""
        self._a_handler = a_handler
        self._b_handler = b_handler

    def add_tap(self, tap: Tap) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def _send(self, handler: Optional[Handler], message: Message) -> None:
        if handler is None:
            raise RuntimeError(f"link {self.name} endpoint not connected")
        for tap in self._taps:
            tap(self.sim.now, self.name, message)
        self.messages_carried += 1
        self.sim.schedule(self.latency_s, lambda: handler(message), name=f"{self.name}.deliver")

    def send_to_b(self, message: Message) -> None:
        """Endpoint A transmits toward endpoint B."""
        self._send(self._b_handler, message)

    def send_to_a(self, message: Message) -> None:
        """Endpoint B transmits toward endpoint A."""
        self._send(self._a_handler, message)
