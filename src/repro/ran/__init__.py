"""Simulated 5G standalone (SA) radio access network and core.

This package is the substitute for the paper's testbed substrate
(OpenAirInterface gNB + core, USRP B210 RU, commodity handsets): a
discrete-event simulation of the layer-3 control plane that the 6G-XSec
telemetry pipeline observes. It models:

- identifier spaces (RNTI, 5G-S-TMSI, SUPI/SUCI, GUTI) — :mod:`.identifiers`
- 5G security algorithms and a simplified 5G-AKA — :mod:`.security`
- RRC and NAS control messages and procedures — :mod:`.rrc`, :mod:`.nas`
- UE state machines with per-handset behaviour profiles — :mod:`.ue`
- a gNB with CU/DU split over F1 — :mod:`.gnb`, :mod:`.f1ap`
- a minimal 5G core (AMF/AUSF) over NGAP — :mod:`.core_network`, :mod:`.ngap`
- a radio channel with loss, latency and man-in-the-middle hooks —
  :mod:`.channel`
- byte-level packet capture of F1AP/NGAP — :mod:`.pcap`
"""

from repro.ran.identifiers import (
    GutiAllocator,
    RntiAllocator,
    Supi,
    TmsiAllocator,
    conceal_supi,
)
from repro.ran.security import CipherAlg, IntegrityAlg
from repro.ran.messages import Message
from repro.ran.network import FiveGNetwork, NetworkConfig

__all__ = [
    "GutiAllocator",
    "RntiAllocator",
    "Supi",
    "TmsiAllocator",
    "conceal_supi",
    "CipherAlg",
    "IntegrityAlg",
    "Message",
    "FiveGNetwork",
    "NetworkConfig",
]
